"""Availability supervisor: detection, failover, reconfiguration.

The paper's Section 4.4 shows *how* an agent can move when its home
node goes down; this package supplies the *who decides*: a per-agent
heartbeat failure detector, automatic majority-vote token succession
through the existing movement machinery, epoch cuts that fence the
dead home's committed-but-unpropagated suffix, and online replica-set
reconfiguration (add/remove a replica without stopping the fragment).
"""

from repro.availability.reconfig import Reconfigurator
from repro.availability.supervisor import (
    AvailabilityConfig,
    AvailabilitySupervisor,
)

__all__ = [
    "AvailabilityConfig",
    "AvailabilitySupervisor",
    "Reconfigurator",
]
