"""Online replica-set reconfiguration: add/remove a replica, epoch-stamped.

The paper's conclusion points at databases "that are not fully
replicated"; PR 7 added static per-fragment replica sets, and this
module makes them *dynamic*: a replica can join or leave a fragment's
set while the fragment keeps committing updates.

Every change bumps the fragment's **membership epoch**
(``FragmentedDatabase.replication_epoch``), which is stamped into the
``system.catalog`` trace event and keys the fragment's broadcast
stream (``f:<name>@e<epoch>``), so the offline auditor can evaluate
replication completeness against the membership *in force when each
update was installed*, and so a membership change starts a fresh FIFO
stream rather than splicing into the old one.

A **joiner** is brought current through the PR 5 cursor-based catch-up
path (checkpoint + tail shipped by a donor) and is tracked in
``FragmentedDatabase.syncing_replicas`` until the catch-up completes;
while syncing it does not count toward read quorums, succession
majorities, or the compaction low-watermark — a replica that is still
downloading history can neither vouch for the present nor pin the
past.  A **leaver** hands nothing over (the agent home may never
leave); its frozen fragment state — store objects, stream bookkeeping,
WAL records, durable checkpoint — is purged so a later crash/recover
cannot resurrect a stale copy the consistency checker would flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DesignError
from repro.obs import taxonomy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class Reconfigurator:
    """Epoch-stamped add/remove of fragment replicas, online."""

    def __init__(self, system: "FragmentedDatabase") -> None:
        self.system = system
        self._c_reconfigs = system.metrics.counter("avail.reconfigurations")
        self._c_synced = system.metrics.counter("avail.joiners_synced")

    def _bump_epoch(self, fragment: str) -> int:
        epoch = self.system.replication_epoch.get(fragment, 0) + 1
        self.system.replication_epoch[fragment] = epoch
        return epoch

    def _trace(
        self,
        fragment: str,
        epoch: int,
        added: str | None = None,
        removed: str | None = None,
    ) -> None:
        system = self.system
        self._c_reconfigs.inc()
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.SYSTEM_RECONFIG,
                fragment=fragment,
                epoch=epoch,
                replicas=list(system.replica_set(fragment)),
                syncing=sorted(system.syncing_replicas.get(fragment, ())),
                added=added,
                removed=removed,
            )

    # -- joining ------------------------------------------------------------

    def add(self, fragment: str, node_name: str) -> None:
        """Add ``node_name`` to the fragment's replica set, online.

        The joiner starts *syncing*: it receives the fragment's new
        traffic immediately (buffered by ordered admission until the
        history beneath arrives) and is brought current through the
        recovery manager's catch-up, seeded with a donor snapshot so
        objects the stream never rewrote come across too.  It counts
        toward quorums only once :meth:`note_caught_up` fires.
        """
        system = self.system
        if fragment not in system.catalog:
            raise DesignError(f"unknown fragment {fragment!r}")
        restricted = system.replication.get(fragment)
        if restricted is None:
            raise DesignError(
                f"fragment {fragment!r} is fully replicated; online "
                f"reconfiguration applies to restricted replica sets"
            )
        if node_name not in system.nodes:
            raise DesignError(f"unknown node {node_name!r}")
        if node_name in restricted:
            raise DesignError(
                f"node {node_name!r} already replicates {fragment!r}"
            )
        node = system.nodes[node_name]
        if node.down:
            raise DesignError(f"cannot join crashed node {node_name!r}")
        epoch = self._bump_epoch(fragment)
        restricted.add(node_name)
        system.syncing_replicas.setdefault(fragment, set()).add(node_name)
        self._trace(fragment, epoch, added=node_name)
        self._seed_and_catch_up(fragment, node, attempt=0)

    def _seed_and_catch_up(
        self, fragment: str, node: "DatabaseNode", attempt: int
    ) -> None:
        """Ensure the donor holds a checkpoint, then run catch-up.

        The snapshot matters beyond compaction: a delta-only catch-up
        replays written objects, but initial values the stream never
        touched exist only in peer stores/checkpoints.  Checkpointing
        defers while the donor's apply queue is busy, so retry briefly;
        if no checkpoint can be built (donor churn), fall back to
        delta-only rather than stalling the join forever.
        """
        system = self.system
        recovery = system.recovery
        donor_name = recovery._pick_donor(node, fragment, set())
        want_snapshot = False
        if donor_name is not None:
            donor = system.nodes[donor_name]
            if not donor.down:
                ckpt = donor.checkpoints.get(fragment)
                if ckpt is None:
                    ckpt = recovery.checkpoint_now(
                        donor, fragment, gossip=False
                    )
                if ckpt is None and attempt < 10:
                    system.sim.schedule(
                        1.0,
                        lambda: self._seed_and_catch_up(
                            fragment, node, attempt + 1
                        ),
                        label=f"avail join seed {node.name}",
                    )
                    return
                want_snapshot = ckpt is not None
        recovery.catch_up(
            node, fragments=[fragment], want_snapshot=want_snapshot
        )

    def note_caught_up(self, node: "DatabaseNode") -> None:
        """Catch-up completed at ``node``: any syncing joins finish.

        Also heals the crash-mid-sync case — recovery's own catch-up
        covers every replicated fragment, so its completion vouches
        for the joining one too.
        """
        system = self.system
        for fragment in sorted(system.syncing_replicas):
            syncing = system.syncing_replicas[fragment]
            if node.name not in syncing:
                continue
            syncing.discard(node.name)
            if not syncing:
                del system.syncing_replicas[fragment]
            self._c_synced.inc()
            if system.tracer.enabled:
                system.tracer.emit(
                    taxonomy.RECONFIG_SYNCED,
                    fragment=fragment,
                    node=node.name,
                    epoch=system.replication_epoch.get(fragment, 0),
                )

    # -- leaving ------------------------------------------------------------

    def remove(self, fragment: str, node_name: str) -> None:
        """Remove ``node_name`` from the fragment's replica set, online.

        The agent's home may not leave (move the agent first).  The
        leaver's copy is purged — store objects, stream state, WAL
        records, durable checkpoint — because a frozen replica that
        later crash-recovers would resurrect a stale copy.
        """
        system = self.system
        if fragment not in system.catalog:
            raise DesignError(f"unknown fragment {fragment!r}")
        restricted = system.replication.get(fragment)
        if restricted is None:
            raise DesignError(
                f"fragment {fragment!r} is fully replicated; online "
                f"reconfiguration applies to restricted replica sets"
            )
        if node_name not in restricted:
            raise DesignError(
                f"node {node_name!r} does not replicate {fragment!r}"
            )
        home = system.agent_of(fragment).home_node
        if node_name == home:
            raise DesignError(
                f"cannot remove the agent's home node {node_name!r} from "
                f"{fragment!r}; move the agent first"
            )
        epoch = self._bump_epoch(fragment)
        restricted.discard(node_name)
        syncing = system.syncing_replicas.get(fragment)
        if syncing is not None:
            syncing.discard(node_name)
            if not syncing:
                del system.syncing_replicas[fragment]
        self._purge(fragment, system.nodes[node_name])
        self._trace(fragment, epoch, removed=node_name)

    def _purge(self, fragment: str, node: "DatabaseNode") -> None:
        streams = node.streams
        objects = frozenset(
            self.system.fragment_objects(fragment, node.store)
        )
        for quasi in (streams.archive.get(fragment) or {}).values():
            streams.installed_sources.discard(quasi.source_txn)
        streams.archive.pop(fragment, None)
        streams.buffer.pop(fragment, None)
        streams.next_expected.pop(fragment, None)
        streams.epoch.pop(fragment, None)
        streams.pruned_below.pop(fragment, None)
        streams.pending_cut.pop(fragment, None)
        for obj in objects:
            node.store.drop(obj)
        node.wal.truncate(fragment, 10**9, 10**9, objects)
        node.checkpoints.discard(fragment)
