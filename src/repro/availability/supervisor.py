"""Heartbeat failure detection and automatic agent failover.

The paper motivates agent movement with node failure ("When an agent's
home node goes down, the agent may wish to re-attach to some other
node", Section 4.4) but leaves the *trigger* to an operator.  The
availability supervisor closes that loop:

1. **Detection** — each agent's home node is probed over the ordinary
   unicast transport by one of its fragments' replicas.  ``suspect_after``
   consecutive missed pongs raise a suspicion; a failed or aborted
   failover backs the probe interval off exponentially, so a flapping
   or partitioned home is not hammered.

2. **Succession** — a live replica coordinates a cursor poll over the
   replica sets of the suspected agent's fragments.  With replies from
   a *majority* of each fragment's replica set (the dead home counts
   in the denominator, so a k=2 fragment can never fail over — by
   design: its only surviving replica cannot prove it is current), the
   most-caught-up common replica is elected successor and the token is
   transported to it through the shared movement machinery
   (:meth:`MovementProtocol._transport`) — the same DEPART/ARRIVE
   lifecycle, metrics, and traces as an operator-requested move.

3. **Epoch cut** — the successor opens a new epoch at its post-poll
   stream head.  Updates the dead home committed but never propagated
   sit *above* that head in the old epoch: the cut declares them lost
   (the paper's availability trade-off — Section 2's orphans, made
   explicit and counted in ``avail.updates_discarded``).  The cut is
   multicast on the fragment's propagation plan; the network holds it
   for the dead home and re-delivers it at recovery, which is exactly
   the demotion trigger: the ex-home discards its stale suffix from
   archive, WAL (:meth:`WriteAheadLog.drop_stale_suffix`), and store,
   rewinds its cursor, and rejoins the stream under the new epoch.

No new network primitives: pings, polls, and demotion resyncs are
plain unicasts; cuts ride the reliable FIFO broadcast.  Everything is
deterministic — timers are simulator events, and the only "oracle"
used is the choice of *which* replica probes (a real deployment runs
one detector per replica; the simulation elects a single live
representative to avoid an O(k²) message storm that would change
nothing about the detection semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.availability.reconfig import Reconfigurator
from repro.errors import DesignError
from repro.net.message import Message
from repro.obs import taxonomy
from repro.recovery.checkpoint import FragmentCheckpoint, apply_checkpoint
from repro.replication.admission import drain_buffer
from repro.storage.values import INITIAL_WRITER, Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase
    from repro.core.transaction import QuasiTransaction
    from repro.sim.simulator import EventHandle

#: Unicast kinds of the supervisor's exchanges.
PING = "avail-ping"
PONG = "avail-pong"
SUCC_REQ = "avail-succ-req"
SUCC_REP = "avail-succ-rep"
DEMOTE_REQ = "avail-demote-req"
DEMOTE_REP = "avail-demote-rep"
#: Broadcast body type of an epoch-cut announcement.
EPOCH_CUT = "avail-cut"


@dataclass(frozen=True, slots=True)
class AvailabilityConfig:
    """Policy knobs for the failure detector and failover machinery.

    ``heartbeat_interval`` is both the probe period and the per-probe
    pong deadline; ``suspect_after`` consecutive misses raise the
    suspicion.  ``succession_timeout`` bounds the cursor poll (replies
    arriving later are ignored; an abort backs off and re-detects).
    ``takeover_delay`` is the token transport delay of the failover
    move.  After an aborted failover the probe interval multiplies by
    ``backoff`` up to ``max_backoff`` and resets on the next pong or
    completed failover.
    """

    heartbeat_interval: float = 5.0
    suspect_after: int = 2
    succession_timeout: float = 12.0
    takeover_delay: float = 1.0
    backoff: float = 2.0
    max_backoff: float = 60.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise DesignError("heartbeat_interval must be positive")
        if self.suspect_after < 1:
            raise DesignError("suspect_after must be >= 1")
        if self.succession_timeout <= 0:
            raise DesignError("succession_timeout must be positive")
        if self.takeover_delay < 0:
            raise DesignError("takeover_delay must be >= 0")
        if self.backoff < 1.0:
            raise DesignError("backoff must be >= 1.0")
        if self.max_backoff < self.heartbeat_interval:
            raise DesignError("max_backoff must be >= heartbeat_interval")


@dataclass
class _AgentWatch:
    """Detector state for one agent: misses, backoff, probe chain."""

    interval: float
    misses: int = 0
    first_miss: float | None = None
    probing: bool = False


@dataclass
class _Succession:
    """One in-flight succession poll (cursor gather + election)."""

    agent: str
    home: str
    coordinator: str
    fragments: list[str]
    begun: float
    replies: dict[str, dict[str, Any]] = field(default_factory=dict)
    timer: "EventHandle | None" = None


class AvailabilitySupervisor:
    """Failure detection, token succession, and demotion for one system.

    Always constructed by :class:`FragmentedDatabase` (its message
    handlers also serve the demotion path, which must work even when
    detection is off), but the detector only runs between
    :meth:`start` and its deadline — a recurring probe with no horizon
    would keep the event queue non-empty forever and ``quiesce()``
    would never return.
    """

    def __init__(self, config: AvailabilityConfig | None = None) -> None:
        self.config = config or AvailabilityConfig()
        self.enabled = config is not None
        self.system: "FragmentedDatabase | None" = None
        self.reconfig: Reconfigurator | None = None
        self._watch: dict[str, _AgentWatch] = {}
        self._until: float | None = None
        self._awaiting: dict[str, str] = {}  # nonce -> agent
        self._answered: set[str] = set()
        self._nonce = 0
        self._ballot = 0
        self._successions: dict[str, _Succession] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        """Bind to the system: message handlers, counters, histogram."""
        self.system = system
        self.reconfig = Reconfigurator(system)
        metrics = system.metrics
        self._c_heartbeats = metrics.counter("avail.heartbeats")
        self._c_suspicions = metrics.counter("avail.suspicions")
        self._c_failovers = metrics.counter("avail.failovers")
        self._c_aborted = metrics.counter("avail.failovers_aborted")
        self._c_cuts = metrics.counter("avail.epoch_cuts")
        self._c_demotions = metrics.counter("avail.demotions")
        self._c_discarded = metrics.counter("avail.updates_discarded")
        # Incremented by the submission gate; registered here so
        # ``metrics.value("avail.updates_blocked")`` works on clean runs.
        metrics.counter("avail.updates_blocked")
        self._h_mttr = metrics.histogram("avail.mttr")
        for node in system.nodes.values():
            self.register_node(node)

    def register_node(self, node: "DatabaseNode") -> None:
        """Install the supervisor's message handlers on one node."""
        node.register_unicast(
            PING, lambda msg, n=node: self._on_ping(n, msg)
        )
        node.register_unicast(PONG, lambda msg, n=node: self._on_pong(n, msg))
        node.register_unicast(
            SUCC_REQ, lambda msg, n=node: self._on_succ_req(n, msg)
        )
        node.register_unicast(
            SUCC_REP, lambda msg, n=node: self._on_succ_rep(n, msg)
        )
        node.register_unicast(
            DEMOTE_REQ, lambda msg, n=node: self._on_demote_req(n, msg)
        )
        node.register_unicast(
            DEMOTE_REP, lambda msg, n=node: self._on_demote_rep(n, msg)
        )
        node.register_broadcast(
            EPOCH_CUT, lambda n, sender, body: self._on_cut(n, sender, body)
        )

    def note_caught_up(self, node: "DatabaseNode") -> None:
        """Catch-up completion hook: a syncing joiner may now count."""
        if self.reconfig is not None:
            self.reconfig.note_caught_up(node)

    # -- detection ----------------------------------------------------------

    def start(self, until: float) -> None:
        """Arm the failure detector until sim time ``until``.

        Probes every agent's home on the heartbeat cadence; stops
        scheduling new work once the deadline passes so the simulator
        can quiesce.
        """
        if not self.enabled:
            raise DesignError(
                "availability detection requires an AvailabilityConfig"
            )
        system = self.system
        if until <= system.sim.now:
            raise DesignError("detector deadline must be in the future")
        self._until = until
        for name in sorted(system.agents):
            watch = self._watch.get(name)
            if watch is None:
                watch = _AgentWatch(interval=self.config.heartbeat_interval)
                self._watch[name] = watch
            if not watch.probing:
                watch.probing = True
                system.sim.schedule(
                    watch.interval,
                    lambda a=name: self._probe(a),
                    label=f"avail probe {name}",
                )

    def stop(self) -> None:
        """Disarm the detector; in-flight probe timers expire harmlessly."""
        self._until = None

    @property
    def _armed(self) -> bool:
        return self._until is not None and self.system.sim.now < self._until

    def _pick_monitor(self, agent_name: str, exclude: str) -> str | None:
        """The live replica that probes (or coordinates) for an agent.

        First live, non-syncing member of the union of the agent's
        fragments' replica sets, by name — deterministic, and a stand-in
        for "every replica detects independently" (see module docs).
        """
        system = self.system
        agent = system.agents[agent_name]
        candidates: set[str] = set()
        for fragment in agent.fragments:
            candidates.update(system.countable_replicas(fragment))
        candidates.discard(exclude)
        for name in sorted(candidates):
            if not system.nodes[name].down:
                return name
        return None

    def _probe(self, agent_name: str) -> None:
        system = self.system
        watch = self._watch[agent_name]
        if not self._armed:
            watch.probing = False
            return
        home = system.agents[agent_name].home_node
        monitor = self._pick_monitor(agent_name, home)
        if monitor is None:
            # Nobody alive to probe from; try again next round.
            system.sim.schedule(
                watch.interval,
                lambda: self._probe(agent_name),
                label=f"avail probe {agent_name}",
            )
            return
        self._nonce += 1
        nonce = f"hb{self._nonce}"
        self._awaiting[nonce] = agent_name
        self._c_heartbeats.inc()
        system.network.send(
            monitor,
            home,
            PING,
            {"agent": agent_name, "nonce": nonce, "monitor": monitor},
        )
        system.sim.schedule(
            watch.interval,
            lambda: self._check(agent_name, nonce),
            label=f"avail check {agent_name}",
        )

    def _on_ping(self, node: "DatabaseNode", message: Message) -> None:
        payload = message.payload
        self.system.network.send(
            node.name,
            payload["monitor"],
            PONG,
            {"agent": payload["agent"], "nonce": payload["nonce"]},
        )

    def _on_pong(self, node: "DatabaseNode", message: Message) -> None:
        nonce = message.payload["nonce"]
        if nonce in self._awaiting:
            self._answered.add(nonce)

    def _check(self, agent_name: str, nonce: str) -> None:
        """Probe deadline: count the miss or reset the detector."""
        self._awaiting.pop(nonce, None)
        answered = nonce in self._answered
        self._answered.discard(nonce)
        watch = self._watch[agent_name]
        if not self._armed:
            watch.probing = False
            return
        system = self.system
        if answered:
            watch.misses = 0
            watch.first_miss = None
            watch.interval = self.config.heartbeat_interval
            self._probe(agent_name)
            return
        if watch.misses == 0:
            # Unavailability is measured from the first unanswered
            # probe's send time, one interval before this deadline.
            watch.first_miss = system.sim.now - watch.interval
        watch.misses += 1
        if watch.misses < self.config.suspect_after:
            self._probe(agent_name)
            return
        self._c_suspicions.inc()
        home = system.agents[agent_name].home_node
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.AVAIL_SUSPECT,
                agent=agent_name,
                home=home,
                misses=watch.misses,
            )
        watch.probing = False
        self._begin_failover(agent_name)

    def _resume(self, agent_name: str) -> None:
        """Restart the probe chain after a failover completed/aborted."""
        watch = self._watch.get(agent_name)
        if watch is None or watch.probing or not self._armed:
            return
        watch.probing = True
        self.system.sim.schedule(
            watch.interval,
            lambda: self._probe(agent_name),
            label=f"avail probe {agent_name}",
        )

    # -- succession ---------------------------------------------------------

    def _abort_failover(self, agent_name: str, reason: str) -> None:
        self._c_aborted.inc()
        system = self.system
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.AVAIL_FAILOVER_ABORT, agent=agent_name, reason=reason
            )
        watch = self._watch.get(agent_name)
        if watch is not None:
            # Back off before re-suspecting; keep first_miss so MTTR
            # spans aborted attempts.
            watch.misses = 0
            watch.interval = min(
                watch.interval * self.config.backoff, self.config.max_backoff
            )
        self._resume(agent_name)

    def _begin_failover(self, agent_name: str) -> None:
        """Suspicion confirmed: poll the replica sets for a successor."""
        system = self.system
        agent = system.agents[agent_name]
        fragments = sorted(agent.fragments)
        home = agent.home_node
        if not fragments:
            self._abort_failover(agent_name, "agent controls no fragments")
            return
        if any(agent.token_for(f).in_transit for f in fragments):
            self._abort_failover(agent_name, "token already in transit")
            return
        coordinator = self._pick_monitor(agent_name, home)
        if coordinator is None:
            self._abort_failover(agent_name, "no live replica to coordinate")
            return
        self._ballot += 1
        ballot = f"fo{self._ballot}"
        state = _Succession(
            agent=agent_name,
            home=home,
            coordinator=coordinator,
            fragments=fragments,
            begun=system.sim.now,
        )
        self._successions[ballot] = state
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.AVAIL_FAILOVER_BEGIN,
                agent=agent_name,
                home=home,
                coordinator=coordinator,
                ballot=ballot,
                fragments=fragments,
            )
        targets: set[str] = set()
        for fragment in fragments:
            targets.update(system.replica_set(fragment))
        targets.discard(home)
        request = {
            "ballot": ballot,
            "agent": agent_name,
            "fragments": fragments,
            "coordinator": coordinator,
        }
        for target in sorted(targets):
            if target == coordinator:
                continue
            system.network.send(coordinator, target, SUCC_REQ, request)
        # The coordinator's own cursors count without a round trip.
        self._record_reply(
            ballot,
            self._build_succ_reply(system.nodes[coordinator], fragments),
        )
        state.timer = system.sim.schedule(
            self.config.succession_timeout,
            lambda: self._finish_succession(ballot),
            label=f"avail succession {agent_name}",
        )

    def _build_succ_reply(
        self, node: "DatabaseNode", fragments: list[str]
    ) -> dict[str, Any]:
        """One replica's vote: cursors, retained archives, checkpoints."""
        streams = node.streams
        cursors: dict[str, tuple[int, int]] = {}
        archives: dict[str, dict[int, "QuasiTransaction"]] = {}
        checkpoints: dict[str, FragmentCheckpoint | None] = {}
        for fragment in fragments:
            if not self.system.replicates(node.name, fragment):
                continue
            cursors[fragment] = (
                streams.epoch[fragment],
                streams.next_expected[fragment],
            )
            archives[fragment] = dict(streams.archive.get(fragment) or {})
            checkpoints[fragment] = node.checkpoints.get(fragment)
        return {
            "node": node.name,
            "cursors": cursors,
            "archives": archives,
            "checkpoints": checkpoints,
        }

    def _on_succ_req(self, node: "DatabaseNode", message: Message) -> None:
        payload = message.payload
        self.system.network.send(
            node.name,
            payload["coordinator"],
            SUCC_REP,
            {
                "ballot": payload["ballot"],
                **self._build_succ_reply(node, payload["fragments"]),
            },
        )

    def _on_succ_rep(self, node: "DatabaseNode", message: Message) -> None:
        self._record_reply(message.payload["ballot"], message.payload)

    def _record_reply(self, ballot: str, reply: dict[str, Any]) -> None:
        state = self._successions.get(ballot)
        if state is not None:
            state.replies[reply["node"]] = reply

    def _finish_succession(self, ballot: str) -> None:
        """Poll deadline: check quorums, elect, and move the token."""
        state = self._successions.pop(ballot, None)
        if state is None:
            return
        state.timer = None
        system = self.system
        agent = system.agents[state.agent]
        if agent.home_node != state.home or any(
            agent.token_for(f).in_transit for f in state.fragments
        ):
            self._abort_failover(state.agent, "agent moved during the poll")
            return
        for fragment in state.fragments:
            total = len(system.replica_set(fragment))
            syncing = system.syncing_replicas.get(fragment, ())
            voters = [
                name
                for name, reply in state.replies.items()
                if fragment in reply["cursors"] and name not in syncing
            ]
            if len(voters) < total // 2 + 1:
                self._abort_failover(
                    state.agent,
                    f"no majority for {fragment!r} "
                    f"({len(voters)}/{total // 2 + 1} of {total})",
                )
                return
        candidates = [
            name
            for name, reply in state.replies.items()
            if not system.nodes[name].down
            and all(
                fragment in reply["cursors"]
                and name not in system.syncing_replicas.get(fragment, ())
                for fragment in state.fragments
            )
        ]
        if not candidates:
            self._abort_failover(state.agent, "no eligible successor")
            return

        def cursor_key(name: str) -> tuple[tuple[int, int], ...]:
            return tuple(
                tuple(state.replies[name]["cursors"][fragment])
                for fragment in state.fragments
            )

        best = max(cursor_key(name) for name in candidates)
        successor = min(n for n in candidates if cursor_key(n) == best)
        system.metrics.inc("token.moves_requested")
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.TOKEN_MOVE_REQUESTED,
                agent=state.agent,
                to=successor,
                transport_delay=self.config.takeover_delay,
            )
        # The shared transport, not the protocol's request_move: every
        # protocol's move handshake involves the (dead) old home.
        system.movement._transport(
            system,
            state.agent,
            successor,
            self.config.takeover_delay,
            lambda: self._takeover(state, successor),
        )

    def _takeover(self, state: _Succession, successor: str) -> None:
        """Token arrived at the successor: cut every fragment over."""
        system = self.system
        node = system.nodes[successor]
        if node.down:
            self._abort_failover(
                state.agent, f"successor {successor!r} died during takeover"
            )
            return
        agent = system.agents[state.agent]
        for fragment in state.fragments:
            self._cut_fragment(state, fragment, node, agent)
        self._c_failovers.inc()
        watch = self._watch.get(state.agent)
        detected = (
            watch.first_miss
            if watch is not None and watch.first_miss is not None
            else state.begun
        )
        mttr = system.sim.now - detected
        self._h_mttr.observe(mttr)
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.AVAIL_FAILOVER_DONE,
                agent=state.agent,
                successor=successor,
                failed_home=state.home,
                mttr=mttr,
            )
        if watch is not None:
            watch.misses = 0
            watch.first_miss = None
            watch.interval = self.config.heartbeat_interval
        self._resume(state.agent)

    def _cut_fragment(
        self,
        state: _Succession,
        fragment: str,
        node: "DatabaseNode",
        agent: Any,
    ) -> None:
        """Catch the successor up, open the new epoch, announce the cut."""
        system = self.system
        streams = node.streams
        # 1. Fold the gathered majority state in: best checkpoint first,
        #    then every archived quasi-transaction in sequence order.
        best_ckpt: FragmentCheckpoint | None = None
        for reply in state.replies.values():
            ckpt = reply["checkpoints"].get(fragment)
            if ckpt is not None and (
                best_ckpt is None or ckpt.cursor > best_ckpt.cursor
            ):
                best_ckpt = ckpt
        if best_ckpt is not None and best_ckpt.cursor > (
            streams.epoch[fragment],
            streams.next_expected[fragment],
        ):
            apply_checkpoint(node, best_ckpt, persist=True)
        merged: dict[int, "QuasiTransaction"] = {}
        for name in sorted(state.replies):
            for seq, quasi in state.replies[name]["archives"].get(
                fragment, {}
            ).items():
                kept = merged.get(seq)
                if kept is None or quasi.epoch > kept.epoch:
                    merged[seq] = quasi
        for seq in sorted(merged):
            if seq >= streams.next_expected[fragment]:
                system.movement.admit(node, merged[seq])
        # 2. Open the new epoch at the majority high-water mark.  The
        #    token's next_seq records the dead home's stream head; any
        #    gap above the cut start is its unpropagated suffix — lost.
        token = agent.token_for(fragment)
        start = streams.next_expected[fragment]
        old_head = int(token.payload.get("next_seq", 0))
        discarded = max(0, old_head - start)
        if discarded:
            self._c_discarded.inc(discarded)
        reply_epochs = [
            reply["cursors"][fragment][0]
            for reply in state.replies.values()
            if fragment in reply["cursors"]
        ]
        new_epoch = (
            max(
                int(token.payload.get("epoch", 0)),
                streams.epoch[fragment],
                *reply_epochs,
            )
            + 1
        )
        token.payload["epoch"] = new_epoch
        token.payload["next_seq"] = start
        # Orphan the discarded suffix in the history recorder: the
        # successor re-mints slots >= start in the new epoch, and the
        # serializability checkers judge the surviving history only.
        # Every commit of this fragment at or above the cut start
        # predates the cut (new-epoch commits do not exist yet).
        for committed in system.recorder.committed:
            if (
                committed.fragment == fragment
                and committed.stream_seq is not None
                and committed.stream_seq >= start
            ):
                system.recorder.record_orphan(
                    committed.txn_id,
                    f"failover epoch cut e{new_epoch} of {fragment!r} "
                    f"at seq {start}",
                )
        lineage = token.payload.setdefault("cuts", [])
        lineage.append((new_epoch, start))
        streams.epoch[fragment] = new_epoch
        self._c_cuts.inc()
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.AVAIL_EPOCH_CUT,
                fragment=fragment,
                epoch=new_epoch,
                start=start,
                node=node.name,
                agent=state.agent,
                discarded=discarded,
            )
        # 3. Announce on the fragment's own propagation plan.  The
        #    network holds the copy addressed to the dead home and
        #    re-delivers it at recovery — the demotion trigger.
        targets, stream = system.propagation_plan(fragment)
        system.broadcast.multicast(
            node.name,
            {
                "type": EPOCH_CUT,
                "fragment": fragment,
                "epoch": new_epoch,
                "start": start,
                "successor": node.name,
                "cuts": list(lineage),
            },
            kind="avail",
            targets=targets,
            stream=stream,
        )

    # -- demotion (epoch-cut receiver side) ---------------------------------

    def _on_cut(
        self, node: "DatabaseNode", sender: str, body: dict[str, Any]
    ) -> None:
        """A replica learns of one or more failover epoch cuts.

        Three cases, by this replica's cursor vs. the earliest unseen
        cut's start ``s``:

        * cursor above ``s`` — **demotion**: this replica holds a
          committed-but-unpropagated suffix the cut declared lost (the
          recovered ex-home, or a replica a late delivery pushed past
          the poll).  Discard ``[s, cursor)`` from archive, WAL, and
          store, rewind to ``s``.
        * cursor at ``s`` — the common live-replica case: park the
          cut; the drain loop activates it immediately.
        * cursor below ``s`` — behind: park the cut; held re-deliveries
          and a resync from the successor close the gap first.

        Cuts are parked (not applied eagerly) so a replica that must
        still admit old-epoch entries below the cut start keeps its
        old epoch until the cursor arrives — and chains of cuts from
        successive failovers activate strictly in order.
        """
        streams = node.streams
        fragment = body["fragment"]
        lineage: list[tuple[int, int]] = [
            (int(e), int(s))
            for e, s in (body.get("cuts") or [(body["epoch"], body["start"])])
        ]
        unseen = sorted(
            (e, s) for e, s in lineage if e > streams.epoch[fragment]
        )
        if not unseen:
            return  # stale announcement (or the successor's own echo)
        rewind_to = min(s for _, s in unseen)
        cursor = streams.next_expected[fragment]
        if cursor > rewind_to:
            if node.apply_queue.depth(fragment) > 0:
                # An install from the doomed suffix may be mid-flight;
                # demotion scrubs the WAL, so let the queue drain first
                # (it must: the old stream's sender is gone).
                self.system.sim.schedule(
                    1.0,
                    lambda: self._on_cut(node, sender, body),
                    label=f"avail demote retry {node.name}",
                )
                return
            self._demote(node, fragment, rewind_to, unseen[0][0])
        for epoch, start in unseen:
            streams.park_cut(fragment, epoch, start)
        drain_buffer(node, fragment)
        last_epoch, last_start = max(lineage)
        if (streams.epoch[fragment], streams.next_expected[fragment]) < (
            last_epoch,
            last_start,
        ):
            # Still short of the newest cut: ask the successor for the
            # missing range (held re-deliveries may also close it; the
            # admission path drops whichever copy arrives second).
            successor = body["successor"]
            if successor != node.name:
                ckpt = node.checkpoints.get(fragment)
                tainted = ckpt is not None and ckpt.upto > rewind_to
                self.system.network.send(
                    node.name,
                    successor,
                    DEMOTE_REQ,
                    {
                        "fragment": fragment,
                        "node": node.name,
                        "cursor": streams.next_expected[fragment],
                        "snapshot": tainted,
                    },
                )

    def _demote(
        self, node: "DatabaseNode", fragment: str, start: int, epoch: int
    ) -> None:
        """Discard this replica's stale suffix ``[start, cursor)``.

        The suffix was committed here (origin) or installed here
        (replica) in an epoch below ``epoch``, but the failover cut
        declared the stream to continue at ``start`` — every other
        replica either never saw the suffix or is discarding it too.
        The store is rebuilt from the durable checkpoint plus the
        scrubbed WAL, which is exactly the crash-recovery replay
        scoped to one fragment.  A checkpoint *covering* part of the
        doomed suffix cannot seed the rebuild (its snapshot folds the
        stale writes in); it is dropped, and the follow-up resync
        requests a fresh snapshot from the successor instead.
        """
        streams = node.streams
        cursor = streams.next_expected[fragment]
        stale = cursor - start
        archive = streams.archive.get(fragment) or {}
        for seq in range(start, cursor):
            quasi = archive.pop(seq, None)
            if quasi is not None:
                streams.installed_sources.discard(quasi.source_txn)
        streams.next_expected[fragment] = start
        node.wal.drop_stale_suffix(fragment, epoch, start)
        ckpt = node.checkpoints.get(fragment)
        if ckpt is not None and ckpt.upto > start:
            node.checkpoints.discard(fragment)
            ckpt = None
        self._rebuild_fragment(node, fragment, ckpt)
        self._c_demotions.inc()
        self._c_discarded.inc(stale)
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                taxonomy.AVAIL_DEMOTE,
                node=node.name,
                fragment=fragment,
                epoch=epoch,
                start=start,
                discarded=stale,
            )

    def _rebuild_fragment(
        self,
        node: "DatabaseNode",
        fragment: str,
        ckpt: FragmentCheckpoint | None,
    ) -> None:
        """Re-derive one fragment's store from checkpoint + scrubbed WAL.

        Mirrors :meth:`DatabaseNode.recover`'s replay, restricted to
        one fragment: snapshot values, then WAL loads (initial values
        not covered by the snapshot), then install records in log
        order.  Objects the discarded suffix created out of thin air
        fall out (they appear in no surviving record).
        """
        system = self.system
        spec = system.catalog.get(fragment)
        values: dict[str, Version] = {}
        if ckpt is not None:
            values.update(ckpt.snapshot)
        floor = ckpt.cursor if ckpt is not None else (-1, -1)
        for record in node.wal.records():
            if record.kind == "load":
                if spec.contains(record.obj) and record.obj not in values:
                    values[record.obj] = Version(
                        record.value, INITIAL_WRITER, 0, 0.0
                    )
                continue
            quasi = record.quasi
            if quasi.fragment != fragment:
                continue
            if (quasi.epoch, quasi.stream_seq) < floor:
                continue  # superseded by the checkpoint snapshot
            for obj, version in quasi.writes:
                values[obj] = version
        for obj in system.fragment_objects(fragment, node.store):
            if obj not in values:
                node.store.drop(obj)
        for obj, version in values.items():
            node.store.install(obj, version)

    # -- demotion resync (successor side) -----------------------------------

    def _on_demote_req(self, node: "DatabaseNode", message: Message) -> None:
        """The successor serves a demoted/behind replica's gap.

        ``snapshot`` requests force a fresh checkpoint (the requester
        lost its own to taint); deferred while the apply queue is busy,
        retried shortly — the recovery manager's own checkpoint rule.
        """
        payload = message.payload
        fragment = payload["fragment"]
        system = self.system
        if payload.get("snapshot"):
            ckpt = system.recovery.checkpoint_now(node, fragment, gossip=False)
            if ckpt is None:
                system.sim.schedule(
                    1.0,
                    lambda: self._on_demote_req(node, message),
                    label=f"avail demote-snap retry {node.name}",
                )
                return
        part = system.recovery._build_part(
            node, payload["node"], fragment, int(payload["cursor"])
        )
        system.network.send(
            node.name,
            payload["node"],
            DEMOTE_REP,
            {"fragment": fragment, "part": part},
        )

    def _on_demote_rep(self, node: "DatabaseNode", message: Message) -> None:
        payload = message.payload
        part = payload["part"]
        checkpoint = part["checkpoint"]
        if checkpoint is not None:
            if apply_checkpoint(node, checkpoint, persist=True):
                self.system.recovery._truncate_wal(node, checkpoint)
            self.system.recovery.tracker.note(
                payload["fragment"], node.name, checkpoint.upto
            )
        for quasi in part["qts"]:
            self.system.movement.admit(node, quasi)
