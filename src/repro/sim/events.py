"""Event objects for the discrete-event simulator."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; ``seq`` is assigned by the simulator
    at scheduling time, so two events at the same instant fire in the
    order they were scheduled.  The callback and its metadata do not
    participate in ordering.

    The class carries ``slots`` — events are the most-allocated object
    in a run, and the wheel scheduler touches ``time``/``seq``/
    ``cancelled`` on every hop.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation handle returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: the event stays in its queue structure but is
    skipped by the run loop.  This keeps scheduling O(log n) (heap) or
    O(1) (wheel) with no queue surgery.  The optional ``on_cancel``
    callback lets the simulator keep its pending-event count exact —
    and trigger tombstone compaction — without scanning the queue.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self,
        event: Event,
        on_cancel: Callable[[], None] | None = None,
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time(self) -> float:
        """The simulation time at which the event will fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op after
        the event has already fired."""
        if self._event.cancelled or self._event.fired:
            return
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
