"""Discrete-event simulation kernel.

The kernel is deliberately tiny: a clock, a priority queue of events,
and a run loop.  Everything else in the library (network delays,
partition schedules, transaction arrivals, agent moves) is expressed as
events scheduled on one :class:`~repro.sim.simulator.Simulator`.

Determinism is a hard requirement — every experiment in the paper
reproduction must be replayable from a seed — so ties in event time are
broken by a monotonically increasing sequence number, and all
randomness flows through :class:`~repro.sim.rng.SeededRng`.
"""

from repro.sim.events import Event, EventHandle
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator

__all__ = ["Event", "EventHandle", "SeededRng", "Simulator"]
