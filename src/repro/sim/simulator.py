"""The discrete-event run loop."""

from __future__ import annotations

import heapq
from collections import Counter
from collections.abc import Callable

from repro.errors import SimulationError
from repro.obs.taxonomy import SIM_FIRE
from repro.obs.trace import Tracer
from repro.sim.events import Event, EventHandle


class Simulator:
    """A deterministic discrete-event simulator.

    Components schedule callbacks at future simulation times; ``run``
    fires them in ``(time, scheduling-order)`` order.  Time is a float
    in abstract "ticks" — experiments interpret a tick as roughly one
    millisecond, but nothing in the library depends on the unit.

    A structured :class:`~repro.obs.trace.Tracer` can be attached
    (:attr:`tracer`); while it is enabled, every fired event emits a
    ``sim.fire`` trace record carrying the event's label.  ``sim.fire``
    is in the tracer's default exclude set — opt in with
    ``tracer.exclude.discard(taxonomy.SIM_FIRE)``.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._running = False
        self._fired = 0
        self._pending = 0
        self._tracer: Tracer | None = None
        if tracer is not None:
            self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        Maintained incrementally (O(1)) — scheduling increments it,
        firing and cancellation decrement it.
        """
        return self._pending

    @property
    def tracer(self) -> Tracer | None:
        """The attached structured tracer, if any."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer | None) -> None:
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: self._now
        self._tracer = tracer

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ticks from now.

        ``delay`` may be zero (fires after already-queued events at the
        current instant) but not negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._pending += 1
        return EventHandle(event, on_cancel=self._on_cancel)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, label)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Fire events until the queue drains or ``until`` is passed.

        Events scheduled exactly at ``until`` still fire.  The
        ``max_events`` guard turns accidental event loops (a callback
        that reschedules itself at delay zero, say, or a retransmit
        timer that never stops re-arming) into a loud
        :class:`SimulationError` instead of a hang; the error reports
        the most frequent labels among the last events fired so the
        looping component is identifiable from the message alone.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        try:
            budget = max_events
            # Labels of recently fired events, recorded only once the
            # budget is nearly spent so the normal path pays nothing.
            recent: list[str] | None = None
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.fired = True
                self._pending -= 1
                tracer = self._tracer
                if tracer is not None and tracer.enabled:
                    tracer.emit(SIM_FIRE, label=event.label)
                if recent is None and budget <= 2048:
                    recent = []
                if recent is not None:
                    recent.append(event.label or "<unlabelled>")
                event.callback()
                self._fired += 1
                budget -= 1
                if budget <= 0:
                    top = ", ".join(
                        f"{label!r} x{count}"
                        for label, count in Counter(recent or ()).most_common(5)
                    )
                    raise SimulationError(
                        f"exceeded max_events={max_events}; probable event"
                        f" loop (most frequent recent events: {top})"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def advance_to(self, time: float) -> None:
        """Run all events up to and including ``time``, then set the clock.

        Convenience for experiments that interleave scripted phases
        ("run the workload until t=500, then heal the partition").
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance backwards (now={self._now}, target={time})"
            )
        self.run(until=time)

    # -- internals --------------------------------------------------------

    def _on_cancel(self) -> None:
        self._pending -= 1
