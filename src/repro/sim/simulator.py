"""The discrete-event run loop.

The scheduling core is a calendar-queue / event-wheel built for the
dense zero- and small-delay traffic that batching, loopback delivery,
and the install pipeline generate.  Near-term events land in per-tick
buckets with O(1) appends; far timers park in an overflow heap and
migrate as the wheel reaches their bucket.  Same-instant events fire as
one *run* batched through a FIFO deque, so a zero-delay cascade never
touches a heap at all.

Events fire in exactly ``(time, scheduling-order)`` order — the hard
determinism contract that golden traces, the lineage auditor, and chaos
seeds are built on — and cancelled-event tombstones are compacted once
they outnumber live events, so cancel-heavy workloads (retransmit
timers under chaos) keep bounded queues.

(The original binary-heap core, kept behind ``REPRO_SIM_SCHEDULER=heap``
for one release while ``tests/test_scheduler_equivalence.py`` proved the
wheel fired identical schedules, has been removed; the wheel is the only
core.)
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from collections.abc import Callable

from repro.errors import SimulationError
from repro.obs.taxonomy import SIM_FIRE
from repro.obs.trace import Tracer
from repro.sim.events import Event, EventHandle

#: Tombstone floor: compaction never triggers below this many cancelled
#: entries, so tiny runs never pay a rebuild.
_COMPACT_MIN = 64

#: Relative tolerance for :meth:`Simulator.schedule_at` deltas that come
#: out epsilon-negative from accumulated float drift.
_PAST_EPSILON = 1e-9


class Simulator:
    """A deterministic discrete-event simulator.

    Components schedule callbacks at future simulation times; ``run``
    fires them in ``(time, scheduling-order)`` order.  Time is a float
    in abstract "ticks" — experiments interpret a tick as roughly one
    millisecond, but nothing in the library depends on the unit.

    A structured :class:`~repro.obs.trace.Tracer` can be attached
    (:attr:`tracer`); while it is enabled, fired events emit ``sim.fire``
    trace records carrying the event's label.  ``sim.fire`` is in the
    tracer's default exclude set — opt in with
    ``tracer.exclude.discard(taxonomy.SIM_FIRE)``.  At scale, set
    :attr:`fire_trace_every` to N > 1 to sample every Nth fired event
    instead of all of them.

    Parameters
    ----------
    wheel_width:
        Simulated-time span of one wheel bucket.
    wheel_slots:
        Number of buckets; events beyond ``wheel_width * wheel_slots``
        ticks ahead overflow to a far-timer heap.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        wheel_width: float = 1.0,
        wheel_slots: int = 1024,
    ) -> None:
        if wheel_width <= 0:
            raise SimulationError("wheel_width must be positive")
        if wheel_slots < 2:
            raise SimulationError("wheel_slots must be >= 2")
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._fired = 0
        self._pending = 0
        self._cancelled = 0  # tombstones still sitting in a queue
        self._tracer: Tracer | None = None
        #: Emit a ``sim.fire`` trace record for every Nth fired event
        #: (1 = every event).  Sampling only thins the firehose channel;
        #: all other trace events stay exact.
        self.fire_trace_every = 1
        self._width = wheel_width
        self._slots = wheel_slots
        self._wheel: list[list[Event]] = [[] for _ in range(wheel_slots)]
        self._wheel_len = 0  # entries in buckets, tombstones included
        self._cursor = 0  # absolute bucket index being (or next to be) processed
        self._overflow: list[tuple[float, int, Event]] = []
        # Transient per-run() structures for the bucket in flight.
        self._local: list[tuple[float, int, Event]] | None = None
        self._local_bucket = -1
        self._run_batch: deque[Event] = deque()
        self._run_time: float | None = None
        if tracer is not None:
            self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        Maintained incrementally (O(1)) — scheduling increments it,
        firing and cancellation decrement it.
        """
        return self._pending

    @property
    def queue_len(self) -> int:
        """Entries currently held in queue structures, tombstones included.

        ``queue_len - pending`` is the tombstone count; the compaction
        regression tests assert it stays bounded under cancel-heavy
        workloads.
        """
        n = self._wheel_len + len(self._overflow) + len(self._run_batch)
        if self._local is not None:
            n += len(self._local)
        return n

    @property
    def tracer(self) -> Tracer | None:
        """The attached structured tracer, if any."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer | None) -> None:
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: self._now
        self._tracer = tracer

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ticks from now.

        ``delay`` may be zero (fires after already-queued events at the
        current instant) but not negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, self._seq, callback, label)
        self._seq += 1
        self._pending += 1
        self._wheel_insert(event)
        return EventHandle(event, on_cancel=self._on_cancel)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``.

        ``time == now`` expressed through a differently-accumulated
        float sum can come out an epsilon *below* ``now``; such deltas
        are clamped to zero instead of raising, so long runs do not
        crash on harmless drift.
        """
        delay = time - self._now
        if delay < 0.0 and -delay <= _PAST_EPSILON * (abs(self._now) + 1.0):
            delay = 0.0
        return self.schedule(delay, callback, label)

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[[], None],
        until: float,
        label: str = "",
    ) -> EventHandle:
        """Fire ``callback`` every ``interval`` ticks, bounded by ``until``.

        The first firing is at ``now + interval``; the chain re-arms
        itself only while the *next* firing would still be at or before
        ``until``, so a quiesce (``run()`` with no horizon) always
        drains — an unbounded self-rescheduling event would keep the
        queue non-empty forever.  Cancelling the returned handle stops
        the chain only until the first firing; periodic consumers that
        need mid-run shutdown should guard inside the callback.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        if self._now + interval > until:
            raise SimulationError(
                f"recurring horizon {until} is before the first firing "
                f"at {self._now + interval}"
            )

        def fire() -> None:
            callback()
            if self._now + interval <= until:
                self.schedule(interval, fire, label)

        return self.schedule(interval, fire, label)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Fire events until the queue drains or ``until`` is passed.

        Events scheduled exactly at ``until`` still fire.  The
        ``max_events`` guard turns accidental event loops (a callback
        that reschedules itself at delay zero, say, or a retransmit
        timer that never stops re-arming) into a loud
        :class:`SimulationError` instead of a hang; the error reports
        the most frequent labels among the last events fired so the
        looping component is identifiable from the message alone.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        try:
            try:
                self._run_wheel(until, max_events)
            finally:
                # Rebase on every exit (drain, ``until``, or an
                # exception out of a callback): park any still-
                # bucketed events in the time-keyed overflow heap
                # and realign the cursor with the clock.  This keeps
                # the wheel's one invariant — every bucketed event's
                # index lies in [cursor, cursor + slots) — without
                # special-casing how the loop stopped.
                if until is not None and self._now < until:
                    self._now = until
                self._rebase_wheel()
        finally:
            self._running = False

    def advance_to(self, time: float) -> None:
        """Run all events up to and including ``time``, then set the clock.

        Convenience for experiments that interleave scripted phases
        ("run the workload until t=500, then heal the partition").
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance backwards (now={self._now}, target={time})"
            )
        self.run(until=time)

    # -- wheel core -------------------------------------------------------

    def _wheel_insert(self, event: Event) -> None:
        time = event.time
        if time == self._run_time:
            # Same-instant traffic (zero-delay loopback, install
            # cascades): joins the in-flight run with a plain append.
            self._run_batch.append(event)
            return
        index = int(time / self._width)
        if index == self._local_bucket:
            # Later event inside the bucket currently being processed.
            heapq.heappush(self._local, (time, event.seq, event))
            return
        if index < self._cursor + self._slots:
            self._wheel[index % self._slots].append(event)
            self._wheel_len += 1
        else:
            heapq.heappush(self._overflow, (time, event.seq, event))

    def _run_wheel(self, until: float | None, max_events: int) -> None:
        budget = max_events
        # Labels of recently fired events, recorded only once the
        # budget is nearly spent so the normal path pays nothing.
        recent: list[str] | None = None
        width = self._width
        slots = self._slots
        wheel = self._wheel
        run_batch = self._run_batch
        while True:
            # -- pick the next bucket to process --------------------------
            overflow = self._overflow
            if self._wheel_len == 0:
                # Skip cancelled far timers so they cannot hide the
                # true next event (or keep an empty run spinning).
                while overflow and overflow[0][2].cancelled:
                    heapq.heappop(overflow)
                    self._cancelled -= 1
                if not overflow:
                    return
                bucket = int(overflow[0][0] / width)
                if bucket < self._cursor:
                    bucket = self._cursor
            else:
                bucket = self._cursor
                while not wheel[bucket % slots]:
                    bucket += 1
                # A far timer already migrated past?  Overflow entries
                # are strictly beyond the horizon at insert time, but
                # the cursor may since have advanced toward them.
                while overflow and overflow[0][2].cancelled:
                    heapq.heappop(overflow)
                    self._cancelled -= 1
                if overflow:
                    over_bucket = int(overflow[0][0] / width)
                    if over_bucket < bucket:
                        bucket = over_bucket
            self._cursor = bucket
            bucket_end = (bucket + 1) * width
            # -- gather the bucket: wheel slot + matured far timers -------
            slot = wheel[bucket % slots]
            if slot:
                wheel[bucket % slots] = []
                self._wheel_len -= len(slot)
                local = [
                    (event.time, event.seq, event)
                    for event in slot
                    if not event.cancelled
                ]
                self._cancelled -= len(slot) - len(local)
            else:
                local = []
            while overflow and overflow[0][0] < bucket_end:
                entry = heapq.heappop(overflow)
                if entry[2].cancelled:
                    self._cancelled -= 1
                else:
                    local.append(entry)
            if not local:
                self._cursor = bucket + 1
                continue
            heapq.heapify(local)
            self._local = local
            self._local_bucket = bucket
            try:
                # -- fire the bucket in (time, seq) order -----------------
                while local:
                    run_time = local[0][0]
                    if until is not None and run_time > until:
                        return  # leftovers restored by finally
                    while local and local[0][0] == run_time:
                        run_batch.append(heapq.heappop(local)[2])
                    self._run_time = run_time
                    self._now = run_time
                    while run_batch:
                        event = run_batch.popleft()
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.fired = True
                        self._pending -= 1
                        self._fired += 1
                        tracer = self._tracer
                        if tracer is not None and tracer.enabled:
                            every = self.fire_trace_every
                            if every <= 1 or self._fired % every == 0:
                                tracer.emit(SIM_FIRE, label=event.label)
                        if recent is None and budget <= 2048:
                            recent = []
                        if recent is not None:
                            recent.append(event.label or "<unlabelled>")
                        event.callback()
                        budget -= 1
                        if budget <= 0:
                            self._raise_exhausted(max_events, recent)
                    self._run_time = None
            finally:
                self._run_time = None
                self._local = None
                self._local_bucket = -1
                leftovers = wheel[bucket % slots]
                for _t, _s, event in local:
                    leftovers.append(event)
                    self._wheel_len += 1
                for event in run_batch:
                    leftovers.append(event)
                    self._wheel_len += 1
                run_batch.clear()
            self._cursor = bucket + 1

    # -- internals --------------------------------------------------------

    def _rebase_wheel(self) -> None:
        """Park all bucketed events in the overflow heap and realign the
        cursor with the clock.

        Called whenever a ``run()`` returns.  Between runs the only
        invariant that matters is "every queued event is keyed by its
        absolute time"; the overflow heap provides it unconditionally,
        and the next run migrates events back into buckets as the wheel
        reaches them.  Without this, a premature exit (``until`` hit,
        budget exhausted, a callback raising) can leave the cursor ahead
        of the clock, where a later zero-delay insert would land in a
        bucket the scan has already passed.
        """
        if self._wheel_len:
            overflow = self._overflow
            for index, slot in enumerate(self._wheel):
                if not slot:
                    continue
                for event in slot:
                    if event.cancelled:
                        self._cancelled -= 1
                    else:
                        heapq.heappush(
                            overflow, (event.time, event.seq, event)
                        )
                self._wheel[index] = []
            self._wheel_len = 0
        self._cursor = int(self._now / self._width)

    def _raise_exhausted(self, max_events: int, recent: list[str] | None) -> None:
        top = ", ".join(
            f"{label!r} x{count}"
            for label, count in Counter(recent or ()).most_common(5)
        )
        raise SimulationError(
            f"exceeded max_events={max_events}; probable event"
            f" loop (most frequent recent events: {top})"
        )

    def _on_cancel(self) -> None:
        self._pending -= 1
        self._cancelled += 1
        # Tombstone compaction: once cancelled entries outnumber live
        # ones (retransmit timers cancel by the thousands under chaos),
        # rebuild the queue structures without them so memory tracks the
        # live event count instead of the cancellation history.
        if self._cancelled > _COMPACT_MIN and self._cancelled > self._pending:
            self._compact()

    def _compact(self) -> None:
        removed = 0
        for index, slot in enumerate(self._wheel):
            if not slot:
                continue
            live_slot = [event for event in slot if not event.cancelled]
            dropped = len(slot) - len(live_slot)
            if dropped:
                self._wheel[index] = live_slot
                self._wheel_len -= dropped
                removed += dropped
        live_over = [
            entry for entry in self._overflow if not entry[2].cancelled
        ]
        removed += len(self._overflow) - len(live_over)
        heapq.heapify(live_over)
        self._overflow = live_over
        # The transient run/local structures are left alone: they are
        # drained within the current bucket anyway, and their tombstones
        # keep their _cancelled accounting until popped.
        self._cancelled -= removed
