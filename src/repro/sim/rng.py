"""Seeded randomness for reproducible workloads.

All stochastic choices in the library (arrival times, transaction
parameters, partition timing in randomized experiments) must flow
through a :class:`SeededRng` so that every experiment is replayable
from its seed.  The class wraps :class:`random.Random` and adds the
distributions the workload generators need.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


class SeededRng:
    """A reproducible random source.

    Child streams (:meth:`fork`) are derived deterministically from the
    parent, so giving each component its own stream keeps components'
    draws independent of each other's call counts.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        self._forks = 0

    def fork(self, label: str = "") -> "SeededRng":
        """Derive an independent child stream.

        The child's seed mixes the parent seed, a fork counter, and the
        label through a process-independent polynomial hash (Python's
        built-in ``hash`` of strings is randomized per process, which
        would silently break cross-run reproducibility).
        """
        self._forks += 1
        mask = 0x7FFF_FFFF_FFFF_FFFF
        mixed = (self.seed * 1_000_003 + self._forks * 8_191) & mask
        for char in label:
            mixed = (mixed * 131 + ord(char)) & mask
        return SeededRng(mixed)

    # -- primitive draws ----------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """k distinct elements drawn without replacement."""
        return self._random.sample(seq, k)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._random.random() < p

    # -- workload-shaped draws ----------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival time with the given mean."""
        return self._random.expovariate(1.0 / mean)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """An index in [0, n) with Zipf-like skew (0 = most popular).

        Used for hot-account access patterns in the banking workload.
        ``skew=0`` degenerates to uniform.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew <= 0:
            return self._random.randrange(n)
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target <= acc:
                return i
        return n - 1
