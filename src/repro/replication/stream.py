"""Per-node replication stream bookkeeping.

One :class:`StreamLog` per node holds everything a replica knows about
the fragment update streams it follows: the next expected sequence
number and active epoch per fragment, the out-of-order admission
buffer, the duplicate-suppression set, and the archive of every
quasi-transaction seen (which the majority-move resync, the corrective
M0 replay, and crash recovery's anti-entropy all read).

This state used to live as five loose attributes on ``DatabaseNode``;
pulling it into one object gives the admission policies a single
surface to program against and makes the crash-stop contract explicit:
the whole log is volatile (:meth:`clear`), rebuilt from the WAL via
:meth:`record` + :meth:`observe` at recovery.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.transaction import QuasiTransaction


class StreamLog:
    """Volatile per-fragment stream state of one replica."""

    __slots__ = (
        "next_expected",
        "epoch",
        "buffer",
        "installed_sources",
        "archive",
        "arrived_at",
        "pruned_below",
        "pending_cut",
    )

    def __init__(self) -> None:
        #: fragment -> next stream sequence number this replica expects.
        self.next_expected: dict[str, int] = defaultdict(int)
        #: fragment -> currently active epoch (bumped by moves, §4.4.3).
        self.epoch: dict[str, int] = defaultdict(int)
        #: fragment -> {(epoch, seq): quasi} out-of-order admission buffer.
        self.buffer: dict[str, dict[tuple[int, int], QuasiTransaction]] = (
            defaultdict(dict)
        )
        #: source transaction ids already installed (duplicate filter).
        self.installed_sources: set[str] = set()
        #: fragment -> {seq: quasi} archive of everything seen.
        self.archive: dict[str, dict[int, QuasiTransaction]] = defaultdict(dict)
        #: source txn -> first pipeline-delivery time at this replica,
        #: consumed by the apply queue for the admission-wait histogram
        #: (delivery -> queue entry, reorder buffering included).
        self.arrived_at: dict[str, float] = {}
        #: fragment -> lowest stream seq still retained in the archive
        #: (everything below was compacted behind the watermark and is
        #: covered by this replica's durable checkpoint).
        self.pruned_below: dict[str, int] = {}
        #: fragment -> sorted ``(epoch, start_seq)`` failover epoch cuts
        #: this replica has not reached yet: the cursor must first admit
        #: the old-epoch prefix ``[cursor, start_seq)`` before each new
        #: epoch activates (the successor's stream continues at
        #: ``start_seq`` in the new epoch).  A list because a lagging
        #: replica can learn of several successive failovers at once.
        self.pending_cut: dict[str, list[tuple[int, int]]] = {}

    def seen(self, quasi: QuasiTransaction) -> bool:
        """True if this quasi-transaction was already installed here."""
        return quasi.source_txn in self.installed_sources

    def record(self, quasi: QuasiTransaction) -> None:
        """Note a quasi-transaction as installed (dedup set + archive)."""
        self.installed_sources.add(quasi.source_txn)
        self.archive[quasi.fragment][quasi.stream_seq] = quasi

    def observe(self, quasi: QuasiTransaction) -> None:
        """Advance the stream cursor past an installed quasi-transaction.

        Used at the origin (its own commits define the stream head) and
        during WAL replay; ordered admission advances the cursor itself.
        """
        fragment = quasi.fragment
        self.next_expected[fragment] = max(
            self.next_expected[fragment], quasi.stream_seq + 1
        )
        self.epoch[fragment] = max(self.epoch[fragment], quasi.epoch)

    def prune(self, fragment: str, below: int) -> int:
        """Compact stream state below a watermark; returns entries dropped.

        Drops archived quasi-transactions with ``stream_seq < below``
        (their source txns leave the dedup set too — ordered admission
        already rejects anything under the cursor before consulting
        it), plus admission-buffer strays the cursor has passed.  The
        caller guarantees ``below`` is covered by this replica's
        durable checkpoint, so the replica can still serve any rejoiner
        from checkpoint + retained tail.
        """
        floor = max(below, self.pruned_below.get(fragment, 0))
        entries = self.archive.get(fragment)
        dropped = 0
        if entries is not None:
            for seq in [s for s in entries if s < floor]:
                self.installed_sources.discard(entries.pop(seq).source_txn)
                dropped += 1
        parked = self.buffer.get(fragment)
        if parked:
            cursor = (self.epoch[fragment], self.next_expected[fragment])
            for key in [k for k in parked if k < cursor]:
                del parked[key]
                dropped += 1
        self.pruned_below[fragment] = floor
        return dropped

    def park_cut(self, fragment: str, epoch: int, start: int) -> None:
        """Remember an epoch cut whose start the cursor has not reached."""
        cuts = self.pending_cut.setdefault(fragment, [])
        if (epoch, start) not in cuts:
            cuts.append((epoch, start))
            cuts.sort()

    def maybe_cut(self, fragment: str) -> bool:
        """Activate a parked epoch cut once the cursor reaches its start.

        Returns True when the earliest applicable cut activated (the
        fragment's epoch advanced), so the caller can re-drain the
        admission buffer for new-epoch entries parked behind it.  Cuts
        a later epoch jump has superseded are discarded.
        """
        cuts = self.pending_cut.get(fragment)
        while cuts:
            epoch, start = cuts[0]
            if self.epoch[fragment] >= epoch:
                cuts.pop(0)
                continue
            if self.next_expected[fragment] < start:
                return False
            self.epoch[fragment] = epoch
            cuts.pop(0)
            if not cuts:
                del self.pending_cut[fragment]
            return True
        if cuts is not None:
            del self.pending_cut[fragment]
        return False

    def clear(self) -> None:
        """Crash-stop: the whole log is volatile."""
        self.next_expected.clear()
        self.epoch.clear()
        self.buffer.clear()
        self.installed_sources.clear()
        self.archive.clear()
        self.arrived_at.clear()
        self.pruned_below.clear()
        self.pending_cut.clear()
