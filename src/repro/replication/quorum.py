"""Quorum reads for fragments the submitting node does not replicate.

Under partial replication a node holds only the fragments in whose
replica sets it appears; a read-only transaction submitted elsewhere
can no longer run against the local store.  The quorum-read service
implements the read half of Kumar & Agarwal's quorum-consensus
protocol adapted to the paper's update model:

1. the submitting node fans a version request to every member of the
   fragment's replica set;
2. each live, reachable replica answers with the versions it currently
   holds for the requested objects (its *vote*);
3. once ``read_quorum`` votes are in (default: a majority of the
   replica set), the highest version of each object wins the vote —
   versions are totally ordered along the fragment's update stream, so
   the winner is the newest state any quorum member has installed;
4. the transaction body then executes at the submitting node with the
   voted versions pinned via ``spec.meta['remote_versions']`` (the
   same override channel the Section 4.1 remote-lock strategy uses).

Because a majority is enough, reads keep being served when the
fragment's agent node is crashed or partitioned away — the
availability property the §4.4 protocols buy for updates extends to
non-local reads.  The staleness bound: the voted version is at least
as new as anything a majority of the replica set has installed, and
version numbers observed by repeated quorum reads are monotone as long
as quorums intersect (``2 * read_quorum > k``).

The service is *not* a write quorum — updates still propagate through
the replication pipeline — so a quorum read can trail the agent's own
replica by in-flight propagation, exactly like a local read at any
non-agent replica always could.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.transaction import RequestStatus, RequestTracker, TransactionSpec
from repro.errors import DesignError
from repro.net.message import Message
from repro.obs import taxonomy
from repro.storage.values import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase
    from repro.sim.simulator import EventHandle

#: Unicast kinds for the version-vote exchange.
QREAD_REQ = "qread-req"
QREAD_REP = "qread-rep"


@dataclass(frozen=True, slots=True)
class QuorumConfig:
    """Policy knobs for the quorum-read service.

    ``read_quorum=None`` (default) means a majority of each fragment's
    replica set (``k // 2 + 1``); an explicit value is clamped to the
    replica-set size.  ``timeout`` bounds how long a read waits for its
    quorum before finishing ``TIMED_OUT`` — unreachable replicas never
    answer, so the timer is what converts a lost quorum into a visible
    outcome instead of a hung tracker.
    """

    read_quorum: int | None = None
    timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.read_quorum is not None and self.read_quorum < 1:
            raise DesignError("read_quorum must be >= 1 (or None)")
        if self.timeout <= 0:
            raise DesignError("timeout must be positive")


@dataclass
class _PendingRead:
    """One in-flight quorum read: votes gathered, quorums still owed."""

    spec: TransactionSpec
    tracker: RequestTracker
    node: str
    #: fragment -> objects requested from that fragment's replica set.
    objects: dict[str, list[str]]
    #: fragment -> votes still required before the fragment resolves.
    needed: dict[str, int]
    #: fragment -> replier -> {object: version} vote.
    votes: dict[str, dict[str, dict[str, Version]]] = field(
        default_factory=dict
    )
    timer: "EventHandle | None" = None
    done: bool = False
    #: the one permitted re-fan after a mid-flight quorum loss (a
    #: replica crashed, or a reconfiguration changed the set).
    retried: bool = False


class QuorumReadManager:
    """Fan-out, vote collection, and version resolution for quorum reads."""

    def __init__(self, config: QuorumConfig | None = None) -> None:
        self.config = config or QuorumConfig()
        self.system: "FragmentedDatabase | None" = None
        self._pending: dict[str, _PendingRead] = {}
        self._counter = 0

    # -- wiring -------------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        """Bind to the system: message handlers, counters, gauges."""
        self.system = system
        metrics = system.metrics
        self._c_reads = metrics.counter("quorum.reads")
        self._c_fanout = metrics.counter("quorum.requests_sent")
        self._c_replies = metrics.counter("quorum.replies")
        self._c_served = metrics.counter("quorum.served")
        self._c_timeouts = metrics.counter("quorum.timeouts")
        self._c_retries = metrics.counter("quorum.retries")
        self._c_late = metrics.counter("quorum.late_replies")
        metrics.gauge("quorum.pending_now", lambda: len(self._pending))
        for node in system.nodes.values():
            self.register_node(node)

    def register_node(self, node: "DatabaseNode") -> None:
        """Install the version-vote message handlers on one node."""
        node.register_unicast(
            QREAD_REQ, lambda msg, n=node: self._on_request(n, msg)
        )
        node.register_unicast(
            QREAD_REP, lambda msg, n=node: self._on_reply(n, msg)
        )

    # -- submission-side API ------------------------------------------------

    def remote_fragments(
        self, node: str, spec: TransactionSpec
    ) -> dict[str, list[str]]:
        """Declared read objects grouped by non-local fragment.

        Empty when every declared read is locally replicated (the
        common case — reads stay a purely local operation, exactly as
        before partial replication).
        """
        system = self.system
        remote: dict[str, list[str]] = {}
        for obj in spec.reads:
            fragment = system.catalog.fragment_of(obj)
            if not system.replicates(node, fragment):
                remote.setdefault(fragment, []).append(obj)
        return remote

    def quorum_size(self, fragment: str) -> int:
        """Votes required to resolve a read of ``fragment``.

        Sized over the *countable* replicas: a joiner still syncing
        through reconfiguration holds an incomplete copy, so it
        neither votes nor inflates the majority it would have to join.
        """
        k = len(self.system.countable_replicas(fragment))
        if self.config.read_quorum is None:
            return k // 2 + 1
        return min(self.config.read_quorum, k)

    def begin_read(
        self,
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        remote: dict[str, list[str]],
    ) -> None:
        """Start the version vote for one read-only transaction."""
        system = self.system
        self._c_reads.inc()
        self._counter += 1
        req_id = f"q{self._counter}"
        state = _PendingRead(
            spec=spec,
            tracker=tracker,
            node=node.name,
            objects={f: sorted(objs) for f, objs in remote.items()},
            needed={f: self.quorum_size(f) for f in remote},
        )
        self._pending[req_id] = state
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.QUORUM_READ_BEGIN,
                txn=spec.txn_id,
                req=req_id,
                node=node.name,
                fragments={
                    f: {
                        "objects": state.objects[f],
                        "quorum": state.needed[f],
                        "replicas": list(system.countable_replicas(f)),
                    }
                    for f in sorted(remote)
                },
            )
        send = system.network.send
        for fragment in sorted(remote):
            request = {
                "req": req_id,
                "requester": node.name,
                "fragment": fragment,
                "objects": state.objects[fragment],
            }
            for replica in system.countable_replicas(fragment):
                if replica == node.name:
                    continue
                self._c_fanout.inc()
                send(node.name, replica, QREAD_REQ, request)
        state.timer = system.sim.schedule(
            self.config.timeout,
            lambda: self._timeout(req_id),
            label=f"quorum-read timeout {node.name}",
        )

    # -- replica side -------------------------------------------------------

    def _on_request(self, node: "DatabaseNode", message: Message) -> None:
        """A replica votes with the versions it currently holds."""
        payload = message.payload
        store = node.store
        versions = {
            obj: store.read_version(obj)
            for obj in payload["objects"]
            if store.exists(obj)
        }
        self.system.network.send(
            node.name,
            payload["requester"],
            QREAD_REP,
            {
                "req": payload["req"],
                "fragment": payload["fragment"],
                "node": node.name,
                "versions": versions,
            },
        )

    # -- requester side -----------------------------------------------------

    def _on_reply(self, node: "DatabaseNode", message: Message) -> None:
        payload = message.payload
        state = self._pending.get(payload["req"])
        if state is None or state.done:
            self._c_late.inc()
            return
        fragment = payload["fragment"]
        if fragment not in state.needed:
            return
        votes = state.votes.setdefault(fragment, {})
        if payload["node"] in votes:
            return  # duplicate vote (retransmission)
        votes[payload["node"]] = payload["versions"]
        self._c_replies.inc()
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                taxonomy.QUORUM_READ_REPLY,
                txn=state.spec.txn_id,
                req=payload["req"],
                fragment=fragment,
                replica=payload["node"],
                versions={
                    obj: version.version_no
                    for obj, version in payload["versions"].items()
                },
            )
        if all(
            len(state.votes.get(f, ())) >= needed
            for f, needed in state.needed.items()
        ):
            self._resolve(payload["req"], state)

    def _resolve(self, req_id: str, state: _PendingRead) -> None:
        """Quorum reached on every fragment: vote and run the body."""
        system = self.system
        state.done = True
        del self._pending[req_id]
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        overrides: dict[str, Version] = dict(
            state.spec.meta.get("remote_versions") or {}
        )
        for fragment, objects in state.objects.items():
            votes = state.votes[fragment]
            for obj in objects:
                best: Version | None = None
                for vote in votes.values():
                    version = vote.get(obj)
                    if version is None:
                        continue
                    if best is None or version.newer_than(best):
                        best = version
                if best is not None:
                    overrides[obj] = best
        state.spec.meta["remote_versions"] = overrides
        self._c_served.inc()
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.QUORUM_READ_RESOLVE,
                txn=state.spec.txn_id,
                req=req_id,
                node=state.node,
                versions={
                    obj: version.version_no
                    for obj, version in sorted(overrides.items())
                },
                voters={
                    f: sorted(votes) for f, votes in sorted(state.votes.items())
                },
            )
        node = system.nodes[state.node]
        if node.down:
            # The requester crashed while the vote was in flight; its
            # volatile scheduler state is gone, so the read cannot run.
            state.tracker.finish(
                RequestStatus.TIMED_OUT,
                system.sim.now,
                reason="quorum read requester crashed",
            )
            return
        system.strategy.begin_readonly(system, node, state.spec, state.tracker)

    def _timeout(self, req_id: str) -> None:
        state = self._pending.get(req_id)
        if state is None or state.done:
            return
        if not state.retried:
            self._retry(req_id, state)
            return
        del self._pending[req_id]
        state.done = True
        state.timer = None
        self._c_timeouts.inc()
        missing = {
            fragment: needed - len(state.votes.get(fragment, ()))
            for fragment, needed in state.needed.items()
            if len(state.votes.get(fragment, ())) < needed
        }
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                taxonomy.QUORUM_READ_TIMEOUT,
                txn=state.spec.txn_id,
                req=req_id,
                node=state.node,
                missing=missing,
            )
        state.tracker.finish(
            RequestStatus.TIMED_OUT,
            self.system.sim.now,
            reason=(
                f"quorum read timed out waiting for "
                f"{sorted(missing)} ({missing})"
            ),
        )

    def _retry(self, req_id: str, state: _PendingRead) -> None:
        """First deadline: the quorum may have been lost mid-flight.

        A replica that crashed after the fan-out never votes, and a
        failover or reconfiguration may have changed the replica set
        under the read.  Re-size each owed fragment's quorum against
        the *current* countable set, re-fan to members that have not
        voted, and give the read one more timeout before it fails.
        """
        system = self.system
        state.retried = True
        state.timer = None
        self._c_retries.inc()
        owed = sorted(
            fragment
            for fragment, needed in state.needed.items()
            if len(state.votes.get(fragment, ())) < needed
        )
        for fragment in owed:
            state.needed[fragment] = self.quorum_size(fragment)
            request = {
                "req": req_id,
                "requester": state.node,
                "fragment": fragment,
                "objects": state.objects[fragment],
            }
            for replica in system.countable_replicas(fragment):
                if replica == state.node:
                    continue
                if replica in state.votes.get(fragment, {}):
                    continue
                self._c_fanout.inc()
                system.network.send(state.node, replica, QREAD_REQ, request)
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.QUORUM_READ_RETRY,
                txn=state.spec.txn_id,
                req=req_id,
                node=state.node,
                fragments=owed,
                quorums={f: state.needed[f] for f in owed},
            )
        if all(
            len(state.votes.get(f, ())) >= needed
            for f, needed in state.needed.items()
        ):
            # A shrunken replica set may have satisfied the read with
            # the votes already gathered.
            self._resolve(req_id, state)
            return
        state.timer = system.sim.schedule(
            self.config.timeout,
            lambda: self._timeout(req_id),
            label=f"quorum-read retry timeout {state.node}",
        )
