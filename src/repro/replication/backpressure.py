"""Backpressure: lagging replicas throttle the fragment's agent.

When a bounded apply queue overflows at some replica, growing the
buffer without limit would just trade availability for memory.  Instead
the replica *engages* backpressure for the fragment; while any replica
is engaged, new update submissions for that fragment are deferred at
the agent (the paper's submission path) rather than committed and
broadcast into an already-drowning queue.  When the lagging replica
drains back to ``resume_depth``, it releases, and deferred submissions
re-enter the normal gate.

Deferral is visible: the tracker stays PENDING (clients simply see a
longer latency), ``replication.backpressure.*`` metrics count the
engage/release/throttle traffic, and trace events carry the node,
fragment, and queue depth.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.core.transaction import (
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)
from repro.obs import taxonomy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.replication.pipeline import ReplicationPipeline


class BackpressureController:
    """Tracks lagging replicas and the submissions deferred for them."""

    def __init__(self, pipeline: "ReplicationPipeline") -> None:
        self.pipeline = pipeline
        #: fragment -> names of replicas currently over their bound.
        self._lagging: dict[str, set[str]] = defaultdict(set)
        #: fragment -> deferred (spec, tracker) submissions, FIFO.
        self._deferred: dict[str, list[tuple[TransactionSpec, RequestTracker]]] = (
            defaultdict(list)
        )

    def engaged(self, fragment: str) -> bool:
        """True while any replica of ``fragment`` is over its bound."""
        return bool(self._lagging.get(fragment))

    def engage(self, node: "DatabaseNode", fragment: str, depth: int) -> None:
        """A replica's apply queue crossed the bound."""
        lagging = self._lagging[fragment]
        if node.name in lagging:
            return
        lagging.add(node.name)
        system = self.pipeline.system
        self.pipeline._c_bp_engaged.inc()
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.BACKPRESSURE_ENGAGE,
                node=node.name,
                fragment=fragment,
                depth=depth,
            )

    def release(self, node: "DatabaseNode", fragment: str) -> None:
        """A lagging replica drained back under the resume threshold."""
        lagging = self._lagging.get(fragment)
        if not lagging or node.name not in lagging:
            return
        lagging.discard(node.name)
        system = self.pipeline.system
        self.pipeline._c_bp_released.inc()
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.BACKPRESSURE_RELEASE, node=node.name, fragment=fragment
            )
        if not lagging and self._deferred.get(fragment):
            system.sim.schedule(
                0.0,
                lambda: self._resume(fragment),
                label=f"backpressure resume {fragment}",
            )

    def node_cleared(self, node: "DatabaseNode") -> None:
        """A replica crashed: its volatile backlog is gone, disengage it."""
        for fragment in list(self._lagging):
            self.release(node, fragment)

    def defer(
        self, fragment: str, spec: TransactionSpec, tracker: RequestTracker
    ) -> None:
        """Park one update submission until the fragment is released."""
        self._deferred[fragment].append((spec, tracker))
        system = self.pipeline.system
        self.pipeline._c_bp_throttled.inc()
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.BACKPRESSURE_THROTTLE,
                txn=spec.txn_id,
                fragment=fragment,
                lagging=sorted(self._lagging[fragment]),
            )

    def _resume(self, fragment: str) -> None:
        if self.engaged(fragment):
            return  # re-engaged before the resume event fired
        queue = [
            entry
            for entry in self._deferred.pop(fragment, [])
            if entry[1].status is RequestStatus.PENDING
        ]
        if not queue:
            return
        system = self.pipeline.system
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.BACKPRESSURE_RESUME,
                fragment=fragment,
                count=len(queue),
            )

        # Drain sequentially: releasing the whole burst into the local
        # scheduler at one instant would just deadlock-abort most of it.
        # Each re-gated submission chains the next through its tracker's
        # completion; a re-engagement mid-drain simply re-defers the
        # head (throttle path) and the chain resumes on the next release.
        def pump() -> None:
            while queue:
                spec, tracker = queue.pop(0)
                if tracker.status is not RequestStatus.PENDING:
                    continue
                chained = tracker.on_done

                def advance(done: RequestTracker, _prev=chained) -> None:
                    if _prev is not None:
                        _prev(done)
                    system.sim.schedule(
                        0.0, pump, label=f"backpressure drain {fragment}"
                    )

                tracker.on_done = advance
                system._gate_update(spec, tracker, fragment)
                return

        pump()
