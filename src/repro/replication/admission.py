"""Admission policies: when an arriving quasi-transaction may install.

The admission stage sits between the broadcast and the per-fragment
apply queue.  Each movement protocol is, from the pipeline's point of
view, just a choice of admission policy:

* :class:`OrderedAdmission` — the faithful default (Section 3.2):
  install in per-fragment ``(epoch, stream_seq)`` order, buffer gaps,
  drop duplicates.  Used by fixed-agents, majority, move-with-data and
  move-with-seqno.
* :class:`BlindAdmission` — the Section 4.4 "no special provisions"
  hazard: install in arrival order, no gap detection.  Used by the
  instant-move baseline so E7/E12 can demonstrate the divergence.
* :class:`EpochOrderedAdmission` — the corrective protocol's split:
  current-epoch traffic admits in order, future epochs park until their
  M0 arrives, stale epochs are handed to an orphan sink (rule B2/A2).

Policies are stateless (per-replica state lives in the node's
:class:`~repro.replication.stream.StreamLog`), so one instance can
serve every node.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.transaction import QuasiTransaction
from repro.obs import taxonomy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode

OrphanSink = Callable[["DatabaseNode", QuasiTransaction], None]


def _trace_buffered(
    node: "DatabaseNode",
    quasi: QuasiTransaction,
    expected: tuple[int, int] | None,
) -> None:
    """Emit the lineage event for an admission-buffered quasi (guarded)."""
    node.tracer.emit(
        taxonomy.LINEAGE_BUFFER,
        node=node.name,
        txn=quasi.source_txn,
        fragment=quasi.fragment,
        epoch=quasi.epoch,
        stream_seq=quasi.stream_seq,
        expected_epoch=expected[0] if expected is not None else None,
        expected_seq=expected[1] if expected is not None else None,
    )


def drain_buffer(node: "DatabaseNode", fragment: str) -> None:
    """Admit consecutively-numbered quasi-transactions parked in the buffer."""
    streams = node.streams
    buffer = streams.buffer[fragment]
    if not buffer and not streams.pending_cut:
        return
    while True:
        key = (streams.epoch[fragment], streams.next_expected[fragment])
        quasi = buffer.pop(key, None)
        if quasi is None:
            # A failover epoch cut parked until the cursor reached its
            # start may activate here, unblocking new-epoch entries that
            # sorted above the old-epoch cursor — re-drain under it.
            if streams.maybe_cut(fragment):
                continue
            break
        streams.next_expected[fragment] = quasi.stream_seq + 1
        node.enqueue_install(quasi)
    # Entries the cursor has moved past can never admit (they are
    # duplicates of a prefix the replica already holds).  They appear
    # when a checkpoint apply or a move snapshot fast-forwards the
    # cursor over parked messages — drop them rather than strand them
    # in memory.  Future-epoch parks (corrective protocol, waiting for
    # their M0) sort above the cursor and stay.
    key = (streams.epoch[fragment], streams.next_expected[fragment])
    for stale in [k for k in buffer if k < key]:
        del buffer[stale]


class AdmissionPolicy:
    """Decides what to do with a quasi-transaction arriving at a node."""

    def admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        raise NotImplementedError


class OrderedAdmission(AdmissionPolicy):
    """Per-fragment ``(epoch, stream_seq)`` order: buffer gaps, drop dups.

    This is the paper's "processed at all other nodes in the same order
    as they were sent" requirement, keyed by fragment stream rather
    than sender so it stays correct when a movement protocol hands the
    stream to a new sender node.
    """

    def admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        streams = node.streams
        fragment = quasi.fragment
        key = (quasi.epoch, quasi.stream_seq)
        expected = (streams.epoch[fragment], streams.next_expected[fragment])
        if key < expected:
            return  # duplicate / already superseded
        if key > expected:
            streams.buffer[fragment][key] = quasi
            if node.tracer.enabled:
                _trace_buffered(node, quasi, expected)
            return
        streams.next_expected[fragment] = quasi.stream_seq + 1
        node.enqueue_install(quasi)
        drain_buffer(node, fragment)


class BlindAdmission(AdmissionPolicy):
    """Install in arrival order — no buffering, no gap detection.

    The deliberate Section 4.4 hazard: two replicas receiving a
    pre-move orphan and a post-move transaction in opposite orders
    finish with different values.
    """

    def admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        streams = node.streams
        streams.next_expected[quasi.fragment] = max(
            streams.next_expected[quasi.fragment], quasi.stream_seq + 1
        )
        node.enqueue_install(quasi)


class EpochOrderedAdmission(AdmissionPolicy):
    """Corrective-protocol admission: order within the epoch, sink orphans.

    ``orphan_sink`` receives quasi-transactions from a stale epoch
    (pre-move transactions surfacing after the M0) — the protocol
    forwards them to the fragment's new home for repackaging.
    """

    def __init__(self, orphan_sink: OrphanSink) -> None:
        self.orphan_sink = orphan_sink
        self._ordered = OrderedAdmission()

    def admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        fragment = quasi.fragment
        current = node.streams.epoch[fragment]
        if quasi.epoch == current:
            self._ordered.admit(node, quasi)
        elif quasi.epoch > current:
            # New-epoch transaction racing ahead of its M0 (cannot happen
            # via FIFO from the same sender, but forwarded copies can):
            # park it until the M0 activates the epoch.
            node.streams.buffer[fragment][(quasi.epoch, quasi.stream_seq)] = (
                quasi
            )
            if node.tracer.enabled:
                _trace_buffered(node, quasi, None)
        else:
            self.orphan_sink(node, quasi)
