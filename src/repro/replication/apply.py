"""Per-fragment apply queues: the install stage of the pipeline.

Admitted quasi-transactions are installed *atomically* and *serialized
per fragment* through the node's local scheduler, so the equivalent
serial local schedule "contains quasi-transactions from a given node in
the exact same order as they were generated" (Section 3.2).

The queue is bounded when the pipeline configures ``max_apply_queue``:
a replica whose backlog for a fragment exceeds the bound engages
backpressure, which throttles the controlling agent's new submissions
until the backlog drains — bounded memory instead of unbounded buffers
on a lagging node.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING

from repro.cc.history import InstallRecord
from repro.cc.scheduler import TxnHandle, TxnOutcome
from repro.core.transaction import QuasiTransaction
from repro.obs import taxonomy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode


class FragmentApplyQueue:
    """One node's install machinery, serialized per fragment."""

    __slots__ = ("node", "_ready", "_installing", "_enqueued_at")

    def __init__(self, node: "DatabaseNode") -> None:
        self.node = node
        self._ready: dict[str, deque[QuasiTransaction]] = defaultdict(deque)
        self._installing: dict[str, bool] = defaultdict(bool)
        # source txn -> queue-entry time, feeding the apply-wait
        # histogram.  Per *node* (quasi objects are shared between
        # receivers, so per-receiver timing cannot live on the quasi).
        self._enqueued_at: dict[str, float] = {}

    def depth(self, fragment: str) -> int:
        """Admitted-but-not-yet-installed backlog for one fragment."""
        return len(self._ready[fragment]) + (
            1 if self._installing[fragment] else 0
        )

    def clear(self) -> None:
        """Crash-stop: queued installs are volatile."""
        self._ready.clear()
        self._installing.clear()
        self._enqueued_at.clear()

    def enqueue(self, quasi: QuasiTransaction) -> None:
        """Queue an admitted quasi-transaction for atomic installation."""
        node = self.node
        now = node.system.sim.now
        arrived = node.streams.arrived_at.pop(quasi.source_txn, None)
        if node.streams.seen(quasi):
            return  # duplicate (replay + held original)
        if arrived is not None:
            node.system.pipeline._h_admission_wait.observe(now - arrived)
        self._enqueued_at[quasi.source_txn] = now
        node.streams.record(quasi)
        self._ready[quasi.fragment].append(quasi)
        if node.tracer.enabled:
            node.tracer.emit(
                taxonomy.LINEAGE_ENQUEUE,
                node=node.name,
                txn=quasi.source_txn,
                fragment=quasi.fragment,
                depth=self.depth(quasi.fragment),
            )
        self._check_bound(quasi.fragment)
        self._pump(quasi.fragment)

    def _check_bound(self, fragment: str) -> None:
        pipeline = self.node.system.pipeline
        limit = pipeline.config.max_apply_queue
        if limit is not None and self.depth(fragment) > limit:
            pipeline.backpressure.engage(self.node, fragment, self.depth(fragment))

    def _pump(self, fragment: str) -> None:
        if self._installing[fragment] or not self._ready[fragment]:
            return
        quasi = self._ready[fragment].popleft()
        self._installing[fragment] = True
        if self.node.atomic_installs:
            self._install_atomic(quasi)
        else:
            self._install_split(quasi)

    def _install_atomic(self, quasi: QuasiTransaction, attempt: int = 0) -> None:
        node = self.node

        def on_done(
            handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
        ) -> None:
            if outcome is TxnOutcome.ABORTED:
                # A quasi-transaction must never be lost (it is another
                # replica's committed update); if it was sacrificed to a
                # local deadlock anyway, retry after a short backoff.
                node.system.sim.schedule(
                    1.0,
                    lambda: self._install_atomic(quasi, attempt + 1),
                    label=f"retry install {quasi.source_txn}@{node.name}",
                )
                return
            self._finish_install(quasi)

        node.scheduler.submit_quasi(
            f"q:{quasi.source_txn}@{node.name}#a{attempt}"
            if attempt
            else f"q:{quasi.source_txn}@{node.name}",
            quasi.writes,
            on_done=on_done,
            meta={"qt": quasi},
        )

    def _install_split(self, quasi: QuasiTransaction) -> None:
        """ABLATION: install each write as a separate mini-transaction.

        Deliberately breaks the atomicity of quasi-transaction
        installation so the Property 2 checker has something to catch.
        Never used by the faithful protocols.
        """
        node = self.node
        writes = list(quasi.writes)

        def install_next(index: int) -> None:
            if index >= len(writes):
                self._finish_install(quasi)
                return
            obj, version = writes[index]

            def on_done(
                handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
            ) -> None:
                delay = max(node.system.action_delay, 0.5)
                node.system.sim.schedule(
                    delay, lambda: install_next(index + 1), label="split-install"
                )

            node.scheduler.submit_quasi(
                f"q:{quasi.source_txn}#{index}@{node.name}",
                [(obj, version)],
                on_done=on_done,
            )

        install_next(0)

    def _finish_install(self, quasi: QuasiTransaction) -> None:
        node = self.node
        system = node.system
        now = system.sim.now
        node.quasi_installed += 1
        node._c_qt_installed.inc()
        pipeline = system.pipeline
        entered = self._enqueued_at.pop(quasi.source_txn, None)
        if entered is not None:
            pipeline._h_apply_wait.observe(now - entered)
        if node.name != quasi.origin_node:
            # End-to-end propagation latency, commit-at-agent to
            # apply-at-this-node, bucketed per fragment.
            pipeline.propagation_histogram(quasi.fragment).observe(
                now - quasi.origin_time
            )
        if node.tracer.enabled:
            span = quasi.span
            node.tracer.emit(
                taxonomy.QT_INSTALL,
                node=node.name,
                fragment=quasi.fragment,
                source_txn=quasi.source_txn,
                stream_seq=quasi.stream_seq,
                epoch=quasi.epoch,
                origin_node=quasi.origin_node,
                agent=quasi.agent,
                batch_id=span.batch_id if span is not None else None,
            )
        node.wal.append_install(quasi)
        system.recorder.record_install(
            InstallRecord(
                node.name, quasi.source_txn, quasi.fragment, quasi.stream_seq, now
            )
        )
        self._installing[quasi.fragment] = False
        system.fire_install_hooks(node, quasi)
        system.movement.after_install(node, quasi)
        self._pump(quasi.fragment)
        if self.depth(quasi.fragment) <= pipeline.config.resume_depth:
            pipeline.backpressure.release(node, quasi.fragment)
