"""Group-commit batching of quasi-transactions.

One broadcast message per committed update is the paper's model but not
its requirement — Section 3.2 only demands that quasi-transactions be
*processed* in generation order.  :class:`QtBatcher` exploits that
freedom: committed quasi-transactions accumulate per origin node and go
out as one :class:`QtBatch` wire message, sealed either by count
(``batch_size``) or by a simulated-time window (``batch_window``).
Receivers unpack the batch and admit each member individually, so
ordering, duplicate suppression, and partial-replication filtering are
unchanged — a batch is purely a transport-level envelope.

With the default configuration (``batch_size=1``, ``batch_window=0``)
the batcher degenerates to one-message-per-quasi-transaction with no
extra simulator events, keeping the unbatched wire behaviour (and the
golden traces built on it) bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.transaction import QuasiTransaction
from repro.obs import taxonomy
from repro.sim.simulator import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.replication.pipeline import ReplicationPipeline

#: Broadcast body type carrying a :class:`QtBatch`.
QTB_TYPE = "qtb"


@dataclass(frozen=True, slots=True)
class QtBatch:
    """Wire format: N quasi-transactions from one origin, in commit order.

    ``sealed_by`` records why the batch went out (``"direct"`` for the
    unbatched fast path, ``"count"``, ``"window"``, or ``"recovery"``
    for a batch that survived its origin's crash) — purely diagnostic.
    """

    origin: str
    qts: tuple[QuasiTransaction, ...]
    created_at: float
    sealed_by: str = "direct"
    #: System-wide batch identity (-1 on hand-built batches in tests);
    #: the lineage spans of the members carry the same id, so a
    #: retransmitted wire packet can be tied back to its transactions.
    batch_id: int = -1

    def __len__(self) -> int:
        return len(self.qts)


class QtBatcher:
    """Per-origin accumulation stage of the replication pipeline.

    The pending buffer is *middleware* state, like a message already
    handed to the network: it is not wiped by the origin's crash.  A
    batch whose flush timer fires while the origin is down stays pending
    and is flushed on recovery — the quasi-transactions it carries are
    in the origin's WAL, so recovery semantics match the unbatched
    "broadcast survives the sender" model.
    """

    def __init__(self, pipeline: "ReplicationPipeline") -> None:
        self.pipeline = pipeline
        # Accumulation is per (origin, fragment): a batch is always a
        # run of one fragment's stream, so it can multicast to exactly
        # that fragment's replica set (partial replication) instead of
        # the whole cluster.
        self._pending: dict[tuple[str, str], list[QuasiTransaction]] = {}
        self._timers: dict[tuple[str, str], EventHandle] = {}
        # Interned per-key flush-timer labels: a window-batched run
        # arms one timer per batch, so the f-string shows up at scale.
        self._flush_labels: dict[tuple[str, str], str] = {}

    def pending_count(self) -> int:
        """Quasi-transactions accumulated but not yet broadcast."""
        return sum(len(qts) for qts in self._pending.values())

    def submit(self, origin: str, quasi: QuasiTransaction) -> None:
        """Accept one freshly committed quasi-transaction from ``origin``."""
        config = self.pipeline.config
        if not config.batching:
            self._send(origin, quasi.fragment, [quasi], "direct")
            return
        key = (origin, quasi.fragment)
        pending = self._pending.setdefault(key, [])
        pending.append(quasi)
        if len(pending) >= config.batch_size:
            self._flush_key(key, "count")
        elif key not in self._timers:
            sim = self.pipeline.system.sim
            label = self._flush_labels.get(key)
            if label is None:
                label = self._flush_labels[key] = (
                    f"batch flush {origin}/{quasi.fragment}"
                )
            self._timers[key] = sim.schedule(
                config.batch_window,
                lambda: self._flush_key(key, "window"),
                label=label,
            )

    def flush(self, origin: str, sealed_by: str) -> None:
        """Seal and send every pending batch of ``origin``, if any."""
        for key in sorted(k for k in self._pending if k[0] == origin):
            self._flush_key(key, sealed_by)

    def _flush_key(self, key: tuple[str, str], sealed_by: str) -> None:
        """Seal and send one (origin, fragment) pending batch."""
        origin, fragment = key
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        pending = self._pending.get(key)
        if not pending:
            self._pending.pop(key, None)
            return
        if self.pipeline.system.nodes[origin].down:
            # Middleware holds the batch across the crash; the pipeline
            # re-flushes it when the origin recovers (sealed_by
            # "recovery").  Leave the pending list in place.
            return
        del self._pending[key]
        self._send(origin, fragment, pending, sealed_by)

    def suspend(self, origin: str) -> None:
        """Origin crashed: stop the flush timers, keep the pending batches."""
        for key in [k for k in self._timers if k[0] == origin]:
            self._timers.pop(key).cancel()

    def _send(
        self,
        origin: str,
        fragment: str,
        qts: list[QuasiTransaction],
        sealed_by: str,
    ) -> None:
        pipeline = self.pipeline
        system = pipeline.system
        now = system.sim.now
        batch = QtBatch(
            origin=origin,
            qts=tuple(qts),
            created_at=now,
            sealed_by=sealed_by,
            batch_id=pipeline.next_batch_id(),
        )
        pipeline._c_batches.inc()
        pipeline._h_batch_fill.observe(len(batch))
        # Batching-stage queue wait: commit time to seal time (0.0 on
        # the unbatched direct path — the sample still counts the send).
        batch_wait = pipeline._h_batch_wait
        for quasi in batch.qts:
            batch_wait.observe(now - quasi.origin_time)
        if system.tracer.enabled and pipeline.config.batching:
            system.tracer.emit(
                taxonomy.QT_BATCH_FLUSH,
                origin=origin,
                count=len(batch),
                sealed_by=sealed_by,
                txns=[quasi.source_txn for quasi in batch.qts],
            )
        targets, stream = system.propagation_plan(fragment)
        if system.tracer.enabled:
            # Stamp the wire identity on the member spans *before* the
            # multicast: the sender's own delivery runs synchronously
            # inside multicast(), and downstream emit sites read the
            # span.  next_seq() is what multicast() will assign.
            seq = system.broadcast.next_seq(origin, stream)
            for quasi in batch.qts:
                if quasi.span is not None:
                    quasi.span.batch_id = batch.batch_id
                    quasi.span.bcast_seq = seq
            system.tracer.emit(
                taxonomy.LINEAGE_SEND,
                origin=origin,
                batch_id=batch.batch_id,
                seq=seq,
                stream=stream,
                sealed_by=sealed_by,
                count=len(batch),
                targets=None if targets is None else list(targets),
                txns=[quasi.source_txn for quasi in batch.qts],
            )
        system.broadcast.multicast(
            origin,
            {"type": QTB_TYPE, "batch": batch},
            kind="qt",
            targets=targets,
            stream=stream,
        )
