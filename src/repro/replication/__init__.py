"""The unified replication pipeline (see :mod:`repro.replication.pipeline`).

Stages: commit -> stream log -> batcher -> broadcast -> admission ->
per-fragment apply queue.
"""

from repro.replication.admission import (
    AdmissionPolicy,
    BlindAdmission,
    EpochOrderedAdmission,
    OrderedAdmission,
    drain_buffer,
)
from repro.replication.apply import FragmentApplyQueue
from repro.replication.backpressure import BackpressureController
from repro.replication.batch import QtBatch, QtBatcher
from repro.replication.pipeline import PipelineConfig, ReplicationPipeline
from repro.replication.quorum import QuorumConfig, QuorumReadManager
from repro.replication.stream import StreamLog

__all__ = [
    "AdmissionPolicy",
    "BackpressureController",
    "BlindAdmission",
    "EpochOrderedAdmission",
    "FragmentApplyQueue",
    "OrderedAdmission",
    "PipelineConfig",
    "QtBatch",
    "QtBatcher",
    "QuorumConfig",
    "QuorumReadManager",
    "ReplicationPipeline",
    "StreamLog",
    "drain_buffer",
]
