"""The unified replication pipeline.

Every committed update flows through the same staged path, regardless
of movement protocol or control strategy::

    commit ──> StreamLog ──> QtBatcher ──> ReliableBroadcast
                                               │
    apply queue <── AdmissionPolicy <── deliver (per receiver)

* **commit** — ``DatabaseNode._apply_commit`` mints versions and the
  stream position, then hands the quasi-transaction to
  :meth:`ReplicationPipeline.submit`.
* **stream log** — :class:`~repro.replication.stream.StreamLog`
  records it at the origin (archive, duplicate filter, cursor).
* **batcher** — :class:`~repro.replication.batch.QtBatcher`
  accumulates per origin and seals a
  :class:`~repro.replication.batch.QtBatch` by count or window.
* **broadcast** — the batch rides the reliable FIFO broadcast as one
  message (``kind="qt"``, body type ``"qtb"``).
* **admission** — each receiver unpacks the batch and admits members
  *individually* through the movement protocol's admission policy:
  partial-replication filtering, ordering, and duplicate suppression
  are per quasi-transaction, so a batch whose prefix a replica already
  installed (pre-crash, via anti-entropy, …) is idempotent.
* **apply queue** — admitted quasi-transactions install atomically in
  per-fragment order through
  :class:`~repro.replication.apply.FragmentApplyQueue`; bounded queues
  engage :class:`~repro.replication.backpressure.BackpressureController`.

:class:`PipelineConfig` is the single knob surface
(``FragmentedDatabase(pipeline=...)``, CLI ``--batch-size`` /
``--batch-window``).  The default configuration reproduces the paper's
one-message-per-quasi-transaction wire behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.transaction import (
    QuasiTransaction,
    RequestTracker,
    TransactionSpec,
)
from repro.obs import taxonomy
from repro.replication.backpressure import BackpressureController
from repro.replication.batch import QtBatch, QtBatcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Tuning knobs for the replication pipeline.

    ``batch_size``/``batch_window`` control group commit: a batch is
    sealed when it reaches ``batch_size`` quasi-transactions or when
    ``batch_window`` simulated ticks have passed since its first member
    (whichever comes first).  The defaults (1, 0.0) disable batching.

    ``max_apply_queue`` bounds each replica's per-fragment backlog of
    admitted-but-not-installed quasi-transactions; crossing it engages
    backpressure until the backlog drains to ``resume_depth``.  ``None``
    (default) leaves queues unbounded and backpressure off.
    """

    batch_size: int = 1
    batch_window: float = 0.0
    max_apply_queue: int | None = None
    resume_depth: int = 0

    @property
    def batching(self) -> bool:
        return self.batch_size > 1 or self.batch_window > 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_window < 0.0:
            raise ValueError("batch_window must be >= 0")
        if self.max_apply_queue is not None and self.max_apply_queue < 1:
            raise ValueError("max_apply_queue must be >= 1 (or None)")


class ReplicationPipeline:
    """One system's propagation path: batcher + admission + backpressure."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    def attach(self, system: "FragmentedDatabase") -> None:
        """One-time wiring to the owning system (metrics, batcher)."""
        self.system = system
        self.batcher = QtBatcher(self)
        self.backpressure = BackpressureController(self)
        metrics = system.metrics
        self._c_submitted = metrics.counter("replication.qt_submitted")
        self._c_batches = metrics.counter("replication.batches_sent")
        self._h_batch_fill = metrics.histogram("replication.batch_fill")
        self._c_bp_engaged = metrics.counter("replication.backpressure.engaged")
        self._c_bp_released = metrics.counter(
            "replication.backpressure.released"
        )
        self._c_bp_throttled = metrics.counter(
            "replication.backpressure.throttled"
        )
        metrics.gauge("replication.pending_now", self.batcher.pending_count)
        # Per-stage queue-wait histograms (always on, like every other
        # metric): batch wait is commit -> seal, transport wait is
        # seal -> delivery at a receiver, admission wait is delivery ->
        # apply-queue entry (includes reorder buffering), apply wait is
        # queue entry -> install.  End-to-end propagation latency
        # (commit-at-agent -> apply-at-node) is per fragment, created
        # lazily as ``pipeline.propagation.<fragment>``.
        self._h_batch_wait = metrics.histogram("pipeline.batch_wait")
        self._h_transport_wait = metrics.histogram("pipeline.transport_wait")
        self._h_admission_wait = metrics.histogram("pipeline.admission_wait")
        self._h_apply_wait = metrics.histogram("pipeline.apply_wait")
        self._prop_hists: dict[str, Any] = {}
        self._batch_counter = 0

    def next_batch_id(self) -> int:
        """A fresh system-wide batch identity."""
        batch_id = self._batch_counter
        self._batch_counter += 1
        return batch_id

    def propagation_histogram(self, fragment: str):
        """The per-fragment end-to-end propagation-latency histogram."""
        histogram = self._prop_hists.get(fragment)
        if histogram is None:
            histogram = self.system.metrics.histogram(
                f"pipeline.propagation.{fragment}"
            )
            self._prop_hists[fragment] = histogram
        return histogram

    # -- send side ---------------------------------------------------------

    def submit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Accept a committed quasi-transaction for propagation.

        Called by the movement protocols (directly at commit for most,
        after the ack round for majority commit).  The origin's own
        replica already reflects the write; the batcher decides when
        the broadcast goes out.
        """
        self._c_submitted.inc()
        self.batcher.submit(node.name, quasi)

    def flush(self, origin: str) -> None:
        """Force out ``origin``'s pending batch (tests, shutdown)."""
        self.batcher.flush(origin, "explicit")

    # -- receive side ------------------------------------------------------

    def deliver(
        self,
        node: "DatabaseNode",
        batch: QtBatch,
        sender: str | None = None,
        seq: int | None = None,
    ) -> None:
        """Unpack a batch at one receiver and admit members individually.

        Per-member admission is what makes batch install idempotent: a
        member whose seqno the replica already installed (its prefix
        survived a crash in the WAL, or anti-entropy got there first)
        is dropped by the admission policy / duplicate filter exactly
        as an unbatched duplicate would be.

        ``sender``/``seq`` are the broadcast channel identity, threaded
        through for the lineage trace; batches re-admitted outside the
        broadcast path (recovery anti-entropy, move resync) omit them.
        """
        system = self.system
        now = system.sim.now
        self._h_transport_wait.observe(now - batch.created_at)
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.LINEAGE_DELIVER,
                node=node.name,
                origin=batch.origin,
                batch_id=batch.batch_id,
                sender=sender,
                seq=seq,
                txns=[quasi.source_txn for quasi in batch.qts],
            )
        arrived_at = node.streams.arrived_at
        replicates = system.replicates
        admit = system.movement.admit
        name = node.name
        for quasi in batch.qts:
            if not replicates(name, quasi.fragment):
                node.quasi_skipped += 1
                node._c_qt_skipped.inc()
                continue
            # Arrival timestamp feeds the admission-wait histogram when
            # (if ever) the quasi reaches this node's apply queue.
            arrived_at.setdefault(quasi.source_txn, now)
            admit(node, quasi)

    # -- update gating -----------------------------------------------------

    def throttle_update(
        self,
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> bool:
        """Defer a submission while the fragment is under backpressure.

        Returns True if the pipeline took ownership of the request (it
        re-enters the submission gate on release).
        """
        if not self.backpressure.engaged(fragment):
            return False
        self.backpressure.defer(fragment, spec, tracker)
        return True

    # -- failure model -----------------------------------------------------

    def node_crashed(self, node: "DatabaseNode") -> None:
        """Crash-stop hook: disengage the replica, suspend its batcher."""
        self.backpressure.node_cleared(node)
        self.batcher.suspend(node.name)
        self.system.recovery.node_crashed(node)

    def node_recovered(self, node: "DatabaseNode") -> None:
        """Recovery hook: flush any batch that was pending at crash time."""
        self.batcher.flush(node.name, "recovery")
        self.system.recovery.node_recovered(node)
