"""Storage substrate: versioned values, per-node stores, update logs.

Each simulated node owns one :class:`~repro.storage.store.ObjectStore`
holding its replica of the (fully replicated) database.  Values are
versioned: every committed write carries the writing transaction's id
and a per-object version number assigned at the fragment agent's home
node, which is what lets the serialization-graph builders reconstruct
reads-from relationships after the fact.
"""

from repro.storage.log import LogRecord, UpdateLog
from repro.storage.store import ObjectStore
from repro.storage.values import Version

__all__ = ["LogRecord", "ObjectStore", "Version", "UpdateLog"]
