"""Append-only update logs.

Two consumers:

* the **log transformation** baseline (Section 1, [2]) exchanges and
  merges per-node logs after a partition heals, and
* audits/metrics — e.g. counting reconciliation work for experiment
  E10 — read log sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class LogRecord:
    """One logged transaction execution at one node.

    ``writes`` maps object name to the written value; ``reads`` maps
    object name to the value observed.  ``meta`` carries workload
    payload (e.g. the banking operation descriptor) that merge rules
    may need when re-executing.
    """

    txn_id: str
    node: str
    timestamp: float
    writes: dict[str, Any]
    reads: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)


class UpdateLog:
    """An append-only per-node log of locally executed transactions."""

    def __init__(self, node: str = "") -> None:
        self.node = node
        self._records: list[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def records(self) -> list[LogRecord]:
        """All records, oldest first (copy)."""
        return list(self._records)

    def since(self, timestamp: float) -> list[LogRecord]:
        """Records with ``timestamp`` strictly greater than the bound."""
        return [r for r in self._records if r.timestamp > timestamp]

    def truncate(self) -> int:
        """Discard all records; returns how many were dropped."""
        dropped = len(self._records)
        self._records.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)
