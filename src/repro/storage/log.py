"""Append-only update logs.

Two consumers:

* the **log transformation** baseline (Section 1, [2]) exchanges and
  merges per-node logs after a partition heals, and
* audits/metrics — e.g. counting reconciliation work for experiment
  E10 — read log sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class LogRecord:
    """One logged transaction execution at one node.

    ``writes`` maps object name to the written value; ``reads`` maps
    object name to the value observed.  ``meta`` carries workload
    payload (e.g. the banking operation descriptor) that merge rules
    may need when re-executing.  ``seq`` is the log position the record
    received at append time (-1 before it is appended anywhere).
    """

    txn_id: str
    node: str
    timestamp: float
    writes: dict[str, Any]
    reads: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    seq: int = -1


class UpdateLog:
    """An append-only per-node log of locally executed transactions."""

    def __init__(self, node: str = "") -> None:
        self.node = node
        self._records: list[LogRecord] = []
        self._next_seq = 0

    def append(self, record: LogRecord) -> LogRecord:
        """Append one record, assigning its log sequence number.

        Returns the stored (sequenced) record; callers that keep a
        cursor should remember ``record.seq + 1``.
        """
        stored = replace(record, seq=self._next_seq)
        self._next_seq += 1
        self._records.append(stored)
        return stored

    def records(self) -> list[LogRecord]:
        """All records, oldest first (copy)."""
        return list(self._records)

    def since(self, cursor: int) -> list[LogRecord]:
        """Records at log position ``cursor`` or later.

        Cursors are integer sequence numbers, not timestamps: the sim's
        zero-latency loopback events routinely stamp several records
        with the *same* float timestamp, so a strictly-greater
        timestamp filter silently skipped equal-timestamp records.  A
        seq cursor is exact — ``since(last.seq + 1)`` is "everything
        after ``last``", with no ties to break.
        """
        return [r for r in self._records if r.seq >= cursor]

    def cursor(self) -> int:
        """The cursor one past the newest record (``since(cursor())`` = [])."""
        return self._next_seq

    def truncate(self) -> int:
        """Discard all records; returns how many were dropped.

        The sequence counter is *not* reset: cursors handed out before
        the truncation stay valid (they simply match nothing until new
        records arrive).
        """
        dropped = len(self._records)
        self._records.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)
