"""Per-node replica of the database."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.errors import ReproError
from repro.storage.values import INITIAL_WRITER, Version


class ObjectStore:
    """A node's local copy of every replicated data object.

    The store is a flat map from object name to its current
    :class:`Version`.  It is intentionally dumb: fragment rules, lock
    discipline, and install ordering are enforced by the layers above.
    """

    def __init__(self, node: str = "") -> None:
        self.node = node
        self._data: dict[str, Version] = {}
        self.reads = 0
        self.writes = 0

    # -- loading ----------------------------------------------------------

    def load(self, initial: Mapping[str, Any]) -> None:
        """Install initial values (version 0, writer ``@init``)."""
        for name, value in initial.items():
            self._data[name] = Version(value, INITIAL_WRITER, 0, 0.0)

    # -- access -----------------------------------------------------------

    def read_version(self, name: str) -> Version:
        """The current version of ``name``; raises on unknown objects."""
        self.reads += 1
        try:
            return self._data[name]
        except KeyError:
            raise ReproError(
                f"node {self.node!r}: unknown data object {name!r}"
            ) from None

    def read(self, name: str) -> Any:
        """The current value of ``name``."""
        return self.read_version(name).value

    def install(self, name: str, version: Version) -> Version | None:
        """Unconditionally install a version; returns the one replaced.

        Creates the object if it did not exist (agents may create new
        items in their fragment, e.g. new ACTIVITY records).
        """
        self.writes += 1
        previous = self._data.get(name)
        self._data[name] = version
        return previous

    def exists(self, name: str) -> bool:
        """True if the object is present in this replica."""
        return name in self._data

    def drop(self, name: str) -> bool:
        """Remove an object from this replica; True if it was present.

        Used when a node leaves a fragment's replica set: keeping the
        (now frozen) copies around would read as divergence to the
        mutual-consistency checker, when the node simply no longer
        follows the fragment's stream.
        """
        return self._data.pop(name, None) is not None

    # -- inspection ---------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """All object names, in insertion order."""
        return list(self._data)

    def snapshot(self, names: Iterable[str] | None = None) -> dict[str, Any]:
        """Plain value snapshot (for assertions and reports)."""
        selected = self._data if names is None else {
            name: self._data[name] for name in names
        }
        return {name: version.value for name, version in selected.items()}

    def version_snapshot(
        self, names: Iterable[str] | None = None
    ) -> dict[str, Version]:
        """Versioned snapshot (for consistency comparison and checkpoints).

        ``names`` restricts the snapshot to those objects (a fragment's
        members, say); absent names are skipped rather than raised so a
        partial replica can be checkpointed with the same object list
        as a full one.
        """
        if names is None:
            return dict(self._data)
        return {
            name: self._data[name] for name in names if name in self._data
        }

    def diff_common(self, other: "ObjectStore") -> list[str]:
        """Object names whose values differ, over the common objects only.

        Used under partial replication, where two replicas legitimately
        hold different object populations.
        """
        common = set(self._data) & set(other._data)
        return sorted(
            name
            for name in common
            if self._data[name].value != other._data[name].value
        )

    def diff(self, other: "ObjectStore") -> list[str]:
        """Object names whose *values* differ between two replicas.

        Objects present in only one replica also count as differing.
        Used by the mutual-consistency checker.
        """
        names = set(self._data) | set(other._data)
        mismatched = []
        for name in sorted(names):
            mine = self._data.get(name)
            theirs = other._data.get(name)
            if mine is None or theirs is None or mine.value != theirs.value:
                mismatched.append(name)
        return mismatched
