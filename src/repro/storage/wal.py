"""Write-ahead logging for crash recovery.

The paper's Section 4.4 motivates agent movement with node failure
("When an agent's home node goes down, the agent may wish to re-attach
to some other node"), which presumes nodes *can* go down.  This module
supplies the durable half of a crash-stop failure model:

* every installed quasi-transaction (including the node's own commits,
  which are installs at the origin) is appended to the node's WAL
  before it is considered stable;
* a crash wipes all volatile state — store, lock tables, in-flight
  transactions, install buffers;
* recovery replays the WAL to rebuild the store and the per-fragment
  install bookkeeping, then anti-entropy (handled by the node) fills
  whatever arrived at the *middleware* before the crash but never
  reached the WAL.

"Durable" in a simulation means: survives
:meth:`~repro.core.node.DatabaseNode.crash`.  The log is an in-memory
list by construction, but nothing outside this module may touch it
except through append/replay — the same contract a disk would give.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.transaction import QuasiTransaction


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry.

    ``kind`` is ``"load"`` (initial value) or ``"install"`` (an applied
    quasi-transaction).  Loads carry ``obj``/``value``; installs carry
    the full quasi-transaction (its pre-assigned versions are what
    replay re-installs).
    """

    kind: str
    obj: str | None = None
    value: Any = None
    quasi: "QuasiTransaction | None" = None


@dataclass
class WriteAheadLog:
    """A node's durable, append-only recovery log.

    "Append-only" has one sanctioned exception: :meth:`truncate` drops
    the prefix a durable checkpoint has made redundant — the disk
    analogue is log segment deletion after a fuzzy checkpoint, and it
    is what keeps the WAL bounded over a long-lived run.
    """

    node: str = ""
    _records: list[WalRecord] = field(default_factory=list)
    appends: int = 0
    replays: int = 0
    truncations: int = 0

    def append_load(self, obj: str, value: Any) -> None:
        """Record an initial-load value."""
        self._records.append(WalRecord("load", obj=obj, value=value))
        self.appends += 1

    def append_install(self, quasi: "QuasiTransaction") -> None:
        """Record an applied quasi-transaction (origin or replica)."""
        self._records.append(WalRecord("install", quasi=quasi))
        self.appends += 1

    def truncate(
        self,
        fragment: str,
        below_seq: int,
        epoch: int = 0,
        objects: frozenset[str] | set[str] = frozenset(),
    ) -> int:
        """Drop records a checkpoint at ``(epoch, below_seq)`` supersedes.

        Removes install records of ``fragment`` strictly below the
        checkpoint cursor and load records for ``objects`` (the
        checkpoint snapshot carries their authoritative versions).
        Records of other fragments are untouched.  Returns how many
        records were dropped.
        """
        cursor = (epoch, below_seq)

        def superseded(record: WalRecord) -> bool:
            if record.kind == "load":
                return record.obj in objects
            quasi = record.quasi
            return (
                quasi.fragment == fragment
                and (quasi.epoch, quasi.stream_seq) < cursor
            )

        kept = [r for r in self._records if not superseded(r)]
        dropped = len(self._records) - len(kept)
        if dropped:
            self._records = kept
            self.truncations += 1
        return dropped

    def drop_stale_suffix(
        self, fragment: str, epoch: int, from_seq: int
    ) -> int:
        """Drop ``fragment`` installs a failover epoch cut discarded.

        A demoted ex-home holds a committed-but-unpropagated suffix —
        install records with ``stream_seq >= from_seq`` minted in an
        epoch *below* ``epoch`` (the cut's).  The cut declared those
        updates lost (the paper's availability trade-off), so replaying
        them after a second crash would resurrect state every other
        replica has already superseded.  Returns how many records were
        dropped.
        """

        def stale(record: WalRecord) -> bool:
            quasi = record.quasi
            return (
                record.kind == "install"
                and quasi.fragment == fragment
                and quasi.epoch < epoch
                and quasi.stream_seq >= from_seq
            )

        kept = [r for r in self._records if not stale(r)]
        dropped = len(self._records) - len(kept)
        if dropped:
            self._records = kept
            self.truncations += 1
        return dropped

    def records(self) -> list[WalRecord]:
        """All records, oldest first (copy)."""
        self.replays += 1
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)
