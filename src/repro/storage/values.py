"""Versioned values stored at each replica."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

INITIAL_WRITER = "@init"


@dataclass(frozen=True, slots=True)
class Version:
    """One committed version of a data object.

    ``version_no`` counts committed writes to the object along the
    owning fragment's update stream (0 = initial load).  ``writer`` is
    the id of the transaction that produced the version.  ``timestamp``
    is the simulation time at which the write committed at its *origin*
    node — the Section 4.4.3 corrective protocol compares these
    timestamps to decide whether a late update has been overwritten.
    """

    value: Any
    writer: str = INITIAL_WRITER
    version_no: int = 0
    timestamp: float = 0.0

    def newer_than(self, other: "Version") -> bool:
        """Version-order comparison along the fragment stream.

        Timestamps break ties between conflicting streams (the "none"
        movement protocol can produce two distinct writes with the same
        version number; see Section 4.4's missing-transaction problem).
        """
        if self.version_no != other.version_no:
            return self.version_no > other.version_no
        return self.timestamp > other.timestamp
