"""Small directed-graph utilities used across the library.

The paper's formal machinery is graph-theoretic: the read-access graph
(Section 4.2), the global serialization graph (Definition 8.2), and the
local serialization graphs (Definition 8.3).  This module provides a
minimal, dependency-free digraph with exactly the operations those
definitions need:

* cycle detection (serializability = acyclic serialization graph),
* topological ordering (to exhibit an equivalent serial schedule),
* *elementary acyclicity* (Section 4.2: the undirected shadow of the
  graph is a forest).

``networkx`` is deliberately not used here so that the core library has
no third-party dependencies; the test-suite cross-checks these routines
against ``networkx``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TypeVar

N = TypeVar("N", bound=Hashable)


class Digraph:
    """A simple directed graph over hashable node labels.

    Parallel edges are collapsed; self-loops are allowed and count as
    cycles.  Node/edge insertion order is preserved, which keeps every
    derived artifact (topological orders, reported cycles) deterministic.
    """

    def __init__(self) -> None:
        self._succ: dict[Hashable, dict[Hashable, None]] = {}
        self._pred: dict[Hashable, dict[Hashable, None]] = {}

    # -- construction -------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` if not already present."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        """Add the edge ``src -> dst``, creating missing endpoints."""
        self.add_node(src)
        self.add_node(dst)
        self._succ[src][dst] = None
        self._pred[dst][src] = None

    # -- queries ------------------------------------------------------

    @property
    def nodes(self) -> list[Hashable]:
        """Nodes in insertion order."""
        return list(self._succ)

    @property
    def edges(self) -> list[tuple[Hashable, Hashable]]:
        """Edges in insertion order of their source nodes."""
        return [(u, v) for u in self._succ for v in self._succ[u]]

    def successors(self, node: Hashable) -> list[Hashable]:
        """Direct successors of ``node``."""
        return list(self._succ[node])

    def predecessors(self, node: Hashable) -> list[Hashable]:
        """Direct predecessors of ``node``."""
        return list(self._pred[node])

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        """True if the edge ``src -> dst`` is present."""
        return src in self._succ and dst in self._succ[src]

    def has_node(self, node: Hashable) -> bool:
        """True if ``node`` is present."""
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    # -- algorithms ---------------------------------------------------

    def find_cycle(self) -> list[Hashable] | None:
        """Return one directed cycle as a node list, or None if acyclic.

        The returned list ``[n0, n1, ..., nk]`` satisfies ``n0 == nk``
        and every consecutive pair is an edge.  Iterative DFS with an
        explicit stack (histories can contain tens of thousands of
        transactions, so recursion depth must not depend on graph size).
        """
        white = dict.fromkeys(self._succ)  # unvisited, insertion order
        grey: set[Hashable] = set()
        black: set[Hashable] = set()
        parent: dict[Hashable, Hashable] = {}

        for root in list(white):
            if root in black:
                continue
            stack: list[tuple[Hashable, Iterator[Hashable]]] = [
                (root, iter(self._succ[root]))
            ]
            grey.add(root)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt in grey:
                        if nxt == node:  # self-loop
                            return [node, node]
                        # Found a cycle: walk parents back from node to nxt.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                    if nxt not in black:
                        parent[nxt] = node
                        grey.add(nxt)
                        stack.append((nxt, iter(self._succ[nxt])))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    grey.discard(node)
                    black.add(node)
        return None

    def is_acyclic(self) -> bool:
        """True if the graph has no directed cycle."""
        return self.find_cycle() is None

    def topological_order(self) -> list[Hashable]:
        """A topological order of the nodes.

        Raises :class:`ValueError` if the graph is cyclic.  Kahn's
        algorithm with a FIFO frontier so that the order is stable for
        a given insertion order.
        """
        indegree = {node: len(self._pred[node]) for node in self._succ}
        frontier = [node for node, deg in indegree.items() if deg == 0]
        order: list[Hashable] = []
        head = 0
        while head < len(frontier):
            node = frontier[head]
            head += 1
            order.append(node)
            for nxt in self._succ[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(self._succ):
            raise ValueError("graph is cyclic; no topological order exists")
        return order

    def is_elementarily_acyclic(self) -> bool:
        """Section 4.2 test: is the *undirected* shadow graph acyclic?

        Self-loops make the shadow graph cyclic, and so do antiparallel
        edge pairs (``u -> v`` and ``v -> u``): two fragments whose
        agents read from each other already admit the classic two-
        transaction non-serializable interleaving (T1: r(b) w(a),
        T2: r(a) w(b)), so the pair must count as a length-2 undirected
        cycle for the Section 4.2 theorem to be sound.  Union-find over
        the undirected edge multiset: a cycle exists iff some edge joins
        two already-connected vertices.
        """
        parent: dict[Hashable, Hashable] = {}

        def find(x: Hashable) -> Hashable:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        for node in self._succ:
            parent[node] = node

        for u, v in self.edges:
            if u == v:
                return False
            if self.has_edge(v, u):
                # Antiparallel pair: two undirected edges between the
                # same vertices — a length-2 cycle.
                return False
            ru, rv = find(u), find(v)
            if ru == rv:
                return False
            parent[ru] = rv
        return True

    def undirected_cycle(self) -> list[Hashable] | None:
        """Return one cycle of the undirected shadow graph, or None.

        Used for diagnostics when :meth:`is_elementarily_acyclic` fails:
        the cycle names the fragments whose read pattern must change.
        """
        adj: dict[Hashable, list[Hashable]] = {n: [] for n in self._succ}
        seen_pairs: set[frozenset[Hashable]] = set()
        for u, v in self.edges:
            if u == v:
                return [u, u]
            if self.has_edge(v, u):
                return [u, v]  # antiparallel pair: length-2 cycle
            key = frozenset((u, v))
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
            adj[u].append(v)
            adj[v].append(u)

        visited: set[Hashable] = set()
        for root in adj:
            if root in visited:
                continue
            # DFS forest; an edge to a visited non-parent closes a cycle.
            stack: list[tuple[Hashable, Hashable | None]] = [(root, None)]
            parent: dict[Hashable, Hashable | None] = {root: None}
            while stack:
                node, par = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                for nxt in adj[node]:
                    if nxt == par:
                        # Skip one traversal of the tree edge back to the
                        # parent; a *second* parallel edge was already
                        # collapsed, so this is safe.
                        par = None  # only skip once
                        continue
                    if nxt in visited and nxt in parent:
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt and parent[cur] is not None:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if nxt not in visited:
                        parent[nxt] = node
                        stack.append((nxt, node))
        return None


def digraph_from_edges(edges: Iterable[tuple[Hashable, Hashable]]) -> Digraph:
    """Build a :class:`Digraph` from an iterable of ``(src, dst)`` pairs."""
    graph = Digraph()
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph
