"""Application workloads from the paper's running examples.

* :mod:`repro.workloads.banking` — the Section 1/2 bank: BALANCES,
  per-account ACTIVITY and RECORDED fragments, the central-office
  trigger that folds activity into balances and assesses overdraft
  penalties;
* :mod:`repro.workloads.warehouse` — the Section 4.2 wholesale company:
  per-warehouse fragments plus a central purchasing fragment, with the
  star-shaped (elementarily acyclic) read-access graph of Figure 4.2.1;
* :mod:`repro.workloads.airline` — the Section 4.3 reservations
  example: customer request fragments C_i and flight fragments F_j,
  decoupling request entry from grant decisions so that overbooking is
  impossible while requests stay always-available;
* :mod:`repro.workloads.generator` — seeded random drivers that pour
  mixed traffic into the above for the quantitative experiments.
"""

from repro.workloads.airline import AirlineWorkload
from repro.workloads.banking import BankingWorkload
from repro.workloads.generator import BankingDriver, DriverStats
from repro.workloads.warehouse import WarehouseWorkload

__all__ = [
    "AirlineWorkload",
    "BankingDriver",
    "BankingWorkload",
    "DriverStats",
    "WarehouseWorkload",
]
