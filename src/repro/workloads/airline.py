"""The airline reservations database of Section 4.3 (Figure 4.3.3).

Fragments: one per customer (``C:i``, holding that customer's requested
seat counts ``c:i:j`` per flight) and one per flight (``F:j``, holding
the actually-reserved counts ``f:j:i`` per customer plus the flight's
capacity).  All agents sit at different nodes.

"The motivation for having c_ij in this database, in addition to f_ij,
is to allow the customers to enter their requests for reservations any
time they want to, regardless of the current status of the
communication network, and, at the same time, to ensure that
overbooking does not occur."

Customers write requests (write-only, always available).  Each flight
agent periodically scans the customer fragments and grants requests
unless that would overbook — a *single-fragment* decision, so the
no-overbooking invariant can never be violated under fragmentwise
serializability, even though the global schedule may not be
serializable (the worked schedule of Section 4.3, reproduced in
experiment E6).
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.cc.ops import Read, Write
from repro.core.predicates import ConsistencyPredicate
from repro.core.system import FragmentedDatabase
from repro.core.transaction import RequestTracker


@dataclass
class AirlineStats:
    """Workload-level counters."""

    requests: int = 0
    granted: int = 0
    denied_overbooking: int = 0
    scans: int = 0


class AirlineWorkload:
    """Builds and drives the Figure 4.3.3 schema on a system."""

    def __init__(
        self,
        db: FragmentedDatabase,
        customer_homes: dict[str, str],  # customer id -> node
        flight_homes: dict[str, str],  # flight id -> node
        capacity: int = 100,
    ) -> None:
        self.db = db
        self.customers = dict(customer_homes)
        self.flights = dict(flight_homes)
        self.capacity = capacity
        self.stats = AirlineStats()

        initial: dict[str, Any] = {}
        for customer, node in self.customers.items():
            db.add_agent(f"cust:{customer}", home_node=node)
            objects = []
            for flight in self.flights:
                obj = f"c:{customer}:{flight}"
                objects.append(obj)
                initial[obj] = 0
            db.add_fragment(f"C:{customer}", agent=f"cust:{customer}",
                            objects=objects)
        for flight, node in self.flights.items():
            db.add_agent(f"flight:{flight}", home_node=node)
            objects = []
            for customer in self.customers:
                obj = f"f:{flight}:{customer}"
                objects.append(obj)
                initial[obj] = 0
            db.add_fragment(f"F:{flight}", agent=f"flight:{flight}",
                            objects=objects)
            # Figure 4.3.3: each flight reads every customer fragment.
            for customer in self.customers:
                db.declare_reads(f"F:{flight}", fragments=[f"C:{customer}"])
        db.load(initial)
        self._register_predicates()

    # -- customer side --------------------------------------------------------

    def request(self, customer: str, flight: str, seats: int) -> RequestTracker:
        """Enter a reservation request — write-only, always available.

        Once set, a request is never reset ("a customer cannot change
        his mind", Section 4.3); re-requesting keeps the first value.
        """
        if seats <= 0:
            raise ValueError("seats must be positive")
        obj = f"c:{customer}:{flight}"

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            current = yield Read(obj)
            if current:
                return ("already-requested", current)
            yield Write(obj, seats)
            return ("requested", seats)

        self.stats.requests += 1
        return self.db.submit_update(
            f"cust:{customer}",
            body,
            reads=[obj],
            writes=[obj],
            meta={"op": "request", "customer": customer, "flight": flight},
        )

    # -- flight agent side --------------------------------------------------------

    def scan_flight(self, flight: str) -> RequestTracker:
        """Grant newly discovered requests unless that would overbook."""
        reads = [f"c:{customer}:{flight}" for customer in self.customers]
        reads += [f"f:{flight}:{customer}" for customer in self.customers]
        writes = [f"f:{flight}:{customer}" for customer in self.customers]

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            reserved: dict[str, int] = {}
            for customer in self.customers:
                reserved[customer] = yield Read(f"f:{flight}:{customer}")
            booked = sum(reserved.values())
            granted = []
            for customer in self.customers:
                if reserved[customer]:
                    continue  # already granted earlier
                wanted = yield Read(f"c:{customer}:{flight}")
                if not wanted:
                    continue
                if booked + wanted > self.capacity:
                    self.stats.denied_overbooking += 1
                    continue
                yield Write(f"f:{flight}:{customer}", wanted)
                booked += wanted
                granted.append((customer, wanted))
                self.stats.granted += 1
            self.stats.scans += 1
            return granted

        return self.db.submit_update(
            f"flight:{flight}",
            body,
            reads=reads,
            writes=writes,
            meta={"op": "scan", "flight": flight},
        )

    def seats_reserved(self, flight: str, node: str) -> int:
        """Total seats reserved on ``flight`` as seen at ``node``."""
        store = self.db.nodes[node].store
        return sum(
            store.read(f"f:{flight}:{customer}") for customer in self.customers
        )

    # -- invariants --------------------------------------------------------------

    def _register_predicates(self) -> None:
        for flight in self.flights:
            self.db.predicates.add(
                ConsistencyPredicate(
                    name=f"no-overbooking:{flight}",
                    objects=[
                        f"f:{flight}:{customer}" for customer in self.customers
                    ],
                    check=lambda values: sum(values.values()) <= self.capacity,
                )
            )
