"""The wholesale company of Section 4.2 (Figure 4.2.1).

k warehouse fragments ``W:i`` — each holding, per product, the quantity
on hand, total sold, and total received — controlled by the warehouse's
own node (a *node* agent), plus a central fragment ``C`` holding the
purchasing decisions, controlled by the company's central office.

Read pattern: the central office periodically scans all warehouse
fragments to decide future purchases; warehouses read only their own
fragment.  The resulting read-access graph is the star of
Figure 4.2.1 — elementarily acyclic — so under the Section 4.2 strategy
the system keeps **global serializability with no read locks**, while
warehouses continue selling and receiving through any partition.

The optional cross-warehouse inventory *peek* is the paper's sanctioned
read-access-graph violation: a read-only transaction whose
non-serializable output harms nobody ("one warehouse can be allowed to
read from the fragment controlled by another warehouse with no great
harm").
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.cc.ops import Read, Write
from repro.core.predicates import ConsistencyPredicate
from repro.core.system import FragmentedDatabase
from repro.core.transaction import RequestTracker


@dataclass
class WarehouseStats:
    """Workload-level counters."""

    sales_granted: int = 0
    sales_refused: int = 0
    shipments: int = 0
    scans: int = 0


class WarehouseWorkload:
    """Builds and drives the Figure 4.2.1 schema on a system."""

    def __init__(
        self,
        db: FragmentedDatabase,
        warehouse_nodes: dict[str, str],  # warehouse id -> node
        central_node: str,
        products: list[str],
        initial_stock: int = 100,
        target_stock: int = 100,
    ) -> None:
        self.db = db
        self.warehouses = dict(warehouse_nodes)
        self.central_node = central_node
        self.products = list(products)
        self.initial_stock = initial_stock
        self.target_stock = target_stock
        self.stats = WarehouseStats()

        initial: dict[str, Any] = {}
        db.add_agent("office", home_node=central_node)
        db.add_fragment(
            "C",
            agent="office",
            objects=[f"c:{product}:to_order" for product in products],
        )
        for product in products:
            initial[f"c:{product}:to_order"] = 0
        for warehouse, node in self.warehouses.items():
            db.add_agent(f"wh:{warehouse}", home_node=node, kind="node")
            objects = []
            for product in products:
                for field_name in ("onhand", "sold", "received"):
                    obj = f"w:{warehouse}:{product}:{field_name}"
                    objects.append(obj)
                    initial[obj] = initial_stock if field_name == "onhand" else 0
            db.add_fragment(f"W:{warehouse}", agent=f"wh:{warehouse}",
                            objects=objects)
            # The star of Figure 4.2.1: only C reads the warehouses.
            db.declare_reads("C", fragments=[f"W:{warehouse}"])
        db.load(initial)
        self._register_predicates()

    # -- warehouse operations ------------------------------------------------

    def sale(self, warehouse: str, product: str, qty: int) -> RequestTracker:
        """Sell ``qty`` of ``product`` at ``warehouse`` if stock allows."""
        onhand = f"w:{warehouse}:{product}:onhand"
        sold = f"w:{warehouse}:{product}:sold"

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            stock = yield Read(onhand)
            if stock < qty:
                self.stats.sales_refused += 1
                return ("refused", stock)
            total = yield Read(sold)
            yield Write(onhand, stock - qty)
            yield Write(sold, total + qty)
            self.stats.sales_granted += 1
            return ("sold", qty)

        return self.db.submit_update(
            f"wh:{warehouse}",
            body,
            reads=[onhand, sold],
            writes=[onhand, sold],
            meta={"op": "sale", "warehouse": warehouse, "product": product},
        )

    def shipment(self, warehouse: str, product: str, qty: int) -> RequestTracker:
        """Receive a shipment of ``qty`` at ``warehouse``."""
        onhand = f"w:{warehouse}:{product}:onhand"
        received = f"w:{warehouse}:{product}:received"

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            stock = yield Read(onhand)
            total = yield Read(received)
            yield Write(onhand, stock + qty)
            yield Write(received, total + qty)
            self.stats.shipments += 1
            return ("received", qty)

        return self.db.submit_update(
            f"wh:{warehouse}",
            body,
            reads=[onhand, received],
            writes=[onhand, received],
            meta={"op": "shipment", "warehouse": warehouse, "product": product},
        )

    # -- central office scan -----------------------------------------------------

    def scan_and_order(self) -> RequestTracker:
        """The office's periodic purchasing decision over all warehouses."""
        reads = [
            f"w:{warehouse}:{product}:onhand"
            for warehouse in self.warehouses
            for product in self.products
        ]
        writes = [f"c:{product}:to_order" for product in self.products]

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            totals = {product: 0 for product in self.products}
            for warehouse in self.warehouses:
                for product in self.products:
                    stock = yield Read(f"w:{warehouse}:{product}:onhand")
                    totals[product] += stock
            target = self.target_stock * len(self.warehouses)
            for product in self.products:
                yield Write(
                    f"c:{product}:to_order", max(0, target - totals[product])
                )
            self.stats.scans += 1
            return dict(totals)

        return self.db.submit_update(
            "office",
            body,
            reads=reads,
            writes=writes,
            meta={"op": "scan"},
        )

    def peek_other_warehouse(
        self, from_warehouse: str, other_warehouse: str, product: str
    ) -> RequestTracker:
        """A read-only look at another warehouse's stock.

        Violates the read-access graph — allowed because read-only
        (Section 4.2's discussion); rejected if the strategy forbids
        read-only violations.
        """
        obj = f"w:{other_warehouse}:{product}:onhand"

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            stock = yield Read(obj)
            return stock

        return self.db.submit_readonly(
            f"wh:{from_warehouse}",
            body,
            at=self.warehouses[from_warehouse],
            reads=[obj],
        )

    # -- invariants --------------------------------------------------------------

    def _register_predicates(self) -> None:
        for warehouse in self.warehouses:
            for product in self.products:
                onhand = f"w:{warehouse}:{product}:onhand"
                sold = f"w:{warehouse}:{product}:sold"
                received = f"w:{warehouse}:{product}:received"
                self.db.predicates.add(
                    ConsistencyPredicate(
                        name=f"stock-conservation:{warehouse}:{product}",
                        objects=[onhand, sold, received],
                        check=lambda values, o=onhand, s=sold, r=received,
                        init=self.initial_stock: (
                            values[o] >= 0
                            and values[o] == init + values[r] - values[s]
                        ),
                    )
                )
