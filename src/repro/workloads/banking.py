"""The banking database of Sections 1 and 2.

Schema (Figures 2.1 / 2.2), per account ``a`` and account owner ``o``
(the paper explicitly allows several customers per account — "the
customer (customers) who owns (own) account i" — and its Section 1
scenarios need withdrawals on one account entering at *different*
nodes):

* fragment ``BALANCES`` — objects ``bal:a`` — agent: the central
  office;
* fragment ``ACTIVITY:a:o`` — objects ``act:a:o:dep`` / ``act:a:o:wd``
  (owner o's running deposit/withdrawal totals) — agent: that owner;
* fragment ``RECORDED:a:o`` — objects ``rec:a:o:dep`` / ``rec:a:o:wd``
  (the totals already folded into the balance) — agent: the central
  office.

The paper's per-row ACTIVITY/RECORDED tables are represented as running
totals: each owner's operation stream is serial (one agent), so totals
carry the same information with a static object population.

Local view of the balance (Section 2)::

    view = bal + sum_o (act_dep[o] - rec_dep[o]) - sum_o (act_wd[o] - rec_wd[o])

Operation flow: deposits/withdrawals append to the owner's ACTIVITY
fragment at the owner's node — always available.  When an ACTIVITY
update installs at the central office's node, a trigger runs one
BALANCES transaction (folding the unrecorded delta in and assessing the
overdraft fine when the balance dips negative) followed by one RECORDED
transaction — the paper's own workaround for multi-fragment updates
("replace ... by a group of transactions that perform the same task and
update only one fragment each").

``view_mode`` controls what a withdrawal consults before consenting:

* ``"own"`` — balance + the owner's *own* unrecorded activity (a
  realistic teller: it cannot see the other owner's unrecorded
  operations across a partition — Section 1 scenario 2 in the making);
* ``"balance"`` — the replicated balance only;
* ``"none"`` — blind append, write-only customer transactions; the
  read-access graph becomes an elementarily acyclic star, so this mode
  is the one usable under the Section 4.2 strategy.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.cc.ops import Read, Write
from repro.core.node import DatabaseNode
from repro.core.predicates import ConsistencyPredicate
from repro.core.system import FragmentedDatabase
from repro.core.transaction import QuasiTransaction, RequestTracker
from repro.errors import DesignError

VIEW_MODES = ("own", "balance", "none")


@dataclass
class OverdraftLetter:
    """A penalty notification issued by the central office."""

    account: str
    balance_before_fine: float
    fine: float
    time: float


@dataclass
class BankingStats:
    """Workload-level counters."""

    deposits: int = 0
    withdrawals_granted: int = 0
    withdrawals_refused: int = 0
    letters: list[OverdraftLetter] = field(default_factory=list)


class BankingWorkload:
    """Builds and drives the Section 2 banking schema on a system."""

    def __init__(
        self,
        db: FragmentedDatabase,
        accounts: dict[str, float],
        central_node: str,
        owners: dict[str, Sequence[tuple[str, str]]] | None = None,
        overdraft_fine: float = 25.0,
        view_mode: str = "own",
    ) -> None:
        if view_mode not in VIEW_MODES:
            raise DesignError(f"view_mode must be one of {VIEW_MODES}")
        self.db = db
        self.accounts = dict(accounts)
        self.central_node = central_node
        self.overdraft_fine = overdraft_fine
        self.view_mode = view_mode
        self.stats = BankingStats()
        # Default: one owner per account, living at the central node.
        self.owners: dict[str, list[tuple[str, str]]] = {
            account: list(
                (owners or {}).get(account, [(f"{account}-o0", central_node)])
            )
            for account in accounts
        }

        db.add_agent("central", home_node=central_node)
        db.add_fragment(
            "BALANCES",
            agent="central",
            objects=[f"bal:{account}" for account in accounts],
        )
        initial: dict[str, Any] = {}
        for account, balance in accounts.items():
            initial[f"bal:{account}"] = balance
            for owner, home in self.owners[account]:
                db.add_agent(f"cust:{owner}", home_node=home)
                db.add_fragment(
                    f"ACTIVITY:{account}:{owner}",
                    agent=f"cust:{owner}",
                    objects=[
                        f"act:{account}:{owner}:dep",
                        f"act:{account}:{owner}:wd",
                    ],
                )
                db.add_fragment(
                    f"RECORDED:{account}:{owner}",
                    agent="central",
                    objects=[
                        f"rec:{account}:{owner}:dep",
                        f"rec:{account}:{owner}:wd",
                    ],
                )
                for kind in ("dep", "wd"):
                    initial[f"act:{account}:{owner}:{kind}"] = 0.0
                    initial[f"rec:{account}:{owner}:{kind}"] = 0.0
                # The fold transaction (agent: central, writes BALANCES)
                # reads this owner's ACTIVITY and RECORDED fragments; the
                # mark-recorded transaction is write-only.  With
                # view_mode="none" these are the only edges — a star
                # rooted at BALANCES, elementarily acyclic (Section 4.2).
                db.declare_reads(
                    "BALANCES",
                    fragments=[
                        f"ACTIVITY:{account}:{owner}",
                        f"RECORDED:{account}:{owner}",
                    ],
                )
                if view_mode == "own":
                    db.declare_reads(
                        f"ACTIVITY:{account}:{owner}",
                        fragments=["BALANCES", f"RECORDED:{account}:{owner}"],
                    )
                elif view_mode == "balance":
                    db.declare_reads(
                        f"ACTIVITY:{account}:{owner}", fragments=["BALANCES"]
                    )
                db.on_install(
                    f"ACTIVITY:{account}:{owner}",
                    lambda node, quasi, account=account, owner=owner: (
                        self._on_activity(node, quasi, account, owner)
                    ),
                )
        db.load(initial)
        self._register_predicates()

    # -- owner helpers -----------------------------------------------------------

    def owner_of(self, account: str, index: int = 0) -> str:
        """The ``index``-th owner id of an account."""
        return self.owners[account][index][0]

    # -- customer operations ----------------------------------------------------

    def deposit(
        self, account: str, amount: float, owner: int = 0
    ) -> RequestTracker:
        """Record a deposit in the owner's ACTIVITY fragment."""
        if amount <= 0:
            raise ValueError("deposit amount must be positive")
        owner_id = self.owner_of(account, owner)
        obj = f"act:{account}:{owner_id}:dep"

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            total = yield Read(obj)
            yield Write(obj, total + amount)
            return ("deposited", amount)

        self.stats.deposits += 1
        return self.db.submit_update(
            f"cust:{owner_id}",
            body,
            reads=[obj],
            writes=[obj],
            meta={"op": "deposit", "account": account, "amount": amount},
        )

    def withdraw(
        self, account: str, amount: float, owner: int = 0
    ) -> RequestTracker:
        """Attempt a withdrawal, consenting on the configured view.

        The view can be stale during a partition — that is the point:
        both sides of a severed network may grant withdrawals that
        jointly overdraw the account (Section 1, scenario 2); the
        central office later detects and penalizes the overdraft.
        """
        if amount <= 0:
            raise ValueError("withdrawal amount must be positive")
        owner_id = self.owner_of(account, owner)
        wd_obj = f"act:{account}:{owner_id}:wd"
        view_mode = self.view_mode
        reads = [wd_obj]
        if view_mode in ("own", "balance"):
            reads.append(f"bal:{account}")
        if view_mode == "own":
            reads += [
                f"act:{account}:{owner_id}:dep",
                f"rec:{account}:{owner_id}:dep",
                f"rec:{account}:{owner_id}:wd",
            ]

        def body(_ctx: Any) -> Generator[Any, Any, Any]:
            wd_total = yield Read(wd_obj)
            if view_mode in ("own", "balance"):
                view = yield Read(f"bal:{account}")
                if view_mode == "own":
                    dep_total = yield Read(f"act:{account}:{owner_id}:dep")
                    rec_dep = yield Read(f"rec:{account}:{owner_id}:dep")
                    rec_wd = yield Read(f"rec:{account}:{owner_id}:wd")
                    view += (dep_total - rec_dep) - (wd_total - rec_wd)
                if view < amount:
                    self.stats.withdrawals_refused += 1
                    return ("refused", view)
            yield Write(wd_obj, wd_total + amount)
            self.stats.withdrawals_granted += 1
            return ("granted", amount)

        return self.db.submit_update(
            f"cust:{owner_id}",
            body,
            reads=reads,
            writes=[wd_obj],
            meta={"op": "withdraw", "account": account, "amount": amount},
        )

    def local_view(self, account: str, node: str) -> float:
        """The Section 2 local view of the balance at one replica."""
        store = self.db.nodes[node].store
        view = store.read(f"bal:{account}")
        for owner_id, _home in self.owners[account]:
            view += store.read(f"act:{account}:{owner_id}:dep") - store.read(
                f"rec:{account}:{owner_id}:dep"
            )
            view -= store.read(f"act:{account}:{owner_id}:wd") - store.read(
                f"rec:{account}:{owner_id}:wd"
            )
        return view

    def balance_at(self, account: str, node: str) -> float:
        """The raw BALANCES value at one replica."""
        return self.db.nodes[node].store.read(f"bal:{account}")

    # -- central office trigger --------------------------------------------------

    def _on_activity(
        self,
        node: DatabaseNode,
        quasi: QuasiTransaction,
        account: str,
        owner_id: str,
    ) -> None:
        central = self.db.agents["central"]
        if node.name != central.home_node:
            return
        self._fold_activity(account, owner_id)

    def _fold_activity(self, account: str, owner_id: str) -> None:
        """Fold one owner's unrecorded activity into the balance."""
        bal_obj = f"bal:{account}"
        reads = [
            bal_obj,
            f"act:{account}:{owner_id}:dep",
            f"act:{account}:{owner_id}:wd",
            f"rec:{account}:{owner_id}:dep",
            f"rec:{account}:{owner_id}:wd",
        ]

        def balance_body(_ctx: Any) -> Generator[Any, Any, Any]:
            balance = yield Read(bal_obj)
            act_dep = yield Read(f"act:{account}:{owner_id}:dep")
            act_wd = yield Read(f"act:{account}:{owner_id}:wd")
            rec_dep = yield Read(f"rec:{account}:{owner_id}:dep")
            rec_wd = yield Read(f"rec:{account}:{owner_id}:wd")
            delta = (act_dep - rec_dep) - (act_wd - rec_wd)
            if delta == 0:
                return None  # nothing unrecorded; idempotent re-trigger
            new_balance = balance + delta
            fine = 0.0
            if new_balance < 0 and balance >= 0:
                fine = self.overdraft_fine
                self.stats.letters.append(
                    OverdraftLetter(account, new_balance, fine, self.db.sim.now)
                )
                new_balance -= fine
            yield Write(bal_obj, new_balance)
            return (act_dep, act_wd)

        def on_balance_done(tracker: RequestTracker) -> None:
            if not tracker.succeeded or tracker.result is None:
                return
            act_dep, act_wd = tracker.result

            def recorded_body(_ctx: Any) -> Generator[Any, Any, Any]:
                yield Write(f"rec:{account}:{owner_id}:dep", act_dep)
                yield Write(f"rec:{account}:{owner_id}:wd", act_wd)

            self.db.submit_update(
                "central",
                recorded_body,
                writes=[
                    f"rec:{account}:{owner_id}:dep",
                    f"rec:{account}:{owner_id}:wd",
                ],
                meta={"op": "mark-recorded", "account": account},
            )

        def on_fold_done(tracker: RequestTracker) -> None:
            if tracker.succeeded:
                on_balance_done(tracker)
                return
            # Folds are system housekeeping, not customer requests: a
            # deadlock abort or an expired lock lease must not lose the
            # balance update — retry after a short backoff.
            self.db.sim.schedule(
                5.0,
                lambda: self._fold_activity(account, owner_id),
                label=f"fold retry {account}:{owner_id}",
            )

        self.db.submit_update(
            "central",
            balance_body,
            reads=reads,
            writes=[bal_obj],
            meta={"op": "fold", "account": account},
            on_done=on_fold_done,
        )

    # -- invariants ------------------------------------------------------------

    def _register_predicates(self) -> None:
        for account in self.accounts:
            view_objects = [f"bal:{account}"]
            for owner_id, _home in self.owners[account]:
                act_dep = f"act:{account}:{owner_id}:dep"
                act_wd = f"act:{account}:{owner_id}:wd"
                view_objects += [
                    act_dep,
                    act_wd,
                    f"rec:{account}:{owner_id}:dep",
                    f"rec:{account}:{owner_id}:wd",
                ]
                self.db.predicates.add(
                    ConsistencyPredicate(
                        name=f"activity-totals-nonneg:{account}:{owner_id}",
                        objects=[act_dep, act_wd],
                        check=lambda values: all(
                            v >= 0 for v in values.values()
                        ),
                    )
                )

            def view_check(
                values: dict[str, Any], account=account, owners=self.owners[account]
            ) -> bool:
                view = values[f"bal:{account}"]
                for owner_id, _home in owners:
                    view += (
                        values[f"act:{account}:{owner_id}:dep"]
                        - values[f"rec:{account}:{owner_id}:dep"]
                    )
                    view -= (
                        values[f"act:{account}:{owner_id}:wd"]
                        - values[f"rec:{account}:{owner_id}:wd"]
                    )
                return view >= 0

            self.db.predicates.add(
                ConsistencyPredicate(
                    name=f"view-nonneg:{account}",
                    objects=view_objects,
                    check=view_check,
                )
            )
