"""Seeded random traffic for the quantitative experiments.

:func:`generate_script` produces a deterministic operation script —
``(time, account, kind, amount)`` tuples — that every compared system
replays identically, so E1/E9/E10 differences come from the protocols,
never from the workload.  :class:`BankingDriver` pours a script into a
fragments-and-agents banking workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import FragmentedDatabase
from repro.core.transaction import RequestTracker
from repro.sim.rng import SeededRng
from repro.workloads.banking import BankingWorkload


@dataclass(frozen=True)
class OpEvent:
    """One scripted customer operation.

    ``owner`` indexes into the account's owner list — joint accounts
    let one balance be drawn on from several nodes, which is what makes
    partition-era conflicts possible at all.
    """

    time: float
    account: str
    kind: str  # "deposit" | "withdraw"
    amount: float
    owner: int = 0


@dataclass
class DriverStats:
    """What the driver submitted (outcomes live in the system trackers)."""

    deposits: int = 0
    withdrawals: int = 0
    trackers: list[RequestTracker] = field(default_factory=list)


def generate_script(
    rng: SeededRng,
    accounts: list[str],
    horizon: float,
    mean_interarrival: float = 5.0,
    withdraw_fraction: float = 0.5,
    amount_range: tuple[float, float] = (10.0, 120.0),
    account_skew: float = 0.8,
    owners_per_account: int = 1,
) -> list[OpEvent]:
    """A Poisson-ish stream of deposits and withdrawals.

    Account selection is Zipf-skewed, and with ``owners_per_account``
    above one each operation picks an owner uniformly — hot joint
    accounts are what make partition-era conflicts likely (two owners
    drawing on the same balance from both sides of the cut).
    """
    events: list[OpEvent] = []
    t = 0.0
    while True:
        t += rng.exponential(mean_interarrival)
        if t >= horizon:
            return events
        account = accounts[rng.zipf_index(len(accounts), account_skew)]
        kind = "withdraw" if rng.bernoulli(withdraw_fraction) else "deposit"
        amount = round(rng.uniform(*amount_range), 2)
        owner = rng.randint(0, owners_per_account - 1)
        events.append(OpEvent(t, account, kind, amount, owner))


class BankingDriver:
    """Replays an operation script against a banking workload."""

    def __init__(
        self, db: FragmentedDatabase, workload: BankingWorkload
    ) -> None:
        self.db = db
        self.workload = workload
        self.stats = DriverStats()

    def schedule(self, script: list[OpEvent]) -> None:
        """Schedule every scripted operation on the simulator."""
        for event in script:
            self.db.sim.schedule_at(
                event.time,
                lambda e=event: self._fire(e),
                label=f"{event.kind} {event.account}",
            )

    def _fire(self, event: OpEvent) -> None:
        if event.kind == "deposit":
            tracker = self.workload.deposit(
                event.account, event.amount, owner=event.owner
            )
            self.stats.deposits += 1
        else:
            tracker = self.workload.withdraw(
                event.account, event.amount, owner=event.owner
            )
            self.stats.withdrawals += 1
        self.stats.trackers.append(tracker)
