"""Mutual exclusion baseline (the paper's reference [8]).

"Under mutual exclusion, only one of the nodes, say A, can access and
modify the data.  Therefore, the customer at node A will be able to
withdraw his $100; the customer at node B, however, will go home
empty-handed."

Model: a single token is pinned to one node.  A transaction submitted
at node N is processed iff N can currently reach the token node (N is
in the token's partition group); otherwise it is rejected on the spot —
the availability loss this technique pays for global serializability.
Committed updates propagate to the other replicas through the reliable
FIFO broadcast (reaching severed nodes after the heal), and since every
update executes inside one totally-ordered group, the global schedule
is trivially serializable.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.cc.ops import Read, Write
from repro.core.properties import MutualConsistencyReport
from repro.net.broadcast import ReliableBroadcast
from repro.net.network import Network
from repro.net.partition import PartitionManager
from repro.net.topology import Topology
from repro.sim.simulator import Simulator
from repro.storage.store import ObjectStore
from repro.storage.values import Version

Body = Callable[[Any], Generator[Any, Any, Any]]


@dataclass
class MutexTracker:
    """Outcome of one submitted request."""

    txn_id: str
    node: str
    submit_time: float
    committed: bool = False
    rejected: bool = False
    reason: str = ""
    result: Any = None
    reads: dict[str, Any] = field(default_factory=dict)
    writes: dict[str, Any] = field(default_factory=dict)


class MutualExclusionSystem:
    """Single-token, single-writer-group replicated database."""

    def __init__(
        self,
        node_names: Sequence[str],
        token_node: str | None = None,
        topology: Topology | None = None,
        default_latency: float = 1.0,
    ) -> None:
        self.sim = Simulator()
        self.topology = topology or Topology.full_mesh(
            node_names, default_latency
        )
        self.network = Network(self.sim, self.topology)
        self.broadcast = ReliableBroadcast(self.network)
        self.partitions = PartitionManager(self.network)
        self.token_node = token_node or list(node_names)[0]
        self.stores: dict[str, ObjectStore] = {}
        for name in node_names:
            store = ObjectStore(name)
            self.stores[name] = store
            self.broadcast.attach(name, self._make_deliver(store))
        self.trackers: list[MutexTracker] = []
        self._txn_counter = 0

    def load(self, initial: dict[str, Any]) -> None:
        """Install initial values at every replica."""
        for store in self.stores.values():
            store.load(initial)

    # -- submission --------------------------------------------------------

    def submit(
        self, node: str, body: Body, ctx: Any = None, txn_id: str | None = None
    ) -> MutexTracker:
        """Process a transaction at ``node`` if the token is reachable."""
        self._txn_counter += 1
        tracker = MutexTracker(
            txn_id or f"MX{self._txn_counter}", node, self.sim.now
        )
        self.trackers.append(tracker)
        if not self.topology.reachable(node, self.token_node):
            tracker.rejected = True
            tracker.reason = "token partition unreachable"
            return tracker
        self._execute(tracker, body, ctx)
        return tracker

    def _execute(self, tracker: MutexTracker, body: Body, ctx: Any) -> None:
        store = self.stores[tracker.node]
        gen = body(ctx)
        send: Any = None
        buffered: dict[str, Any] = {}
        try:
            while True:
                op = gen.send(send)
                if isinstance(op, Read):
                    if op.obj in buffered:
                        send = buffered[op.obj]
                    else:
                        send = store.read(op.obj)
                        tracker.reads[op.obj] = send
                elif isinstance(op, Write):
                    buffered[op.obj] = op.value
                    send = None
                else:
                    raise TypeError(f"unexpected op {op!r}")
        except StopIteration as stop:
            tracker.result = stop.value
        now = self.sim.now
        versions = {}
        for obj, value in buffered.items():
            previous = (
                store.read_version(obj).version_no if store.exists(obj) else -1
            )
            versions[obj] = Version(value, tracker.txn_id, previous + 1, now)
        tracker.writes = dict(buffered)
        tracker.committed = True
        if versions:
            self.broadcast.broadcast(
                tracker.node, {"versions": versions}, kind="mx-update"
            )

    def _make_deliver(self, store: ObjectStore):
        def deliver(sender: str, seq: int, payload: dict[str, Any]) -> None:
            for obj, version in payload["versions"].items():
                store.install(obj, version)

        return deliver

    # -- metrics -----------------------------------------------------------

    @property
    def availability(self) -> float:
        """Committed / submitted."""
        if not self.trackers:
            return 1.0
        return sum(t.committed for t in self.trackers) / len(self.trackers)

    def mutual_consistency(self) -> MutualConsistencyReport:
        """Pairwise replica comparison (after quiescence)."""
        stores = list(self.stores.values())
        diffs: dict[tuple[str, str], list[str]] = {}
        for other in stores[1:]:
            mismatched = stores[0].diff(other)
            if mismatched:
                diffs[(stores[0].node, other.node)] = mismatched
        return MutualConsistencyReport(consistent=not diffs, diffs=diffs)

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)

    def quiesce(self) -> None:
        """Drain all scheduled events."""
        self.sim.run()
