"""Optimistic partition protocol baseline (the paper's reference [4]).

Davidson's optimistic approach: during a partition every group
processes transactions freely against its replica, recording read and
write sets.  At reconciliation the groups' histories are combined into
a *precedence graph*; if it is acyclic the combined execution was
serializable and all transactions stand; otherwise transactions are
**backed out** (undone and re-executed or discarded) until the graph is
acyclic.

The measured quantities for the spectrum experiment (E1):

* availability during the partition: 1.0 (everything is accepted);
* *effective* availability: accepted minus backed-out transactions —
  an accepted-then-undone withdrawal still sent the customer home with
  money the bank later clawed back;
* reconciliation overhead: precedence-graph size, backout count,
  replayed operations.

Precedence edges between transactions of different partition groups
(Davidson's rules): ``T -> T'`` if T read an item T' wrote (T saw the
pre-partition value, so T must precede T'), and ``T -> T'`` if T wrote
an item T' wrote or read within the *same* group ordering.  Within a
group, transactions are totally ordered by execution time.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.baselines.log_transform import Operation
from repro.core.properties import MutualConsistencyReport
from repro.graphs import Digraph
from repro.net.network import Network
from repro.net.partition import PartitionManager
from repro.net.topology import Topology
from repro.sim.simulator import Simulator

State = dict[str, Any]
ApplyFn = Callable[[State, Operation], Any]
ReadWriteFn = Callable[[Operation], tuple[set[str], set[str]]]


@dataclass
class OptimisticTxn:
    """One transaction executed optimistically during the partition."""

    op: Operation
    group: int
    reads: set[str]
    writes: set[str]
    backed_out: bool = False


@dataclass
class ValidationReport:
    """Result of one reconciliation/validation round."""

    transactions: int = 0
    cross_edges: int = 0
    backed_out: list[str] = field(default_factory=list)
    ops_replayed: int = 0

    @property
    def backout_count(self) -> int:
        """How many accepted transactions were undone."""
        return len(self.backed_out)


class OptimisticSystem:
    """Free-for-all partition processing + validation with backout."""

    def __init__(
        self,
        node_names: Sequence[str],
        apply_fn: ApplyFn,
        read_write_fn: ReadWriteFn,
        topology: Topology | None = None,
        default_latency: float = 1.0,
    ) -> None:
        self.sim = Simulator()
        self.topology = topology or Topology.full_mesh(
            node_names, default_latency
        )
        self.network = Network(self.sim, self.topology)
        self.partitions = PartitionManager(self.network)
        self.apply_fn = apply_fn
        self.read_write_fn = read_write_fn
        self.states: dict[str, State] = {name: {} for name in node_names}
        self.initial_state: State = {}
        self.history: list[OptimisticTxn] = []
        self.reports: list[ValidationReport] = []
        self._op_counter = 0
        for name in node_names:
            self.network.register(name, lambda _msg: None)

    def load(self, initial: State) -> None:
        """Set the common initial state."""
        self.initial_state = dict(initial)
        for state in self.states.values():
            state.update(initial)

    # -- optimistic processing ---------------------------------------------

    def submit(self, node: str, kind: str, params: dict[str, Any]) -> Operation:
        """Accept and apply an operation at ``node`` (never refused)."""
        self._op_counter += 1
        op = Operation(
            op_id=f"OP{self._op_counter}",
            kind=kind,
            params=dict(params),
            timestamp=self.sim.now,
            node=node,
        )
        group = self._group_of(node)
        reads, writes = self.read_write_fn(op)
        self.apply_fn(self.states[node], op)
        # Within the group, peers see the update immediately (they are
        # connected); this baseline abstracts intra-group replication.
        for other in self.states:
            if other != node and self.topology.reachable(node, other):
                self.apply_fn(self.states[other], op)
        self.history.append(OptimisticTxn(op, group, reads, writes))
        return op

    def _group_of(self, node: str) -> int:
        """The node's partition group, or -1 when fully connected.

        Group -1 transactions executed while the network was whole are
        globally ordered by timestamp; only transactions from two
        *different* partition groups conflict optimistically.
        """
        components = self.topology.components()
        if len(components) == 1:
            return -1
        for index, component in enumerate(components):
            if node in component:
                return index
        raise ValueError(f"unknown node {node!r}")

    # -- validation at heal -----------------------------------------------------

    def validate_and_merge(self) -> ValidationReport:
        """Build the precedence graph, back out until acyclic, rebuild.

        Backout policy: repeatedly remove the transaction that appears
        in a cycle and has the largest timestamp (the youngest — least
        sunk cost), deterministically.
        """
        report = ValidationReport(transactions=len(self.history))
        active = [t for t in self.history if not t.backed_out]

        while True:
            graph, cross_edges = self._precedence_graph(active)
            report.cross_edges = cross_edges
            cycle = graph.find_cycle()
            if cycle is None:
                break
            members = cycle[:-1]
            by_id = {t.op.op_id: t for t in active}
            victim = max(
                members, key=lambda op_id: (by_id[op_id].op.timestamp, op_id)
            )
            by_id[victim].backed_out = True
            report.backed_out.append(victim)
            active = [t for t in active if not t.backed_out]

        ordered = sorted(active, key=lambda t: (t.op.timestamp, t.op.op_id))
        state: State = dict(self.initial_state)
        for txn in ordered:
            self.apply_fn(state, txn.op)
            report.ops_replayed += 1
        for name in self.states:
            self.states[name] = dict(state)
        self.reports.append(report)
        return report

    def _precedence_graph(
        self, active: list[OptimisticTxn]
    ) -> tuple[Digraph, int]:
        graph = Digraph()
        cross_edges = 0
        for txn in active:
            graph.add_node(txn.op.op_id)
        # Intra-group: total order by execution time.  Globally-ordered
        # transactions (group -1, executed while the network was whole)
        # are additionally ordered by timestamp against every later
        # transaction that touches the same items.
        by_group: dict[int, list[OptimisticTxn]] = {}
        for txn in active:
            by_group.setdefault(txn.group, []).append(txn)
        for group in by_group.values():
            ordered = sorted(group, key=lambda t: (t.op.timestamp, t.op.op_id))
            for first, second in zip(ordered, ordered[1:]):
                graph.add_edge(first.op.op_id, second.op.op_id)
        for txn in by_group.get(-1, []):
            for other in active:
                if other.group == -1 or not (
                    (txn.reads | txn.writes) & (other.reads | other.writes)
                ):
                    continue
                if txn.op.timestamp <= other.op.timestamp:
                    graph.add_edge(txn.op.op_id, other.op.op_id)
                else:
                    graph.add_edge(other.op.op_id, txn.op.op_id)
        # Cross-group: T read the pre-partition value of an item T' wrote,
        # so T must precede T'; write-write conflicts order both ways and
        # therefore form a cycle unless one is backed out.
        for txn in active:
            for other in active:
                if (
                    txn.group == other.group
                    or txn.group == -1
                    or other.group == -1
                ):
                    continue
                if txn.reads & other.writes:
                    graph.add_edge(txn.op.op_id, other.op.op_id)
                    cross_edges += 1
                if txn.writes & other.writes:
                    graph.add_edge(txn.op.op_id, other.op.op_id)
                    cross_edges += 1
        return graph, cross_edges

    # -- metrics ------------------------------------------------------------

    @property
    def accepted(self) -> int:
        """Transactions accepted during processing."""
        return len(self.history)

    @property
    def effective_availability(self) -> float:
        """Accepted and never backed out / accepted."""
        if not self.history:
            return 1.0
        surviving = sum(1 for t in self.history if not t.backed_out)
        return surviving / len(self.history)

    def mutual_consistency(self) -> MutualConsistencyReport:
        """Compare semantic states across replicas."""
        names = list(self.states)
        diffs: dict[tuple[str, str], list[str]] = {}
        reference = self.states[names[0]]
        for other in names[1:]:
            state = self.states[other]
            keys = set(reference) | set(state)
            mismatched = sorted(
                k for k in keys if reference.get(k) != state.get(k)
            )
            if mismatched:
                diffs[(names[0], other)] = mismatched
        return MutualConsistencyReport(consistent=not diffs, diffs=diffs)

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)
