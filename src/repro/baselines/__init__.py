"""Comparison baselines from the paper's Section 1 survey.

Three points on the Figure 1.1 spectrum, implemented over the same
simulation substrate as the fragments-and-agents system so the
experiments compare like with like:

* :class:`~repro.baselines.mutual_exclusion.MutualExclusionSystem` —
  the conservative end ([8]): only the partition group holding the
  token may process transactions; global serializability, lowest
  availability;
* :class:`~repro.baselines.log_transform.LogTransformSystem` — the
  "free-for-all" end ([2]): every node processes everything; after a
  heal, logs are exchanged and merged into a canonical timestamp order,
  state is rebuilt, and application-level corrective actions fire;
* :class:`~repro.baselines.optimistic.OptimisticSystem` — Davidson's
  optimistic protocol ([4]): free-for-all during the partition, then
  precedence-graph validation with transaction backout at the heal.
"""

from repro.baselines.log_transform import LogTransformSystem, Operation
from repro.baselines.mutual_exclusion import MutualExclusionSystem
from repro.baselines.optimistic import OptimisticSystem

__all__ = [
    "LogTransformSystem",
    "MutualExclusionSystem",
    "Operation",
    "OptimisticSystem",
]
