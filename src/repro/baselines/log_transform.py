"""Log transformation baseline (the paper's reference [2]).

The "free-for-all" comparator of Section 1: every node processes every
transaction against its local replica during a partition; when the
partition is repaired, the nodes "exchange logs for transactions
executed during the partition", compute a canonical merged order, and
rebuild a common state — running application-level *corrective actions*
(the overdraft fine) where the merged execution turns out inconsistent.

The system is semantic: transactions are :class:`Operation` records and
the application supplies ``apply(state, op)`` — log transformation
re-executes operations, it does not ship values.  This is what lets the
merge "transform" a log: an operation's effect in merged order can
differ from its effect in local order (withdrawing into overdraft).

Two measured costs, per the paper's critique:

* **overhead** — log records exchanged and operations re-executed at
  reconciliation (experiment E10);
* **anomalies** — corrective actions needed, plus (with
  ``divergent_fines=True``) the Section 1 "chaos" mode where each node
  assesses the fine from its *own* view of how long the balance stayed
  negative, leaving replicas disagreeing even after reconciliation.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.properties import MutualConsistencyReport
from repro.net.network import Network
from repro.net.partition import PartitionManager
from repro.net.topology import Topology
from repro.sim.simulator import Simulator

State = dict[str, Any]
ApplyFn = Callable[[State, "Operation"], Any]
CorrectFn = Callable[[State, list["Operation"]], list["Operation"]]


@dataclass(frozen=True)
class Operation:
    """One semantic operation (e.g. ``withdraw(acct, $200)``).

    ``kind`` and ``params`` are interpreted solely by the application's
    ``apply`` function.  ``timestamp``/``op_id`` define the canonical
    merge order; ``node`` records where the operation was accepted.
    """

    op_id: str
    kind: str
    params: dict[str, Any]
    timestamp: float
    node: str


@dataclass
class ReconcileReport:
    """What one reconciliation round cost and found."""

    logs_exchanged: int = 0
    ops_replayed: int = 0
    corrective_ops: list[Operation] = field(default_factory=list)
    messages: int = 0


class LogTransformSystem:
    """Free-for-all processing + post-heal log exchange and merge."""

    def __init__(
        self,
        node_names: Sequence[str],
        apply_fn: ApplyFn,
        correct_fn: CorrectFn | None = None,
        topology: Topology | None = None,
        default_latency: float = 1.0,
        divergent_fines: bool = False,
    ) -> None:
        self.sim = Simulator()
        self.topology = topology or Topology.full_mesh(
            node_names, default_latency
        )
        self.network = Network(self.sim, self.topology)
        self.partitions = PartitionManager(self.network)
        self.apply_fn = apply_fn
        self.correct_fn = correct_fn
        self.divergent_fines = divergent_fines
        self.states: dict[str, State] = {name: {} for name in node_names}
        self.logs: dict[str, list[Operation]] = {name: [] for name in node_names}
        self.initial_state: State = {}
        self.accepted = 0
        self.reports: list[ReconcileReport] = []
        self._op_counter = 0
        for name in node_names:
            self.network.register(name, self._on_message)
        self._pending_remote: dict[str, list[Operation]] = {
            name: [] for name in node_names
        }

    def load(self, initial: State) -> None:
        """Set the common initial state (kept for reconciliation replay)."""
        self.initial_state = dict(initial)
        for state in self.states.values():
            state.update(initial)

    # -- free-for-all processing -------------------------------------------

    def submit(self, node: str, kind: str, params: dict[str, Any]) -> Operation:
        """Accept and apply an operation at ``node`` — never refused."""
        self._op_counter += 1
        op = Operation(
            op_id=f"LT{self._op_counter}",
            kind=kind,
            params=dict(params),
            timestamp=self.sim.now,
            node=node,
        )
        self.accepted += 1
        self.apply_fn(self.states[node], op)
        self.logs[node].append(op)
        # Best-effort propagation to currently reachable peers.
        for other in self.states:
            if other != node:
                self.network.send(node, other, "lt-op", op)
        return op

    def _on_message(self, message) -> None:
        if message.kind != "lt-op":
            return
        op: Operation = message.payload
        known = {o.op_id for o in self.logs[message.dst]}
        if op.op_id in known:
            return
        self.apply_fn(self.states[message.dst], op)
        self.logs[message.dst].append(op)

    # -- reconciliation ---------------------------------------------------------

    def reconcile(self) -> ReconcileReport:
        """Exchange logs, merge by timestamp, rebuild a common state.

        Every node conceptually sends its full partition-era log to
        every other node (message count recorded); the merged log is
        replayed from the initial state; the application's corrective
        function inspects the merged state and may append corrective
        operations (fines, cancellations).  With ``divergent_fines``,
        each node instead computes its *own* corrective operations from
        its own pre-merge log view — reproducing the paper's
        different-fines divergence.
        """
        report = ReconcileReport()
        n = len(self.states)
        merged: dict[str, Operation] = {}
        for log in self.logs.values():
            for op in log:
                merged[op.op_id] = op
        ordered = sorted(merged.values(), key=lambda o: (o.timestamp, o.op_id))
        report.logs_exchanged = sum(len(log) for log in self.logs.values())
        report.messages = n * (n - 1)

        canonical: State = dict(self.initial_state)
        for op in ordered:
            self.apply_fn(canonical, op)
            report.ops_replayed += 1

        if self.correct_fn is not None:
            if self.divergent_fines:
                # Section 1 "chaos": each node corrects from its own view,
                # replaying its log in *local arrival order* — the order in
                # which it actually experienced the operations, which is
                # where the nodes' views of "how long the balance stayed
                # negative" (and how deep) diverge.
                for name in self.states:
                    local_state = dict(self.initial_state)
                    for op in self.logs[name]:
                        self.apply_fn(local_state, op)
                    corrections = self.correct_fn(local_state, self.logs[name])
                    state = dict(canonical)
                    for op in corrections:
                        self.apply_fn(state, op)
                    self.states[name] = state
                    report.corrective_ops.extend(corrections)
                self._sync_logs(ordered)
                self.reports.append(report)
                return report
            corrections = self.correct_fn(canonical, ordered)
            for op in corrections:
                self.apply_fn(canonical, op)
                report.ops_replayed += 1
            report.corrective_ops.extend(corrections)

        for name in self.states:
            self.states[name] = dict(canonical)
        self._sync_logs(ordered)
        self.reports.append(report)
        return report

    def _sync_logs(self, ordered: list[Operation]) -> None:
        for name in self.logs:
            self.logs[name] = list(ordered)

    # -- metrics ------------------------------------------------------------

    @property
    def availability(self) -> float:
        """Always 1.0 while nodes are up — the free-for-all promise."""
        return 1.0

    def mutual_consistency(self) -> MutualConsistencyReport:
        """Compare the semantic states of all replicas."""
        names = list(self.states)
        diffs: dict[tuple[str, str], list[str]] = {}
        reference = self.states[names[0]]
        for other in names[1:]:
            state = self.states[other]
            keys = set(reference) | set(state)
            mismatched = sorted(
                k for k in keys if reference.get(k) != state.get(k)
            )
            if mismatched:
                diffs[(names[0], other)] = mismatched
        return MutualConsistencyReport(consistent=not diffs, diffs=diffs)

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)

    def quiesce(self) -> None:
        """Drain all scheduled events."""
        self.sim.run()
