"""Partition schedules: scripted network failures and heals."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.net.network import Network


@dataclass
class PartitionSpec:
    """One scripted partition episode.

    The network is severed into the given ``groups`` at ``start`` and
    fully healed at ``end``.  Nodes not mentioned in any group remain
    connected to each other (links among them are untouched), but all
    links crossing between two distinct groups go down.
    """

    start: float
    end: float
    groups: Sequence[Iterable[str]]
    label: str = ""
    links_cut: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise NetworkError(
                f"partition must end after it starts ({self.start}..{self.end})"
            )

    @property
    def duration(self) -> float:
        """How long the partition lasts."""
        return self.end - self.start


class PartitionManager:
    """Applies :class:`PartitionSpec` episodes to a :class:`Network`.

    Call :meth:`install` once after constructing the network; each
    episode schedules a cut event and a heal event on the simulator.
    The manager notifies the network (``topology_changed``) after every
    link-state change so held messages get released.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.episodes: list[PartitionSpec] = []
        self.partitions_applied = 0
        self.heals_applied = 0

    def install(self, episodes: Iterable[PartitionSpec]) -> None:
        """Schedule all episodes on the network's simulator."""
        for spec in episodes:
            self.episodes.append(spec)
            self.network.sim.schedule_at(
                spec.start,
                lambda spec=spec: self._apply(spec),
                label=f"partition start {spec.label}",
            )
            self.network.sim.schedule_at(
                spec.end,
                lambda spec=spec: self._heal(spec),
                label=f"partition heal {spec.label}",
            )

    def partition_now(self, groups: Sequence[Iterable[str]]) -> int:
        """Immediately sever the network into the given groups."""
        cut = self._cut_groups(groups)
        self.partitions_applied += 1
        self.network.topology_changed()
        return cut

    def heal_now(self) -> int:
        """Immediately restore every link."""
        healed = self.network.topology.heal()
        self.heals_applied += 1
        self.network.topology_changed()
        return healed

    # -- internals ------------------------------------------------------

    def _cut_groups(self, groups: Sequence[Iterable[str]]) -> int:
        materialized = [set(group) for group in groups]
        total = 0
        for i, group_a in enumerate(materialized):
            for group_b in materialized[i + 1 :]:
                if group_a & group_b:
                    raise NetworkError("partition groups overlap")
                total += self.network.topology.cut(group_a, group_b)
        return total

    def _apply(self, spec: PartitionSpec) -> None:
        spec.links_cut = self._cut_groups(spec.groups)
        self.partitions_applied += 1
        self.network.topology_changed()

    def _heal(self, spec: PartitionSpec) -> None:
        self.network.topology.heal()
        self.heals_applied += 1
        self.network.topology_changed()
