"""Partition schedules: scripted network failures and heals."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.net.network import Network
from repro.obs import taxonomy


@dataclass
class PartitionSpec:
    """One scripted partition episode.

    The network is severed into the given ``groups`` at ``start`` and
    healed at ``end``.  Nodes not mentioned in any group remain
    connected to each other (links among them are untouched), but all
    links crossing between two distinct groups go down.  Healing
    restores only the links this episode is responsible for: a link
    also claimed by a different still-active episode, or owned by a
    currently-crashed node, stays down.
    """

    start: float
    end: float
    groups: Sequence[Iterable[str]]
    label: str = ""
    links_cut: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise NetworkError(
                f"partition must end after it starts ({self.start}..{self.end})"
            )

    @property
    def duration(self) -> float:
        """How long the partition lasts."""
        return self.end - self.start


class PartitionManager:
    """Applies :class:`PartitionSpec` episodes to a :class:`Network`.

    Call :meth:`install` once after constructing the network; each
    episode schedules a cut event and a heal event on the simulator.
    The manager notifies the network (``topology_changed``) after every
    link-state change so held messages get released.

    Link bookkeeping: every active episode (scripted or via
    :meth:`partition_now`) *claims* the links crossing its groups.  A
    heal releases the episode's claims and restores only links whose
    claim count drops to zero AND that a partition actually took down
    — links downed by a node crash (see ``crashed_guard``) are left to
    the node-recovery path.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.tracer = network.tracer
        self.metrics = network.metrics
        self.episodes: list[PartitionSpec] = []
        self.partitions_applied = 0
        self.heals_applied = 0
        # Active severance claims per link key (frozenset endpoint pair):
        # how many active episodes want the link down.
        self._claims: dict[frozenset[str], int] = {}
        # Links a partition actually transitioned up -> down (a link
        # already down — crashed endpoint, manual cut — is claimed but
        # not owned, and is never restored by a heal).
        self._owned: set[frozenset[str]] = set()
        # Optional hook: ``crashed_guard(node) -> True`` if the node is
        # currently crashed; links touching a crashed node are never
        # brought up by a heal.  Installed by FragmentedDatabase.
        self.crashed_guard: Callable[[str], bool] | None = None
        self._c_cuts = self.metrics.counter("partition.links_cut")
        self._c_healed = self.metrics.counter("partition.links_healed")

    def install(self, episodes: Iterable[PartitionSpec]) -> None:
        """Schedule all episodes on the network's simulator."""
        for spec in episodes:
            self.episodes.append(spec)
            self.network.sim.schedule_at(
                spec.start,
                lambda spec=spec: self._apply(spec),
                label=f"partition start {spec.label}",
            )
            self.network.sim.schedule_at(
                spec.end,
                lambda spec=spec: self._heal(spec),
                label=f"partition heal {spec.label}",
            )

    def partition_now(self, groups: Sequence[Iterable[str]]) -> int:
        """Immediately sever the network into the given groups.

        The cut stays claimed until :meth:`heal_now` (scripted episodes
        release their own claims at their scheduled heal).
        """
        cut = self._cut_groups(groups)
        self.partitions_applied += 1
        self._trace_cut(groups, cut, label="(now)")
        self.network.topology_changed()
        return cut

    def heal_now(self) -> int:
        """Release every active claim and restore partition-cut links.

        Links taken down by a node crash (``crashed_guard``) remain
        down — they come back through node recovery, not the partition
        path.
        """
        self._claims.clear()
        healed = 0
        for key in list(self._owned):
            self._owned.discard(key)
            if self._restore(key):
                healed += 1
        self.heals_applied += 1
        self._c_healed.inc(healed)
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.PARTITION_HEAL, label="(now)", links_healed=healed
            )
        self.network.topology_changed()
        return healed

    def severs(self, a: str, b: str) -> bool:
        """True if an active episode claims the link between a and b."""
        return self._claims.get(frozenset((a, b)), 0) > 0

    def adopt(self, a: str, b: str) -> None:
        """Take ownership of a currently-down link under an active claim.

        Used by node recovery: a link that must stay down because of an
        active partition becomes the partition's to restore at heal.
        """
        key = frozenset((a, b))
        if self._claims.get(key, 0) > 0:
            self._owned.add(key)

    # -- internals ------------------------------------------------------

    def _cross_links(self, groups: Sequence[Iterable[str]]):
        materialized = [set(group) for group in groups]
        for i, group_a in enumerate(materialized):
            for group_b in materialized[i + 1 :]:
                if group_a & group_b:
                    raise NetworkError("partition groups overlap")
        for link in self.network.topology.links:
            ends = link.endpoints()
            touched = [
                index
                for index, group in enumerate(materialized)
                if ends & group
            ]
            if len(touched) >= 2:
                yield link

    def _cut_groups(self, groups: Sequence[Iterable[str]]) -> int:
        total = 0
        for link in self._cross_links(groups):
            key = link.endpoints()
            self._claims[key] = self._claims.get(key, 0) + 1
            if link.up:
                link.up = False
                self._owned.add(key)
                total += 1
        self._c_cuts.inc(total)
        return total

    def _release_groups(self, groups: Sequence[Iterable[str]]) -> int:
        healed = 0
        for link in self._cross_links(groups):
            key = link.endpoints()
            count = self._claims.get(key)
            if count is None:
                continue  # already released (e.g. an earlier heal_now)
            if count > 1:
                self._claims[key] = count - 1
                continue
            del self._claims[key]
            if key in self._owned:
                self._owned.discard(key)
                if self._restore(key):
                    healed += 1
        return healed

    def _restore(self, key: frozenset[str]) -> bool:
        """Bring one partition-owned link back up, unless crash-held."""
        if self.crashed_guard is not None and any(
            self.crashed_guard(node) for node in key
        ):
            return False
        a, b = tuple(key)
        link = self.network.topology.link(a, b)
        if link.up:
            return False
        link.up = True
        return True

    def _apply(self, spec: PartitionSpec) -> None:
        spec.links_cut = self._cut_groups(spec.groups)
        self.partitions_applied += 1
        self._trace_cut(spec.groups, spec.links_cut, label=spec.label)
        self.network.topology_changed()

    def _heal(self, spec: PartitionSpec) -> None:
        healed = self._release_groups(spec.groups)
        self.heals_applied += 1
        self._c_healed.inc(healed)
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.PARTITION_HEAL, label=spec.label, links_healed=healed
            )
        self.network.topology_changed()

    def _trace_cut(
        self, groups: Sequence[Iterable[str]], cut: int, label: str
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.PARTITION_CUT,
                label=label,
                groups=[sorted(group) for group in groups],
                links_cut=cut,
            )
