"""Reliable FIFO broadcast (Section 3.2 requirements).

The paper requires a broadcast mechanism such that

1. all messages are eventually delivered, and
2. messages broadcast by one node are *processed* at all other nodes in
   the same order as they were sent.

Requirement (1) comes from the :class:`~repro.net.network.Network`
holding messages across partitions.  Requirement (2) is implemented
here with per-sender sequence numbers and a receiver-side reordering
buffer: a receiver hands message ``(sender, k)`` to the application
only after having processed ``(sender, k-1)``.

An optional ``fifo=False`` mode disables the reordering buffer.  It
exists purely for the ablation experiments that demonstrate how mutual
consistency breaks without guarantee (2).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.net.message import Message
from repro.net.network import Network
from repro.obs import taxonomy
from repro.obs.lineage import batch_span_fields

DeliverFn = Callable[[str, int, Any], None]


@dataclass(frozen=True, slots=True)
class SeqPayload:
    """Wire format: sender's broadcast sequence number plus payload.

    ``stream`` names the FIFO channel the sequence number lives on.
    The default stream ``""`` is the classic broadcast-to-all channel;
    per-fragment multicast (partial replication) runs each fragment on
    its own stream so that messages a node never receives (it is not in
    the replica set) cannot leave gaps in the sequence space of the
    messages it does.
    """

    sender: str
    seq: int
    kind: str
    body: Any
    stream: str = ""


class ReliableBroadcast:
    """Per-sender FIFO reliable broadcast over the simulated network.

    Each participating node gets one endpoint (:meth:`attach`) with a
    delivery callback ``deliver(sender, seq, body)``.  Broadcasts are
    sent point-to-point to every other attached node; the sender's own
    callback is invoked synchronously (a node always "hears" its own
    broadcast first, matching the paper's home-node-executes-first
    model).
    """

    def __init__(self, network: Network, fifo: bool = True) -> None:
        self.network = network
        self.fifo = fifo
        self.tracer = network.tracer
        self.metrics = network.metrics
        self._deliver: dict[str, DeliverFn] = {}
        self._next_send_seq: dict[tuple[str, str], int] = defaultdict(int)
        # Per (receiver, sender, stream): next expected sequence number.
        self._next_expected: dict[tuple[str, str, str], int] = defaultdict(int)
        # Per (receiver, sender, stream): out-of-order buffer seq -> payload.
        # Channel dicts are created on first buffering and popped once
        # drained empty, so the dict does not grow with channel count.
        self._buffer: dict[tuple[str, str, str], dict[int, SeqPayload]] = {}
        self.out_of_order_buffered = 0
        self.duplicates_dropped = 0
        self._c_sent = self.metrics.counter("bcast.sent")
        self._c_buffered = self.metrics.counter("bcast.out_of_order_buffered")
        self._c_drained = self.metrics.counter("bcast.drained")
        self._c_duplicates = self.metrics.counter("bcast.duplicates_dropped")
        self.metrics.gauge("bcast.buffered_now", self.buffered_count)

    def attach(self, node: str, deliver: DeliverFn, register: bool = True) -> None:
        """Register ``node`` with its application-level delivery callback.

        With ``register=False`` the caller owns the network registration
        and must route broadcast messages (payload type
        :class:`SeqPayload`) to :meth:`handle_message` itself — this is
        how :class:`repro.core.node.DatabaseNode` multiplexes broadcast
        and unicast traffic over its single network handler.
        """
        self._deliver[node] = deliver
        if register:
            self.network.register(node, self.handle_message)

    def next_seq(self, sender: str, stream: str = "") -> int:
        """The sequence number the next send on ``stream`` will assign.

        Lets the batcher stamp the wire identity on lineage spans
        *before* the broadcast runs the sender's own synchronous
        delivery.
        """
        return self._next_send_seq[(sender, stream)]

    def broadcast(self, sender: str, body: Any, kind: str = "bcast") -> int:
        """Broadcast ``body`` from ``sender``; returns its sequence number.

        The sender's callback runs synchronously before the method
        returns; remote deliveries are scheduled network events.
        """
        return self.multicast(sender, body, kind=kind)

    def multicast(
        self,
        sender: str,
        body: Any,
        kind: str = "bcast",
        targets: Iterable[str] | None = None,
        stream: str = "",
    ) -> int:
        """Send ``body`` to ``targets`` on a FIFO ``stream``.

        ``targets=None`` means every attached node — a broadcast.  A
        restricted target set (partial replication's replica sets) must
        always be paired with its own ``stream``: FIFO sequencing is per
        ``(sender, stream)`` channel, so a receiver only sees gaps for
        messages it was genuinely never sent if those messages live on
        streams it is not a member of.  Callers are responsible for
        keeping the target set of a given stream stable.

        The sender, if a member of the target set, hears its own message
        synchronously before the method returns (the paper's
        home-node-executes-first model); remote deliveries are scheduled
        network events.
        """
        seq = self._next_send_seq[(sender, stream)]
        self._next_send_seq[(sender, stream)] = seq + 1
        self._c_sent.inc()
        payload = SeqPayload(sender, seq, kind, body, stream)
        send = self.network.send  # hoisted: one lookup per fan-out, not per peer
        if targets is None:
            for dst in self._deliver:
                if dst != sender:
                    send(sender, dst, kind, payload)
            # Local synchronous delivery keeps the sender's own replica
            # the first to reflect its broadcast, as the paper assumes.
            self._process(sender, payload)
            return seq
        deliver_local = False
        attached = self._deliver
        for dst in targets:
            if dst == sender:
                deliver_local = True
            elif dst in attached:
                send(sender, dst, kind, payload)
        if deliver_local:
            self._process(sender, payload)
        return seq

    def unicast_replay(self, src: str, dst: str, payload_seq: int, body: Any,
                       kind: str = "replay", stream: str = "") -> None:
        """Re-send a previously broadcast payload to one node.

        Used by the majority-commit move protocol (Section 4.4.1) when a
        new home node fetches quasi-transactions it missed.  The replay
        goes through the same FIFO machinery, so duplicates (a replay of
        something that later arrives via the held original) are dropped.
        """
        payload = SeqPayload(src, payload_seq, kind, body, stream)
        self.network.send(src, dst, kind, payload)

    # -- receive path ---------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Feed one network message carrying a :class:`SeqPayload`."""
        payload: SeqPayload = message.payload
        self._process(message.dst, payload)

    def buffered_count(self) -> int:
        """Payloads currently parked in out-of-order buffers."""
        return sum(len(channel) for channel in self._buffer.values())

    def _process(self, receiver: str, payload: SeqPayload) -> None:
        if not self.fifo:
            self._deliver[receiver](payload.sender, payload.seq, payload.body)
            return
        key = (receiver, payload.sender, payload.stream)
        expected = self._next_expected[key]
        if payload.seq < expected:
            self._note_duplicate(receiver, payload)
            return  # duplicate (e.g. replay + held original)
        if payload.seq > expected:
            channel = self._buffer.setdefault(key, {})
            if payload.seq in channel:
                # A replay and the held original can carry the same seq;
                # only the first sighting counts as buffered.
                self._note_duplicate(receiver, payload)
                return
            channel[payload.seq] = payload
            self.out_of_order_buffered += 1
            self._c_buffered.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    taxonomy.BROADCAST_BUFFER,
                    receiver=receiver,
                    sender=payload.sender,
                    seq=payload.seq,
                    stream=payload.stream,
                    expected=expected,
                    **batch_span_fields(payload),
                )
            return
        self._deliver[receiver](payload.sender, payload.seq, payload.body)
        self._next_expected[key] = expected + 1
        # Drain any buffered successors, then drop the emptied channel
        # dict so per-channel state does not accumulate forever.
        buffered = self._buffer.get(key)
        if buffered is None:
            return
        nxt = expected + 1
        while nxt in buffered:
            queued = buffered.pop(nxt)
            self._c_drained.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    taxonomy.BROADCAST_DRAIN,
                    receiver=receiver,
                    sender=queued.sender,
                    seq=queued.seq,
                    **batch_span_fields(queued),
                )
            self._deliver[receiver](queued.sender, queued.seq, queued.body)
            nxt += 1
            self._next_expected[key] = nxt
        if not buffered:
            self._buffer.pop(key, None)

    def _note_duplicate(self, receiver: str, payload: SeqPayload) -> None:
        self.duplicates_dropped += 1
        self._c_duplicates.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.BROADCAST_DUPLICATE,
                receiver=receiver,
                sender=payload.sender,
                seq=payload.seq,
                **batch_span_fields(payload),
            )
