"""Seeded fault injection: a lossy, jittery, flaky network substrate.

The paper *assumes* a reliable FIFO broadcast (Section 3.2); the rest
of this repository implements that assumption as an explicit delivery
layer (:mod:`repro.net.reliable`) and this module supplies the hostile
substrate to earn it against.  A :class:`FaultPlan` describes every
fault a run should suffer — steady-state message loss, duplication and
latency jitter, time-windowed loss bursts, transient link flaps, and
scheduled crash/partition episodes — and a :class:`FaultInjector`
applies the message-level faults underneath
:class:`~repro.net.network.Network` scheduling.

Everything is driven by one :class:`~repro.sim.rng.SeededRng` stream,
so a chaos run is exactly reproducible from a single integer seed.

Semantics
---------
* **Loss** drops a message at delivery-scheduling time.  Held messages
  (partition semantics) are never "lost" while held; loss applies when
  the network would actually put the message on a link — including the
  release after a heal.  Without the reliable delivery layer a dropped
  message is gone forever (this is what breaks the paper's requirement
  (1)); with it, the retransmit path recovers.
* **Duplication** schedules a second, independently jittered copy of
  the same payload.  The reliable delivery layer (or, for broadcast
  traffic without it, the per-sender seqno dedup) must absorb it.
* **Jitter** adds a uniform random extra latency per scheduled copy.
  With per-channel FIFO floors disabled this reorders messages; with
  them enabled it still perturbs cross-channel interleavings.
* **Flaps** take one link down for a fixed window and revive it after,
  unless a partition episode or a crashed endpoint holds it down (the
  ``revive_guard`` hook, installed by ``FragmentedDatabase``).
* **Crash / partition episodes** are carried in the plan for the chaos
  harness's convenience but applied at system level
  (``FragmentedDatabase`` schedules ``fail_node``/``recover_node`` and
  feeds :class:`~repro.net.partition.PartitionSpec` episodes to the
  partition manager); the injector itself never touches them.

Observability: every injected fault bumps a ``fault.*`` counter and,
when tracing is enabled, emits a ``fault.*`` trace event.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.partition import PartitionSpec
from repro.obs import taxonomy
from repro.sim.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

#: Effective per-message loss probability is capped here so that a
#: stack of overlapping bursts cannot reach 1.0 and starve retransmits
#: forever (the simulator would otherwise never quiesce).
MAX_LOSS_RATE = 0.95


@dataclass(frozen=True, slots=True)
class LossBurst:
    """A time-windowed loss-rate surge, added on top of the base rate."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise NetworkError(
                f"loss burst must end after it starts ({self.start}..{self.end})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise NetworkError(f"loss burst rate {self.rate} outside [0, 1]")

    def active_at(self, now: float) -> bool:
        """True while the burst window covers ``now``."""
        return self.start <= now < self.end


@dataclass(frozen=True, slots=True)
class LinkFlap:
    """A transient single-link outage: down at ``at``, revived after
    ``duration`` (unless a partition/crash claims the link by then)."""

    at: float
    a: str
    b: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise NetworkError(f"flap duration must be positive ({self.duration})")


@dataclass(frozen=True, slots=True)
class CrashEpisode:
    """A scheduled crash-stop of one node with a scheduled recovery.

    ``unless_agent_home`` lets the chaos harness veto a crash that
    would hit the node currently hosting an agent — the paper's
    movement protocols handle home-node failure via explicit moves
    (Section 4.4.1's election parenthetical, exercised by E14), not by
    executing updates on a dead node, so the generic guarantee sweep
    keeps agents' homes alive and torments every other replica.
    """

    node: str
    at: float
    recover_at: float
    unless_agent_home: bool = False

    def __post_init__(self) -> None:
        if self.recover_at <= self.at:
            raise NetworkError(
                f"crash must recover after it starts ({self.at}..{self.recover_at})"
            )


@dataclass
class FaultPlan:
    """Everything that will go wrong in one run, reproducible by seed.

    ``loss_rate``/``dup_rate``/``jitter`` are steady-state message
    faults; ``link_loss`` overrides the base loss rate per link
    (keyed by frozenset endpoint pair); ``bursts``/``flaps`` are
    scheduled network-level episodes; ``crashes``/``partitions`` are
    system-level episodes applied by ``FragmentedDatabase``.
    """

    loss_rate: float = 0.0
    dup_rate: float = 0.0
    jitter: float = 0.0
    link_loss: Mapping[frozenset[str], float] = field(default_factory=dict)
    bursts: Sequence[LossBurst] = ()
    flaps: Sequence[LinkFlap] = ()
    crashes: Sequence[CrashEpisode] = ()
    partitions: Sequence[PartitionSpec] = ()

    def __post_init__(self) -> None:
        for name in ("loss_rate", "dup_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise NetworkError(f"{name} {rate} outside [0, 1]")
        if self.jitter < 0.0:
            raise NetworkError(f"jitter must be >= 0 ({self.jitter})")

    @property
    def message_faults(self) -> bool:
        """True if any message-level fault (loss/dup/jitter) is armed.

        ``FragmentedDatabase`` turns the reliable delivery layer on by
        default exactly when this is true — loss and duplication are
        meaningless to "inject" if nothing is expected to survive them.
        """
        return bool(
            self.loss_rate
            or self.dup_rate
            or self.jitter
            or self.link_loss
            or self.bursts
        )


class FaultInjector:
    """Applies a plan's message-level faults under network scheduling.

    Attached via ``network.faults``; :meth:`intercept` is consulted by
    ``Network._schedule_delivery`` for every delivery it is about to
    schedule and takes ownership of the scheduling decision (drop,
    jitter, duplicate).  :meth:`install` schedules the plan's link
    flaps on the simulator.
    """

    def __init__(
        self, network: "Network", plan: FaultPlan, rng: SeededRng
    ) -> None:
        self.network = network
        self.plan = plan
        self.rng = rng
        self.tracer = network.tracer
        self.metrics = network.metrics
        self.dropped = 0
        self.duplicated = 0
        #: Revive veto for flap-up: ``revive_guard(a, b)`` returning
        #: False keeps the link down (active partition claim, crashed
        #: endpoint).  Installed by ``FragmentedDatabase``.
        self.revive_guard: Callable[[str, str], bool] | None = None
        self._c_dropped = self.metrics.counter("fault.messages_dropped")
        self._c_duplicated = self.metrics.counter("fault.messages_duplicated")
        self._c_flaps = self.metrics.counter("fault.flaps")
        self._h_jitter = self.metrics.histogram("fault.injected_jitter")
        # Flap bookkeeping: a flap only revives a link it actually took
        # down (a link already down at flap time is someone else's).
        self._flap_took_down: dict[int, bool] = {}
        network.faults = self

    # -- installation --------------------------------------------------

    def install(self) -> None:
        """Schedule the plan's link flaps on the network's simulator."""
        sim = self.network.sim
        for index, flap in enumerate(self.plan.flaps):
            sim.schedule_at(
                flap.at,
                lambda f=flap, i=index: self._flap_down(f, i),
                label=f"fault flap down {flap.a}-{flap.b}",
            )
            sim.schedule_at(
                flap.at + flap.duration,
                lambda f=flap, i=index: self._flap_up(f, i),
                label=f"fault flap up {flap.a}-{flap.b}",
            )

    # -- the message-fault hook ----------------------------------------

    def intercept(self, message: Message, latency: float) -> None:
        """Schedule (or drop) one delivery the network handed over.

        Always takes ownership: the caller must not schedule the
        message itself.  Draw order (loss, jitter, dup, dup-jitter) is
        fixed so runs are reproducible from the plan seed.
        """
        rate = self._loss_rate(message)
        if rate > 0.0 and self.rng.bernoulli(rate):
            self.dropped += 1
            self._c_dropped.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    taxonomy.FAULT_DROP,
                    src=message.src,
                    dst=message.dst,
                    kind=message.kind,
                )
            return
        self.network._schedule_raw(message, latency + self._jitter_draw())
        if self.plan.dup_rate > 0.0 and self.rng.bernoulli(self.plan.dup_rate):
            self.duplicated += 1
            self._c_duplicated.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    taxonomy.FAULT_DUPLICATE,
                    src=message.src,
                    dst=message.dst,
                    kind=message.kind,
                )
            clone = Message(
                message.src,
                message.dst,
                message.kind,
                message.payload,
                sent_at=message.sent_at,
            )
            self.network._schedule_raw(clone, latency + self._jitter_draw())

    # -- internals ------------------------------------------------------

    def _loss_rate(self, message: Message) -> float:
        rate = self.plan.link_loss.get(
            frozenset((message.src, message.dst)), self.plan.loss_rate
        )
        now = self.network.sim.now
        for burst in self.plan.bursts:
            if burst.active_at(now):
                rate += burst.rate
        return min(rate, MAX_LOSS_RATE)

    def _jitter_draw(self) -> float:
        if self.plan.jitter <= 0.0:
            return 0.0
        extra = self.rng.uniform(0.0, self.plan.jitter)
        self._h_jitter.observe(extra)
        return extra

    def _flap_down(self, flap: LinkFlap, index: int) -> None:
        link = self.network.topology.link(flap.a, flap.b)
        self._flap_took_down[index] = link.up
        if not link.up:
            return  # already down (crash/partition owns it)
        link.up = False
        self._c_flaps.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.FAULT_FLAP_DOWN, a=flap.a, b=flap.b,
                duration=flap.duration,
            )
        self.network.topology_changed()

    def _flap_up(self, flap: LinkFlap, index: int) -> None:
        if not self._flap_took_down.pop(index, False):
            return  # the link was not ours to revive
        if self.revive_guard is not None and not self.revive_guard(
            flap.a, flap.b
        ):
            return  # a partition claim or crash now owns the link
        link = self.network.topology.link(flap.a, flap.b)
        if link.up:
            return
        link.up = True
        if self.tracer.enabled:
            self.tracer.emit(taxonomy.FAULT_FLAP_UP, a=flap.a, b=flap.b)
        self.network.topology_changed()
