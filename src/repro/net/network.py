"""The network simulator: delivery with latency, partitions, holding.

Semantics
---------
* A message between currently-connected nodes is delivered after the
  shortest-path latency.
* A message between disconnected nodes is *held* in a per-channel queue
  and delivered once :meth:`Network.topology_changed` is called with
  connectivity restored (the paper's "propagation will be completed
  after the partition is fixed").
* Per-channel FIFO: messages on the same ``(src, dst)`` channel are
  delivered in send order even if latencies would reorder them.  The
  reliable broadcast layer additionally enforces per-sender order
  across its own sequence numbers, but FIFO channels keep unicast
  protocol messages (lock requests/grants, move handshakes) sane too.

Observability
-------------
Every send/deliver/hold/release bumps a counter in the shared
:class:`~repro.obs.metrics.MetricsRegistry` and, when the shared
:class:`~repro.obs.trace.Tracer` is enabled, emits a ``message.*``
trace event.  The invariants the reconciliation tests rely on:

* ``message.send`` events  == ``messages_sent``
* ``message.deliver`` events == ``messages_delivered``
* ``message.hold`` - ``message.release`` events == ``held_count()``
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import Any

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.topology import Topology
from repro.obs import taxonomy
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.simulator import Simulator

Handler = Callable[[Message], None]


class Network:
    """Simulated point-to-point network over a :class:`Topology`.

    Each participating node registers a single receive handler.  All
    sends are asynchronous; delivery happens via simulator events.

    Statistics (message counts by kind, bytes approximated by payload
    update counts) are tracked for the overhead experiments, both as
    plain attributes (``messages_sent`` …) and in the shared metrics
    registry (``net.*`` counters).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._handlers: dict[str, Handler] = {}
        # Held messages per (src, dst) channel, in send order.
        self._held: dict[tuple[str, str], list[Message]] = defaultdict(list)
        # Last scheduled delivery time per channel, for FIFO enforcement.
        self._last_delivery: dict[tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_by_kind: dict[str, int] = defaultdict(int)
        # Hot-path counter handles (one attribute add per event).
        self._c_sent = self.metrics.counter("net.messages_sent")
        self._c_delivered = self.metrics.counter("net.messages_delivered")
        self._c_held = self.metrics.counter("net.messages_held")
        self._c_released = self.metrics.counter("net.messages_released")
        self._kind_counters: dict[str, Any] = {}
        self._h_delay = self.metrics.histogram("net.delivery_delay")
        self.metrics.gauge("net.held_now", self.held_count)
        # Optional realism knobs (used by ablation experiments):
        # per-message latency jitter drawn from jitter_rng, and the
        # per-channel FIFO floor (on by default; switching it off lets
        # jittered messages overtake each other on one channel, which
        # is exactly what the reliable broadcast layer's sequence
        # numbers must then repair).
        self.jitter = 0.0
        self.jitter_rng = None
        self.fifo_channels = True
        # Optional attached layers.  ``faults`` (a FaultInjector) takes
        # over delivery scheduling to inject loss/dup/jitter;
        # ``reliable`` (a ReliableTransport) wraps sends and intercepts
        # deliveries for ack/retransmit semantics.  Both default off so
        # fault-free runs are byte-identical to a bare network.
        self.faults = None
        self.reliable = None
        self._down = False
        # Interned event labels per (kind, src, dst): building the
        # delivery label with an f-string on every send shows up in
        # profiles at E15 scale, and the distinct-label population is
        # tiny (kinds x channels), so memoize the strings.
        self._labels: dict[tuple[str, str, str], str] = {}
        self._loop_labels: dict[tuple[str, str], str] = {}

    def _label(self, kind: str, src: str, dst: str) -> str:
        label = self._labels.get((kind, src, dst))
        if label is None:
            label = self._labels[(kind, src, dst)] = (
                f"deliver {kind} {src}->{dst}"
            )
        return label

    def _loop_label(self, kind: str, node: str) -> str:
        label = self._loop_labels.get((kind, node))
        if label is None:
            label = self._loop_labels[(kind, node)] = (
                f"deliver {kind} {node}->{node} loopback"
            )
        return label

    # -- wiring ---------------------------------------------------------

    def register(self, node: str, handler: Handler) -> None:
        """Attach the receive handler for ``node``."""
        if node not in self.topology.nodes:
            raise NetworkError(f"unknown node {node!r}")
        if node in self._handlers:
            raise NetworkError(f"handler already registered for {node!r}")
        self._handlers[node] = handler

    # -- sending ----------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Message:
        """Send a message; returns the (not yet delivered) envelope.

        Loopback sends (``src == dst``) are delivered to the local
        handler via a zero-latency simulator event: they never cross a
        link, so they bypass partitions, fault injection, and the
        reliable-delivery transport, but still count and trace like any
        other message.
        """
        if dst not in self._handlers:
            raise NetworkError(f"no handler registered for {dst!r}")
        message = Message(src, dst, kind, payload, sent_at=self.sim.now)
        self._count_send(message)
        if src == dst:
            self.sim.schedule(
                0.0,
                lambda: self._deliver_local(message),
                label=self._loop_label(kind, src),
            )
            return message
        if self.reliable is not None:
            self.reliable.on_send(message)
        self._transmit(message)
        return message

    def resend(self, src: str, dst: str, kind: str, payload: Any) -> Message:
        """Retransmit an already-wrapped packet (reliable transport only).

        Counts and traces as a fresh send (``retransmit=True``) but
        skips the transport's wrap-and-track step — the caller already
        owns the packet's retry state.
        """
        message = Message(src, dst, kind, payload, sent_at=self.sim.now)
        self._count_send(message, retransmit=True)
        self._transmit(message)
        return message

    def broadcast_raw(self, src: str, kind: str, payload: Any) -> list[Message]:
        """Unreliable convenience: unicast to every other registered node.

        The *reliable* broadcast of the paper lives in
        :mod:`repro.net.broadcast`; this raw variant is its transport.
        """
        return [
            self.send(src, dst, kind, payload)
            for dst in self._handlers
            if dst != src
        ]

    # -- partition lifecycle ----------------------------------------------

    def topology_changed(self) -> None:
        """Re-examine held messages after a link state change.

        Any held message whose endpoints are now connected is scheduled
        for delivery (in channel FIFO order, after any in-flight
        messages on the same channel).
        """
        for channel, queue in self._held.items():
            if not queue:
                continue
            src, dst = channel
            latency = self.topology.path_latency(src, dst)
            if latency is None:
                continue
            for message in queue:
                self._c_released.inc()
                if self.tracer.enabled:
                    self.tracer.emit(
                        taxonomy.MESSAGE_RELEASE,
                        src=src,
                        dst=dst,
                        kind=message.kind,
                    )
                self._schedule_delivery(message, latency)
            queue.clear()

    def held_count(self) -> int:
        """Number of messages currently held due to disconnection."""
        return sum(len(queue) for queue in self._held.values())

    # -- internals --------------------------------------------------------

    def _count_send(self, message: Message, **trace_extra: Any) -> None:
        self.messages_sent += 1
        self.messages_by_kind[message.kind] += 1
        self._c_sent.inc()
        counter = self._kind_counters.get(message.kind)
        if counter is None:
            counter = self._kind_counters[message.kind] = self.metrics.counter(
                f"net.kind.{message.kind}"
            )
        counter.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.MESSAGE_SEND,
                src=message.src,
                dst=message.dst,
                kind=message.kind,
                **trace_extra,
            )

    def _transmit(self, message: Message) -> None:
        latency = self.topology.path_latency(message.src, message.dst)
        if latency is None:
            self._hold(message)
        else:
            self._schedule_delivery(message, latency)

    def _hold(self, message: Message) -> None:
        self._held[(message.src, message.dst)].append(message)
        self._c_held.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.MESSAGE_HOLD,
                src=message.src,
                dst=message.dst,
                kind=message.kind,
            )

    def _schedule_delivery(self, message: Message, latency: float) -> None:
        # The fault injector, when attached, owns the scheduling
        # decision for every link-crossing delivery (drop / jitter /
        # duplicate); it calls back into ``_schedule_raw`` for each
        # copy that survives.
        if self.faults is not None:
            self.faults.intercept(message, latency)
            return
        self._schedule_raw(message, latency)

    def _schedule_raw(self, message: Message, latency: float) -> None:
        channel = (message.src, message.dst)
        at = self.sim.now + latency
        if self.jitter and self.jitter_rng is not None:
            at += self.jitter_rng.uniform(0.0, self.jitter)
        if self.fifo_channels:
            floor = self._last_delivery.get(channel, 0.0)
            if at < floor:
                at = floor  # preserve channel FIFO
            self._last_delivery[channel] = at
        message.delivered_at = at
        self.sim.schedule_at(
            at,
            lambda: self._deliver(message),
            label=self._label(message.kind, message.src, message.dst),
        )

    def _deliver(self, message: Message) -> None:
        # Re-check connectivity at delivery time: a partition that formed
        # while the message was in flight drops it back into the held
        # queue (it is not lost — requirement (1) of the paper).
        if self.topology.path_latency(message.src, message.dst) is None:
            message.delivered_at = None
            self._hold(message)
            return
        self.messages_delivered += 1
        self._c_delivered.inc()
        delay = self.sim.now - message.sent_at
        self._h_delay.observe(delay)
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.MESSAGE_DELIVER,
                src=message.src,
                dst=message.dst,
                kind=message.kind,
                delay=delay,
            )
        if self.reliable is not None and self.reliable.intercept(message):
            return
        self._handlers[message.dst](message)

    def _deliver_local(self, message: Message) -> None:
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        self._c_delivered.inc()
        self._h_delay.observe(0.0)
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.MESSAGE_DELIVER,
                src=message.src,
                dst=message.dst,
                kind=message.kind,
                delay=0.0,
            )
        self._handlers[message.dst](message)
