"""Network topology: nodes, links, reachability, path latency."""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.errors import NetworkError


class Link:
    """An undirected link with a latency and an up/down state.

    ``up`` is a property: flipping it bumps a generation counter shared
    with the owning :class:`Topology`, which invalidates its path-
    latency cache.  Partition managers and fault injectors all set
    ``link.up`` directly, so the setter is the one choke point every
    reachability change passes through.
    """

    __slots__ = ("a", "b", "latency", "_up", "_version")

    def __init__(self, a: str, b: str, latency: float) -> None:
        if latency < 0:
            raise NetworkError(f"negative latency on link {a}-{b}")
        self.a = a
        self.b = b
        self.latency = latency
        self._up = True
        # Shared generation cell; re-bound to the topology's cell when
        # the link is added to one.  A standalone link gets its own.
        self._version = [0]

    @property
    def up(self) -> bool:
        """Whether the link currently carries traffic."""
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        if value != self._up:
            self._up = value
            self._version[0] += 1

    def endpoints(self) -> frozenset[str]:
        """The unordered endpoint pair, used as the link's key."""
        return frozenset((self.a, self.b))


class Topology:
    """An undirected graph of named nodes and latency-weighted links.

    Convenience constructors cover the experiment shapes: full mesh,
    star, and line.  Reachability and shortest-latency paths consider
    only links that are currently up.
    """

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: dict[str, None] = {}
        self._links: dict[frozenset[str], Link] = {}
        self._adj: dict[str, list[Link]] = {}
        # Path-latency memo, invalidated wholesale whenever the graph's
        # generation (bumped by link up/down flips and structural edits)
        # moves past the generation the memo was built at.  ``None``
        # results (disconnected pairs) are cached too — during a
        # partition those are exactly the hot queries.
        self._version = [0]
        self._path_cache: dict[tuple[str, str], float | None] = {}
        self._cache_version = -1
        #: Set False to recompute every path query from scratch — only
        #: used by the scale benchmark to reproduce pre-cache behavior.
        self.cache_paths = True
        for node in nodes:
            self.add_node(node)

    # -- construction -------------------------------------------------

    @classmethod
    def full_mesh(cls, nodes: Iterable[str], latency: float = 1.0) -> "Topology":
        """Every pair of nodes directly linked with the same latency."""
        topo = cls(nodes)
        names = topo.nodes
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                topo.add_link(a, b, latency)
        return topo

    @classmethod
    def star(cls, hub: str, leaves: Iterable[str], latency: float = 1.0) -> "Topology":
        """A hub node linked to every leaf."""
        leaves = list(leaves)
        topo = cls([hub, *leaves])
        for leaf in leaves:
            topo.add_link(hub, leaf, latency)
        return topo

    @classmethod
    def line(cls, nodes: Iterable[str], latency: float = 1.0) -> "Topology":
        """Nodes linked in a chain, in the given order."""
        names = list(nodes)
        topo = cls(names)
        for a, b in zip(names, names[1:]):
            topo.add_link(a, b, latency)
        return topo

    def add_node(self, node: str) -> None:
        """Add a node (idempotent)."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._adj[node] = []
            self._version[0] += 1

    def add_link(self, a: str, b: str, latency: float = 1.0) -> None:
        """Add an undirected link; both endpoints must already exist."""
        for end in (a, b):
            if end not in self._nodes:
                raise NetworkError(f"unknown node {end!r}")
        if a == b:
            raise NetworkError(f"self-link on node {a!r}")
        key = frozenset((a, b))
        if key in self._links:
            raise NetworkError(f"duplicate link {a}-{b}")
        link = Link(a, b, latency)
        link._version = self._version  # share the generation cell
        self._links[key] = link
        self._adj[a].append(link)
        self._adj[b].append(link)
        self._version[0] += 1

    # -- link state ----------------------------------------------------

    def link(self, a: str, b: str) -> Link:
        """The link between ``a`` and ``b``; raises if absent."""
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a}-{b}") from None

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        """Set the up/down state of one link."""
        self.link(a, b).up = up

    def cut(self, group_a: Iterable[str], group_b: Iterable[str]) -> int:
        """Bring down every link crossing between the two groups.

        Returns the number of links taken down.  Used by the partition
        manager to sever the network into components.
        """
        set_a, set_b = set(group_a), set(group_b)
        count = 0
        for link in self._links.values():
            ends = link.endpoints()
            if ends & set_a and ends & set_b and link.up:
                link.up = False
                count += 1
        return count

    def heal(self) -> int:
        """Bring every link back up; returns how many changed state."""
        count = 0
        for link in self._links.values():
            if not link.up:
                link.up = True
                count += 1
        return count

    # -- queries -------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """All node names, in insertion order."""
        return list(self._nodes)

    @property
    def links(self) -> list[Link]:
        """All links, in insertion order."""
        return list(self._links.values())

    def neighbors(self, node: str) -> list[str]:
        """Nodes adjacent to ``node`` via currently-up links."""
        return [
            link.b if link.a == node else link.a
            for link in self._adj[node]
            if link.up
        ]

    def reachable(self, src: str, dst: str) -> bool:
        """True if a path of up links connects ``src`` and ``dst``."""
        return self.path_latency(src, dst) is not None

    def path_latency(self, src: str, dst: str) -> float | None:
        """Latency of the cheapest up-path, or None if disconnected.

        Results are memoized per link-state generation: the network
        layer asks this question twice per message (admission check at
        send, re-check at delivery), which made per-call Dijkstra the
        single hottest function in E15-class runs.  Any link flip or
        structural edit invalidates the whole memo.
        """
        if not self.cache_paths:
            return self._path_latency_uncached(src, dst)
        if self._cache_version != self._version[0]:
            self._path_cache.clear()
            self._cache_version = self._version[0]
        key = (src, dst)
        cache = self._path_cache
        if key in cache:
            return cache[key]
        latency = self._path_latency_uncached(src, dst)
        cache[key] = latency
        cache[(dst, src)] = latency  # undirected: symmetric by definition
        return latency

    def _path_latency_uncached(self, src: str, dst: str) -> float | None:
        for end in (src, dst):
            if end not in self._nodes:
                raise NetworkError(f"unknown node {end!r}")
        if src == dst:
            return 0.0
        dist = {src: 0.0}
        heap: list[tuple[float, str]] = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == dst:
                return d
            if d > dist.get(node, float("inf")):
                continue
            for link in self._adj[node]:
                if not link.up:
                    continue
                nxt = link.b if link.a == node else link.a
                nd = d + link.latency
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    heapq.heappush(heap, (nd, nxt))
        return None

    def components(self) -> list[set[str]]:
        """Connected components under the current link state."""
        seen: set[str] = set()
        comps: list[set[str]] = []
        for root in self._nodes:
            if root in seen:
                continue
            comp = {root}
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for nxt in self.neighbors(node):
                    if nxt not in comp:
                        comp.add(nxt)
                        frontier.append(nxt)
            seen |= comp
            comps.append(comp)
        return comps
