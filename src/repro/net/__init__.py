"""Network substrate: topology, partitions, delivery, reliable broadcast.

The paper assumes a point-to-point network of arbitrary topology plus a
reliable broadcast mechanism with two guarantees (Section 3.2):

1. all messages are eventually delivered, and
2. messages broadcast by one node are processed at all other nodes in
   the order they were sent.

:class:`~repro.net.network.Network` models links with latency and
up/down state; messages between nodes that are currently disconnected
are *held* and delivered after connectivity is restored (eventual
delivery).  :class:`~repro.net.broadcast.ReliableBroadcast` layers
per-sender sequence numbers and receiver-side reordering buffers on top
(FIFO processing), so the paper's guarantee holds even across
partitions and heals.
"""

from repro.net.broadcast import ReliableBroadcast
from repro.net.faults import (
    CrashEpisode,
    FaultInjector,
    FaultPlan,
    LinkFlap,
    LossBurst,
)
from repro.net.message import Message
from repro.net.network import Network
from repro.net.partition import PartitionManager, PartitionSpec
from repro.net.reliable import ReliableConfig, ReliableTransport
from repro.net.topology import Topology

__all__ = [
    "CrashEpisode",
    "FaultInjector",
    "FaultPlan",
    "LinkFlap",
    "LossBurst",
    "Message",
    "Network",
    "PartitionManager",
    "PartitionSpec",
    "ReliableBroadcast",
    "ReliableConfig",
    "ReliableTransport",
    "Topology",
]
