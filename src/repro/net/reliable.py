"""Ack/retransmit reliable delivery: the paper's assumption, earned.

Section 3.2 *assumes* "all messages are eventually delivered".  On the
fault-free simulated network that holds by construction (partitions
hold messages, nothing is lost); under the injected loss, duplication,
and jitter of :mod:`repro.net.faults` it does not — so this layer
implements the assumption instead of inheriting it:

* **per-channel sequence numbers** — every application message on a
  ``(src, dst)`` channel is wrapped in an :class:`RPacket` carrying a
  channel-sequence number;
* **retransmit timers** — the sender keeps each packet until it is
  acknowledged, retransmitting with exponential backoff (``base_rto``
  doubling up to ``max_rto``) and a bounded retry budget
  (``max_retries``; exhaustion is counted and traced, never silent);
* **receiver-side dedup + reordering** — the receiver delivers each
  channel sequence number exactly once and in order, buffering gaps,
  so unicast protocol traffic (lock requests/grants, move handshakes,
  majority prepare/ack, M0 forwards) keeps its FIFO-channel contract
  and the broadcast layer above never sees transport-level loss;
* **cumulative + selective acks** — every received packet triggers an
  ack carrying the in-order high-water mark plus the buffered
  out-of-order seqnos, letting the sender retire packets the receiver
  already holds (acks themselves are unacknowledged and may be lost;
  the retransmit path covers them).

Partition awareness: a retransmit timer that fires while the channel
is disconnected re-arms without consuming a retry or sending a copy —
the held original will be released at the heal (the network's
partition semantics), and burning the retry budget against a partition
would turn every long partition into a delivery failure.

Transport state is middleware state: like the broadcast layer's
reorder buffers, it survives node crashes (the paper's node model
loses *database* state, not the network substrate's bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.net.message import Message
from repro.obs import taxonomy
from repro.obs.lineage import batch_span_fields
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

#: Wire kind of acknowledgment messages.  Acks bypass wrapping and
#: tracking (no acks-of-acks) but still ride the faulty network.
ACK_KIND = "rel-ack"


@dataclass(frozen=True, slots=True)
class RPacket:
    """Wire envelope: channel sequence number plus the original send."""

    cseq: int
    kind: str
    payload: Any


@dataclass(frozen=True, slots=True)
class ReliableConfig:
    """Retransmission tuning knobs.

    ``base_rto`` should comfortably exceed one round trip (default
    latency is 1.0 tick each way); ``max_retries`` bounds resends per
    packet — at 20% loss the default budget fails with probability
    ~``0.2**25``, i.e. never in practice, while still turning a truly
    dead channel into a loud ``retrans.exhausted`` signal instead of
    an infinite timer loop.
    """

    base_rto: float = 4.0
    max_rto: float = 60.0
    max_retries: int = 25

    def __post_init__(self) -> None:
        if self.base_rto <= 0:
            raise ValueError("base_rto must be positive")
        if self.max_rto < self.base_rto:
            raise ValueError("max_rto must be >= base_rto")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")

    def rto(self, attempts: int) -> float:
        """Backoff delay before retransmission number ``attempts + 1``."""
        return min(self.base_rto * (2.0 ** attempts), self.max_rto)


class _Outstanding:
    """Sender-side state of one unacknowledged packet."""

    __slots__ = ("packet", "attempts", "timer")

    def __init__(self, packet: RPacket) -> None:
        self.packet = packet
        self.attempts = 0
        self.timer: EventHandle | None = None


class _RecvChannel:
    """Receiver-side state of one ``(src, dst)`` channel."""

    __slots__ = ("next_expected", "buffer")

    def __init__(self) -> None:
        self.next_expected = 0
        self.buffer: dict[int, RPacket] = {}


class ReliableTransport:
    """The ack/retransmit layer attached beneath one :class:`Network`.

    Construction attaches it (``network.reliable``); from then on every
    ``Network.send`` is wrapped and tracked, and every delivery is
    routed through :meth:`intercept` for dedup, ordering, and acking.
    """

    def __init__(
        self, network: "Network", config: ReliableConfig | None = None
    ) -> None:
        self.network = network
        self.config = config or ReliableConfig()
        self.tracer = network.tracer
        self.metrics = network.metrics
        # Sender side: per-channel next seqno and unacked packets.
        self._next_cseq: dict[tuple[str, str], int] = {}
        self._outstanding: dict[tuple[str, str], dict[int, _Outstanding]] = {}
        # Receiver side: per-channel cursor and reorder buffer.
        self._recv: dict[tuple[str, str], _RecvChannel] = {}
        self.retransmits = 0
        self.duplicates_dropped = 0
        self.exhausted = 0
        self._c_wrapped = self.metrics.counter("retrans.packets")
        self._c_resent = self.metrics.counter("retrans.resent")
        self._c_acks = self.metrics.counter("retrans.acks_sent")
        self._c_dups = self.metrics.counter("retrans.duplicates_dropped")
        self._c_buffered = self.metrics.counter("retrans.out_of_order_buffered")
        self._c_exhausted = self.metrics.counter("retrans.exhausted")
        self._c_paused = self.metrics.counter("retrans.paused")
        self.metrics.gauge("retrans.unacked_now", self.unacked_count)
        self.metrics.gauge("retrans.buffered_now", self.buffered_count)
        network.reliable = self

    # -- introspection ---------------------------------------------------

    def unacked_count(self) -> int:
        """Packets currently awaiting acknowledgment, all channels."""
        return sum(len(chan) for chan in self._outstanding.values())

    def buffered_count(self) -> int:
        """Packets parked in receiver reorder buffers, all channels."""
        return sum(len(chan.buffer) for chan in self._recv.values())

    # -- send side -------------------------------------------------------

    def on_send(self, message: Message) -> None:
        """Wrap an outgoing message and arm its retransmit timer.

        Called by ``Network.send`` after envelope construction, before
        any scheduling.  Acks pass through unwrapped.
        """
        if message.kind == ACK_KIND:
            return
        channel = (message.src, message.dst)
        cseq = self._next_cseq.get(channel, 0)
        self._next_cseq[channel] = cseq + 1
        packet = RPacket(cseq, message.kind, message.payload)
        message.payload = packet
        entry = _Outstanding(packet)
        self._outstanding.setdefault(channel, {})[cseq] = entry
        self._c_wrapped.inc()
        self._arm_timer(channel, entry)

    def _arm_timer(self, channel: tuple[str, str], entry: _Outstanding) -> None:
        src, dst = channel
        entry.timer = self.network.sim.schedule(
            self.config.rto(entry.attempts),
            lambda: self._on_timer(channel, entry.packet.cseq),
            label=f"retransmit {entry.packet.kind} {src}->{dst} #{entry.packet.cseq}",
        )

    def _on_timer(self, channel: tuple[str, str], cseq: int) -> None:
        entry = self._outstanding.get(channel, {}).get(cseq)
        if entry is None:
            return  # acked in the meantime
        src, dst = channel
        if self.network.topology.path_latency(src, dst) is None:
            # Disconnected: the original (or a copy) is held by the
            # network and will be released at the heal.  Re-arm without
            # consuming a retry or flooding the held queue.
            self._c_paused.inc()
            self._arm_timer(channel, entry)
            return
        entry.attempts += 1
        if entry.attempts > self.config.max_retries:
            self.exhausted += 1
            self._c_exhausted.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    taxonomy.RETRANS_EXHAUSTED,
                    src=src,
                    dst=dst,
                    kind=entry.packet.kind,
                    cseq=cseq,
                    attempts=entry.attempts - 1,
                    **batch_span_fields(entry.packet.payload),
                )
            del self._outstanding[channel][cseq]
            return
        self.retransmits += 1
        self._c_resent.inc()
        if self.tracer.enabled:
            # A retransmitted quasi-transaction batch keeps its causal
            # identity: the copy on the wire names the same batch_id and
            # transactions as the original lineage.send.
            self.tracer.emit(
                taxonomy.RETRANS_SEND,
                src=src,
                dst=dst,
                kind=entry.packet.kind,
                cseq=cseq,
                attempt=entry.attempts,
                **batch_span_fields(entry.packet.payload),
            )
        self.network.resend(src, dst, entry.packet.kind, entry.packet)
        self._arm_timer(channel, entry)

    # -- receive side ----------------------------------------------------

    def intercept(self, message: Message) -> bool:
        """Route one delivered network message through the transport.

        Returns True if the transport consumed it (ack, or a wrapped
        packet — which may synchronously hand one or more unwrapped
        messages to the node handler, in channel-seq order).  Unwrapped
        messages (sent before the transport attached) pass through.
        """
        if message.kind == ACK_KIND:
            self._on_ack(message)
            return True
        if not isinstance(message.payload, RPacket):
            return False
        self._on_packet(message)
        return True

    def _on_packet(self, message: Message) -> None:
        packet: RPacket = message.payload
        channel = (message.src, message.dst)
        state = self._recv.get(channel)
        if state is None:
            state = self._recv[channel] = _RecvChannel()
        if packet.cseq < state.next_expected:
            self._note_duplicate(message, packet)
        elif packet.cseq > state.next_expected:
            if packet.cseq in state.buffer:
                self._note_duplicate(message, packet)
            else:
                state.buffer[packet.cseq] = packet
                self._c_buffered.inc()
                if self.tracer.enabled:
                    self.tracer.emit(
                        taxonomy.RETRANS_BUFFER,
                        src=message.src,
                        dst=message.dst,
                        kind=packet.kind,
                        cseq=packet.cseq,
                        expected=state.next_expected,
                        **batch_span_fields(packet.payload),
                    )
        else:
            self._deliver_in_order(message, state, packet)
        self._send_ack(channel, state)

    def _deliver_in_order(
        self, message: Message, state: _RecvChannel, packet: RPacket
    ) -> None:
        handler = self.network._handlers[message.dst]
        while True:
            state.next_expected += 1
            handler(
                Message(
                    message.src,
                    message.dst,
                    packet.kind,
                    packet.payload,
                    sent_at=message.sent_at,
                    delivered_at=self.network.sim.now,
                )
            )
            next_packet = state.buffer.pop(state.next_expected, None)
            if next_packet is None:
                return
            packet = next_packet

    def _note_duplicate(self, message: Message, packet: RPacket) -> None:
        self.duplicates_dropped += 1
        self._c_dups.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.RETRANS_DUPLICATE,
                src=message.src,
                dst=message.dst,
                kind=packet.kind,
                cseq=packet.cseq,
                **batch_span_fields(packet.payload),
            )

    def _send_ack(self, channel: tuple[str, str], state: _RecvChannel) -> None:
        src, dst = channel
        self._c_acks.inc()
        self.network.send(
            dst,
            src,
            ACK_KIND,
            {
                "channel": channel,
                "cum": state.next_expected - 1,
                "sack": tuple(state.buffer),
            },
        )

    def _on_ack(self, message: Message) -> None:
        body = message.payload
        channel = tuple(body["channel"])
        outstanding = self._outstanding.get(channel)
        if not outstanding:
            return
        cum = body["cum"]
        retired = [cseq for cseq in outstanding if cseq <= cum]
        retired.extend(
            cseq for cseq in body["sack"] if cseq in outstanding and cseq > cum
        )
        for cseq in retired:
            entry = outstanding.pop(cseq)
            if entry.timer is not None:
                entry.timer.cancel()
        if retired and self.tracer.enabled:
            self.tracer.emit(
                taxonomy.RETRANS_ACK,
                src=channel[0],
                dst=channel[1],
                cum=cum,
                retired=len(retired),
            )
