"""Message envelope for the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

_next_id = 0


def _fresh_id() -> int:
    global _next_id
    _next_id += 1
    return _next_id


@dataclass(slots=True)
class Message:
    """A point-to-point message.

    ``payload`` is an arbitrary application object (quasi-transaction,
    lock request, M0 move announcement, ...).  ``kind`` is a short tag
    used for tracing and for the per-kind message counts that the
    overhead experiments (E10) report.
    """

    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float = 0.0
    delivered_at: float | None = None
    msg_id: int = field(default_factory=_fresh_id)

    @property
    def in_flight_time(self) -> float | None:
        """Delivery latency, or None while undelivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at
