"""repro — a reproduction of Garcia-Molina & Kogan,
"Achieving High Availability in Distributed Databases" (ICDE 1987).

The library implements the fragments-and-agents framework — fragments,
tokens, agents, quasi-transaction propagation over reliable FIFO
broadcast — together with the paper's full family of control options
(Sections 4.1-4.3), agent-movement protocols (Section 4.4), the formal
correctness machinery (read-access graphs, serialization graphs,
fragmentwise serializability), the comparison baselines (mutual
exclusion, log transformation, the optimistic protocol), and a
deterministic discrete-event simulation substrate to run it all on.

Quick start::

    from repro import FragmentedDatabase
    from repro.cc import Read, Write

    db = FragmentedDatabase(["A", "B"])
    db.add_agent("central", home_node="A")
    db.add_fragment("BALANCES", agent="central", objects=["bal:1"])
    db.load({"bal:1": 300})

    def deposit(_ctx):
        balance = yield Read("bal:1")
        yield Write("bal:1", balance + 100)

    tracker = db.submit_update("central", deposit, writes=["bal:1"])
    db.quiesce()
    assert tracker.succeeded
    assert db.mutual_consistency().consistent
"""

from repro.cc.ops import Read, Write
from repro.core.control import (
    AcyclicReadsStrategy,
    CombinedStrategy,
    ControlStrategy,
    ReadLocksStrategy,
    UnrestrictedReadsStrategy,
)
from repro.core.movement import (
    CorrectiveMoveProtocol,
    FixedAgentsProtocol,
    InstantMoveProtocol,
    MajorityCommitProtocol,
    MovementProtocol,
    MoveWithDataProtocol,
    MoveWithSeqnoProtocol,
)
from repro.core.predicates import ConsistencyPredicate, PredicateSuite
from repro.core.rag import ReadAccessGraph
from repro.core.system import AvailabilityStats, FragmentedDatabase
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
    scripted_body,
)
from repro.errors import (
    ConsistencyViolation,
    DesignError,
    InitiationError,
    NetworkError,
    ReproError,
    SimulationError,
    TokenError,
    TransactionAborted,
    Unavailable,
)
from repro.net.partition import PartitionSpec
from repro.net.topology import Topology
from repro.obs import MetricsRegistry, TraceEvent, Tracer
from repro.recovery import FragmentCheckpoint, RecoveryConfig
from repro.replication import (
    PipelineConfig,
    QtBatch,
    QuorumConfig,
    ReplicationPipeline,
)
from repro.runtime import AsyncioScheduler, FaultProxy, TcpMeshNetwork
from repro.serve import FrontDoor, serve_frontdoor

__version__ = "1.0.0"

__all__ = [
    "AcyclicReadsStrategy",
    "AsyncioScheduler",
    "AvailabilityStats",
    "CombinedStrategy",
    "ConsistencyPredicate",
    "ConsistencyViolation",
    "ControlStrategy",
    "CorrectiveMoveProtocol",
    "DesignError",
    "FaultProxy",
    "FixedAgentsProtocol",
    "FragmentCheckpoint",
    "FragmentedDatabase",
    "FrontDoor",
    "InitiationError",
    "InstantMoveProtocol",
    "MajorityCommitProtocol",
    "MetricsRegistry",
    "MovementProtocol",
    "MoveWithDataProtocol",
    "MoveWithSeqnoProtocol",
    "NetworkError",
    "PartitionSpec",
    "PipelineConfig",
    "PredicateSuite",
    "QtBatch",
    "QuasiTransaction",
    "QuorumConfig",
    "ReplicationPipeline",
    "Read",
    "ReadAccessGraph",
    "ReadLocksStrategy",
    "RecoveryConfig",
    "ReproError",
    "RequestStatus",
    "RequestTracker",
    "SimulationError",
    "TcpMeshNetwork",
    "TokenError",
    "Topology",
    "TraceEvent",
    "Tracer",
    "TransactionAborted",
    "TransactionSpec",
    "Unavailable",
    "UnrestrictedReadsStrategy",
    "Write",
    "scripted_body",
    "serve_frontdoor",
]
