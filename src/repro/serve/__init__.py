"""HTTP front door for a live (asyncio-backed) fragmented database.

:class:`~repro.serve.app.FrontDoor` exposes the database over plain
stdlib HTTP with **location-transparent routing**: clients address
*objects*, the front door resolves the owning fragment and its agent's
current home node through the catalog on every attempt, so a mid-run
failover (the availability supervisor re-homing an agent) is invisible
to the client beyond added latency — the write lands wherever the
agent lives *now*.

Endpoints::

    POST /updates    submit one write   {"object": .., "value": ..}
    POST /reads      read one object    {"object": .., "at": node?}
    GET  /fragments  catalog snapshot (fragment -> agent/home/replicas)
    GET  /updates    recent request trackers (txn, status, reason)
    GET  /metrics    the metrics registry snapshot
    GET  /           live dashboard (HTML; /data.json + /events SSE)
    GET  /healthz    liveness probe

Writes that arrive mid-failover are **queued and retried** with a
bounded admission semaphore: a rejection whose reason is transient
("agent home ... is down", "token ... in transit") is retried with a
fresh transaction until the supervisor completes the failover or the
deadline passes; terminal rejections surface as 409 immediately.
"""

from repro.serve.app import FrontDoor, serve_frontdoor

__all__ = ["FrontDoor", "serve_frontdoor"]
