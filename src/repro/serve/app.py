"""The HTTP front door: location-transparent access to a live database.

Stdlib-only (``http.server``): a :class:`FrontDoor` wraps one
:class:`~repro.core.system.FragmentedDatabase` running on the asyncio
runtime and serves writes, reads, catalog/metrics introspection, and
the PR 9 dashboard over plain HTTP.

Threading model: ``ThreadingHTTPServer`` handles each request on its
own thread, but every *protocol* action (submit, catalog-routed
resubmit) is marshalled onto the runtime's event-loop thread through
``db.call_on_runtime`` — request threads only ever block on a
``threading.Event`` that the tracker's ``on_done`` (fired on the loop
thread) sets.  Reads of the tracer ring and the metrics registry are
safe from any thread once the system enabled their locks (which the
asyncio runtime does at construction).

Routing: the client names an **object**; the front door resolves the
owning fragment and the controlling agent's *current* home node via
the catalog at every attempt.  During a failover window the update
gate rejects with a transient reason — the front door queues the
request (bounded) and retries with a fresh transaction until the
supervisor re-homes the agent, then the write commits at the new home.
The client sees one slow 200, never a topology detail.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.cc.ops import Read, Write
from repro.core.system import FragmentedDatabase
from repro.core.transaction import RequestStatus, RequestTracker
from repro.errors import DesignError, InitiationError
from repro.obs.dashboard import build_dashboard_data, render_html

#: Rejection reasons the front door treats as transient: the request
#: is retried because the condition heals on its own (failover
#: completes, the control token lands).  Matched as substrings of
#: ``RequestTracker.reason``.
TRANSIENT_REASONS = ("is down", "in transit")

#: Default bound on concurrently queued-or-in-flight HTTP writes; the
#: 65th concurrent write gets an immediate 503 instead of a queue slot
#: (bounded queues are the Section 4 answer to overload, not infinite
#: buffering).
DEFAULT_MAX_QUEUED = 64

DEFAULT_RETRY_INTERVAL = 0.25
DEFAULT_DEADLINE = 30.0


class FrontDoor:
    """One HTTP server fronting one live fragmented database."""

    def __init__(
        self,
        db: FragmentedDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queued: int = DEFAULT_MAX_QUEUED,
        retry_interval: float = DEFAULT_RETRY_INTERVAL,
        deadline: float = DEFAULT_DEADLINE,
        sse_poll_interval: float = 0.5,
        sse_max_pings: int | None = None,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.retry_interval = retry_interval
        self.deadline = deadline
        self.sse_poll_interval = sse_poll_interval
        self.sse_max_pings = sse_max_pings
        self._admission = threading.BoundedSemaphore(max_queued)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._m = db.metrics
        self._m.counter("http.requests")
        self._m.counter("http.updates_committed")
        self._m.counter("http.updates_retried")
        self._m.counter("http.updates_rejected")
        self._m.counter("http.updates_overload")
        self._m.counter("http.updates_timeout")
        self._m.counter("http.reads_served")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FrontDoor":
        """Bind and serve on a background daemon thread."""
        if self._server is not None:
            return self
        door = self

        class Handler(_FrontDoorHandler):
            frontdoor = door

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-frontdoor",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread; idempotent."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "FrontDoor":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- write path ------------------------------------------------------

    def submit_write(self, payload: dict[str, Any]) -> tuple[int, dict]:
        """Route one client write; returns ``(http_status, body)``.

        The loop below *is* the queue-and-retry protocol: resolve the
        route fresh each attempt (the agent may have moved), submit a
        fresh transaction, block on its terminal event, and retry on
        transient rejections until the deadline.
        """
        obj = payload.get("object")
        if not isinstance(obj, str):
            return 400, {"error": "missing or non-string 'object'"}
        if "value" not in payload and "delta" not in payload:
            return 400, {"error": "provide 'value' (set) or 'delta' (add)"}
        fragment = self.db.catalog.fragment_of(obj, strict=False)
        if fragment is None:
            return 404, {"error": f"no fragment owns object {obj!r}"}

        if not self._admission.acquire(blocking=False):
            self._m.inc("http.updates_overload")
            return 503, {"error": "write queue full, retry later"}
        try:
            return self._submit_write_admitted(payload, obj, fragment)
        finally:
            self._admission.release()

    def _submit_write_admitted(
        self, payload: dict[str, Any], obj: str, fragment: str
    ) -> tuple[int, dict]:
        deadline = time.monotonic() + float(
            payload.get("deadline", self.deadline)
        )
        attempts = 0
        tracker: RequestTracker | None = None
        while True:
            attempts += 1
            done = threading.Event()
            try:
                tracker = self.db.call_on_runtime(
                    lambda: self.db.submit_update(
                        self.db.agent_of(fragment).name,
                        _write_body(payload, obj),
                        writes=[obj],
                        meta={"via": "http"},
                        on_done=lambda _t: done.set(),
                    )
                )
            except InitiationError as exc:
                self._m.inc("http.updates_rejected")
                return 409, {"error": str(exc), "attempts": attempts}
            if not done.wait(timeout=max(0.0, deadline - time.monotonic())):
                self._m.inc("http.updates_timeout")
                return 504, {
                    "txn": tracker.spec.txn_id,
                    "status": tracker.status.value,
                    "attempts": attempts,
                    "error": "deadline passed while request pending",
                }
            if tracker.succeeded:
                self._m.inc("http.updates_committed")
                return 200, {
                    "txn": tracker.spec.txn_id,
                    "status": tracker.status.value,
                    "object": obj,
                    "fragment": fragment,
                    "node": self.db.agent_of(fragment).home_node,
                    "attempts": attempts,
                }
            transient = any(
                marker in tracker.reason for marker in TRANSIENT_REASONS
            )
            if not transient or time.monotonic() >= deadline:
                code = 409 if not transient else 504
                self._m.inc(
                    "http.updates_rejected"
                    if code == 409
                    else "http.updates_timeout"
                )
                return code, {
                    "txn": tracker.spec.txn_id,
                    "status": tracker.status.value,
                    "reason": tracker.reason,
                    "attempts": attempts,
                }
            # Transient outage (failover in flight): queue and retry.
            self._m.inc("http.updates_retried")
            time.sleep(self.retry_interval)

    # -- read path -------------------------------------------------------

    def submit_read(self, payload: dict[str, Any]) -> tuple[int, dict]:
        """Read one object, locally or via a quorum vote.

        With ``at`` naming a node that does not replicate the owning
        fragment, the declared read routes through the quorum-read
        service — a version vote over the replica set — before the
        body runs; otherwise it is served from the local replica.
        """
        obj = payload.get("object")
        if not isinstance(obj, str):
            return 400, {"error": "missing or non-string 'object'"}
        fragment = self.db.catalog.fragment_of(obj, strict=False)
        if fragment is None:
            return 404, {"error": f"no fragment owns object {obj!r}"}
        at = payload.get("at")
        if at is not None and at not in self.db.nodes:
            return 404, {"error": f"unknown node {at!r}"}

        done = threading.Event()
        out: dict[str, Any] = {}

        def body(_ctx):
            out["value"] = yield Read(obj)

        try:
            tracker = self.db.call_on_runtime(
                lambda: self.db.submit_readonly(
                    self.db.agent_of(fragment).name,
                    body,
                    at=at,
                    reads=[obj],
                    on_done=lambda _t: done.set(),
                )
            )
        except (InitiationError, DesignError) as exc:
            return 409, {"error": str(exc)}
        if not done.wait(timeout=self.deadline):
            return 504, {
                "txn": tracker.spec.txn_id,
                "status": tracker.status.value,
                "error": "deadline passed while read pending",
            }
        if not tracker.succeeded:
            return 409, {
                "txn": tracker.spec.txn_id,
                "status": tracker.status.value,
                "reason": tracker.reason,
            }
        self._m.inc("http.reads_served")
        return 200, {
            "txn": tracker.spec.txn_id,
            "status": tracker.status.value,
            "object": obj,
            "fragment": fragment,
            "node": tracker.node,
            "value": out.get("value"),
        }

    # -- introspection ---------------------------------------------------

    def fragments_payload(self) -> dict[str, Any]:
        """Catalog snapshot: routing truth the clients never need."""
        db = self.db
        fragments = {}
        for name in db.catalog.names:
            agent = db.agent_of(name)
            fragments[name] = {
                "agent": agent.name,
                "home": agent.home_node,
                "replicas": list(db.replica_set(name)),
                "objects": sorted(db.catalog.get(name).objects),
            }
        return {
            "fragments": fragments,
            "nodes": {
                name: {"down": node.down} for name, node in db.nodes.items()
            },
        }

    def updates_payload(self, limit: int = 100) -> dict[str, Any]:
        """The most recent request trackers, newest last."""
        trackers = list(self.db.trackers)[-limit:]
        return {
            "count": len(self.db.trackers),
            "updates": [
                {
                    "txn": t.spec.txn_id,
                    "agent": t.spec.agent,
                    "update": t.spec.update,
                    "node": t.node,
                    "status": t.status.value,
                    "reason": t.reason,
                    "submit_time": t.submit_time,
                    "finish_time": t.finish_time,
                }
                for t in trackers
            ],
        }

    def dashboard_data(self) -> dict[str, Any]:
        events = [e.as_dict() for e in self.db.tracer.events()]
        return build_dashboard_data(events)

    def dashboard_html(self) -> str:
        return render_html(
            self.dashboard_data(), title="repro serve", live=True
        )


def _write_body(payload: dict[str, Any], obj: str):
    """Build the transaction body for one client write.

    ``value`` installs; ``delta`` is the read-modify-write increment
    (the generator convention: bodies run *inside* the scheduler, so
    the read is lock-covered and the sum is serializable).
    """
    if "value" in payload:
        value = payload["value"]

        def body(_ctx):
            yield Write(obj, value)

    else:
        delta = payload["delta"]

        def body(_ctx):
            current = yield Read(obj)
            yield Write(obj, (current or 0) + delta)

    return body


class _FrontDoorHandler(BaseHTTPRequestHandler):
    """Request plumbing; all logic lives on :class:`FrontDoor`."""

    frontdoor: FrontDoor  # set by the subclass FrontDoor.start() builds
    protocol_version = "HTTP/1.1"

    # -- helpers ---------------------------------------------------------

    def _send_json(self, code: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, html: str) -> None:
        body = html.encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_payload(self) -> dict[str, Any] | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def log_message(self, *args: Any) -> None:  # quiet by default
        pass

    # -- verbs -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server convention)
        door = self.frontdoor
        door._m.inc("http.requests")
        payload = self._read_payload()
        if payload is None:
            self._send_json(400, {"error": "body must be a JSON object"})
            return
        if self.path == "/updates":
            code, body = door.submit_write(payload)
        elif self.path == "/reads":
            code, body = door.submit_read(payload)
        else:
            code, body = 404, {"error": f"no such endpoint {self.path!r}"}
        self._send_json(code, body)

    def do_GET(self) -> None:  # noqa: N802
        door = self.frontdoor
        door._m.inc("http.requests")
        if self.path == "/healthz":
            self._send_json(200, {"ok": True, "nodes": len(door.db.nodes)})
        elif self.path == "/metrics":
            self._send_json(200, door.db.metrics.snapshot())
        elif self.path == "/fragments":
            self._send_json(200, door.fragments_payload())
        elif self.path == "/updates":
            self._send_json(200, door.updates_payload())
        elif self.path == "/data.json":
            self._send_json(200, door.dashboard_data())
        elif self.path == "/":
            self._send_html(door.dashboard_html())
        elif self.path == "/events":
            self._serve_events()
        else:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    def _serve_events(self) -> None:
        """SSE stream pinging whenever the tracer records new events.

        Mirrors the file-watching dashboard's contract (``data: grew``)
        but watches the live tracer's ``emitted`` counter instead of a
        file size, so the served page reloads as the system runs.
        """
        door = self.frontdoor
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        last = door.db.tracer.emitted
        pings = 0
        try:
            while door.sse_max_pings is None or pings < door.sse_max_pings:
                time.sleep(door.sse_poll_interval)
                now = door.db.tracer.emitted
                if now != last:
                    last = now
                    self.wfile.write(b"data: grew\n\n")
                    self.wfile.flush()
                    pings += 1
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client went away


def serve_frontdoor(
    db: FragmentedDatabase,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> FrontDoor:
    """Convenience: build and start a :class:`FrontDoor`."""
    return FrontDoor(db, host=host, port=port, **kwargs).start()
