"""The cluster low-watermark: what every replica has checkpointed.

Replicas gossip ``(fragment, node, upto)`` marks whenever they take a
checkpoint; the tracker keeps the highest mark heard per replica and
answers the *low-watermark* question — the minimum checkpointed cursor
across a replica set.  Everything strictly below the watermark is
reflected in every replica's durable checkpoint, so archives, stream
logs, and WAL prefixes below it may be pruned without ever stranding a
rejoiner: any replica can still serve its checkpoint plus the retained
tail.

A replica nobody has heard a mark from defaults to cursor 0, which
pins the watermark at 0 — no pruning until every replica has
checkpointed at least once.  Partition-awareness (excluding a node
that has been down or unreachable past a grace period) is the
:class:`~repro.recovery.manager.RecoveryManager`'s decision; the
tracker just applies the exclusion set it is given.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable


class WatermarkTracker:
    """Highest checkpoint mark heard per (fragment, replica)."""

    def __init__(self) -> None:
        self._cursors: dict[str, dict[str, int]] = {}

    def note(self, fragment: str, node: str, upto: int) -> None:
        """Record a checkpoint mark; marks only ever move forward."""
        marks = self._cursors.setdefault(fragment, {})
        if upto > marks.get(node, 0):
            marks[node] = upto

    def cursor(self, fragment: str, node: str) -> int:
        """The highest mark heard from ``node`` for ``fragment`` (0 if none)."""
        return self._cursors.get(fragment, {}).get(node, 0)

    def watermark(
        self,
        fragment: str,
        replicas: Iterable[str],
        excluded: Collection[str] = frozenset(),
    ) -> int:
        """Min checkpointed cursor over ``replicas`` minus ``excluded``.

        Returns 0 (prune nothing) when every replica is excluded —
        a fully-partitioned replica set must not license any pruning.
        """
        marks = self._cursors.get(fragment, {})
        counted = [
            marks.get(name, 0) for name in replicas if name not in excluded
        ]
        return min(counted) if counted else 0
