"""Checkpoint and anti-entropy catch-up subsystem.

Three cooperating pieces keep long-lived runs bounded in memory while
preserving the Section 4.4 guarantees:

* :mod:`repro.recovery.checkpoint` — per-fragment durable snapshots
  (:class:`FragmentCheckpoint`) persisted beside the WAL, so recovery
  restores the snapshot and replays only the WAL suffix;
* :mod:`repro.recovery.watermark` — the cluster low-watermark (min
  checkpointed cursor across live replicas) that bounds what any
  replica may prune;
* :mod:`repro.recovery.manager` — the policy engine: checkpoint every
  K installs, gossip cursor marks, prune archives/WAL behind the
  watermark, and answer cursor-based catch-up requests from rejoining
  nodes (shipping a checkpoint when the rejoiner is below the
  compaction horizon).
"""

from repro.recovery.checkpoint import (
    CheckpointStore,
    FragmentCheckpoint,
    apply_checkpoint,
    build_checkpoint,
)
from repro.recovery.manager import (
    CATCHUP_REP,
    CATCHUP_REQ,
    CKPT_MARK,
    RecoveryConfig,
    RecoveryManager,
)
from repro.recovery.watermark import WatermarkTracker

__all__ = [
    "CATCHUP_REP",
    "CATCHUP_REQ",
    "CKPT_MARK",
    "CheckpointStore",
    "FragmentCheckpoint",
    "RecoveryConfig",
    "RecoveryManager",
    "WatermarkTracker",
    "apply_checkpoint",
    "build_checkpoint",
]
