"""Recovery policy engine: checkpoint cadence, pruning, delta catch-up.

One :class:`RecoveryManager` per :class:`FragmentedDatabase` owns the
three decisions the checkpoint subsystem has to make:

* **when to checkpoint** — every ``checkpoint_every`` installs per
  (node, fragment), on demand via :meth:`checkpoint_now`, or from the
  ``repro checkpoint`` CLI;
* **what may be pruned** — each checkpoint gossips a ``ckpt-mark``
  over the reliable broadcast; every replica prunes its archive,
  admission buffer, and WAL prefix behind the cluster low-watermark
  (min mark across replicas), never above its *own* durable
  checkpoint, so any replica can always serve checkpoint + retained
  tail to a rejoiner.  A replica that has been down or unreachable
  past ``grace`` stops pinning the watermark (§4.4's long-partition
  case: the rejoiner will need a shipped checkpoint instead);
* **how a rejoiner catches up** — cursor-based anti-entropy replacing
  the all-peers full-archive exchange: the rejoiner advertises its
  per-fragment cursors to one chosen donor per fragment; the donor
  answers with exactly the missing sequence range, or a checkpoint
  plus tail when the cursor is below its compaction horizon.  Replies
  flow through ``movement.admit`` so FIFO, dedup, and lineage hold.

Everything here is *middleware* state in the crash-stop model — the
manager survives node crashes the same way the network does; only the
per-node :class:`CheckpointStore` and WAL are "durable at the node".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import DesignError
from repro.net.message import Message
from repro.obs import taxonomy
from repro.recovery.checkpoint import (
    FragmentCheckpoint,
    apply_checkpoint,
    build_checkpoint,
)
from repro.recovery.watermark import WatermarkTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase
    from repro.core.transaction import QuasiTransaction
    from repro.sim.simulator import EventHandle

#: Broadcast body type for checkpoint-cursor gossip.
CKPT_MARK = "ckpt-mark"
#: Unicast kinds for the cursor-based catch-up exchange.
CATCHUP_REQ = "catchup-req"
CATCHUP_REP = "catchup-rep"

# Rough per-entry struct sizes for the retained-bytes gauge.  These are
# bookkeeping estimates (a quasi is ~a dict of versions plus ids, a WAL
# record wraps one, a checkpointed object is one Version), not measured
# allocations — the gauge exists to show *trends* (bounded vs growing),
# and a consistent estimate does that.
_QT_BYTES = 48
_WRITE_BYTES = 32
_WAL_RECORD_BYTES = 64
_CKPT_OBJECT_BYTES = 40


@dataclass(frozen=True, slots=True)
class RecoveryConfig:
    """Policy knobs for the checkpoint / compaction / catch-up subsystem.

    ``checkpoint_every=None`` (default) disarms automatic checkpoints
    and therefore all pruning — marks are only gossiped when someone
    checkpoints.  ``grace=None`` means a downed replica pins the
    watermark forever (nothing is pruned past its cursor); a float is
    the §4.4 partition-awareness: after that much sim time down or
    unreachable, the replica stops counting toward the minimum and
    must expect a shipped checkpoint on rejoin.  ``catchup_retry`` /
    ``catchup_attempts`` bound the rejoiner's donor rotation when a
    chosen donor is itself down or cannot serve the range.
    """

    checkpoint_every: int | None = None
    grace: float | None = 60.0
    prune: bool = True
    truncate_wal: bool = True
    catchup_retry: float = 30.0
    catchup_attempts: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise DesignError("checkpoint_every must be >= 1 (or None)")
        if self.grace is not None and self.grace < 0:
            raise DesignError("grace must be >= 0 (or None)")
        if self.catchup_retry <= 0:
            raise DesignError("catchup_retry must be positive")
        if self.catchup_attempts < 1:
            raise DesignError("catchup_attempts must be >= 1")

    @property
    def armed(self) -> bool:
        """True when automatic checkpointing (and thus pruning) is on."""
        return self.checkpoint_every is not None


@dataclass
class _Catchup:
    """Per-rejoiner catch-up state: what is still owed, whom we asked."""

    outstanding: set[str]
    tried: dict[str, set[str]] = field(default_factory=dict)
    #: fragments whose donor must ship a checkpoint even when the
    #: cursor is above its compaction horizon (reconfiguration joins:
    #: initial values the stream never rewrote live only in snapshots).
    snapshot: set[str] = field(default_factory=set)
    attempts: int = 0
    timer: "EventHandle | None" = None


class RecoveryManager:
    """Checkpoint cadence, watermark pruning, and rejoin catch-up."""

    def __init__(self, config: RecoveryConfig | None = None) -> None:
        self.config = config or RecoveryConfig()
        self.tracker = WatermarkTracker()
        self.system: "FragmentedDatabase | None" = None
        self._installs_since: dict[tuple[str, str], int] = {}
        self._suspect_since: dict[str, float] = {}
        self._pending: dict[str, _Catchup] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        """Bind to the system: message handlers, counters, gauges."""
        self.system = system
        metrics = system.metrics
        self._c_checkpoints = metrics.counter("recovery.checkpoints")
        self._c_wal_truncated = metrics.counter("recovery.wal_truncated")
        self._c_pruned = metrics.counter("recovery.archive_pruned")
        self._c_requests = metrics.counter("recovery.catchup_requests")
        self._c_delta_qts = metrics.counter("recovery.delta_qts_shipped")
        self._c_delta_objects = metrics.counter(
            "recovery.delta_objects_shipped"
        )
        self._c_ckpts_shipped = metrics.counter("recovery.checkpoints_shipped")
        self._c_snapshot_objects = metrics.counter(
            "recovery.snapshot_objects_shipped"
        )
        metrics.gauge("recovery.archive_entries", self._archive_entries)
        metrics.gauge("recovery.wal_records", self._wal_records)
        metrics.gauge("recovery.buffer_entries", self._buffer_entries)
        metrics.gauge("recovery.checkpoint_objects", self._checkpoint_objects)
        metrics.gauge("recovery.retained_bytes", self._retained_bytes)
        for node in system.nodes.values():
            self.register_node(node)

    def register_node(self, node: "DatabaseNode") -> None:
        """Install this manager's message handlers on one node."""
        node.register_unicast(
            CATCHUP_REQ, lambda msg, n=node: self._on_catchup_req(n, msg)
        )
        node.register_unicast(
            CATCHUP_REP, lambda msg, n=node: self._on_catchup_rep(n, msg)
        )
        node.register_broadcast(CKPT_MARK, self._on_mark)

    # -- gauges -------------------------------------------------------------

    def _archive_entries(self) -> int:
        return sum(
            len(entries)
            for node in self.system.nodes.values()
            for entries in node.streams.archive.values()
        )

    def _wal_records(self) -> int:
        return sum(len(node.wal) for node in self.system.nodes.values())

    def _buffer_entries(self) -> int:
        return sum(
            len(parked)
            for node in self.system.nodes.values()
            for parked in node.streams.buffer.values()
        )

    def _checkpoint_objects(self) -> int:
        return sum(
            node.checkpoints.object_count()
            for node in self.system.nodes.values()
        )

    def _retained_bytes(self) -> int:
        qt_bytes = 0
        for node in self.system.nodes.values():
            for entries in node.streams.archive.values():
                for quasi in entries.values():
                    qt_bytes += _QT_BYTES + _WRITE_BYTES * len(quasi.writes)
        return (
            qt_bytes
            + _WAL_RECORD_BYTES * self._wal_records()
            + _CKPT_OBJECT_BYTES * self._checkpoint_objects()
        )

    # -- checkpoint cadence -------------------------------------------------

    def note_install(self, node: "DatabaseNode", quasi: "QuasiTransaction") -> None:
        """Install hook: count toward the node's every-K checkpoint policy."""
        every = self.config.checkpoint_every
        if every is None:
            return
        key = (node.name, quasi.fragment)
        count = self._installs_since.get(key, 0) + 1
        if count >= every and self.checkpoint_now(node, quasi.fragment):
            self._installs_since[key] = 0
        else:
            self._installs_since[key] = count

    def checkpoint_now(
        self, node: "DatabaseNode", fragment: str, gossip: bool = True
    ) -> FragmentCheckpoint | None:
        """Take and persist a checkpoint at ``node``; gossip its mark.

        Also the on-demand / CLI entry point.  Truncates the node's WAL
        behind the new checkpoint (policy permitting) and prunes behind
        the watermark, which the fresh mark may have advanced.  Returns
        ``None`` (deferring to a later install) while the fragment's
        apply queue is non-empty: the stream cursor can run ahead of the
        store there (a corrective M0 fast-forwards it while the carried
        catch-up is still queued), and a snapshot stamped with that
        cursor would claim writes it does not contain.
        """
        system = self.system
        if node.apply_queue.depth(fragment) > 0:
            return None
        ckpt = build_checkpoint(system, node, fragment)
        node.checkpoints.put(ckpt)
        self._c_checkpoints.inc()
        if node.tracer.enabled:
            node.tracer.emit(
                taxonomy.RECOVERY_CHECKPOINT,
                node=node.name,
                fragment=fragment,
                upto=ckpt.upto,
                epoch=ckpt.epoch,
                objects=len(ckpt.snapshot),
            )
        self._truncate_wal(node, ckpt)
        self.tracker.note(fragment, node.name, ckpt.upto)
        if gossip:
            # Only the fragment's replicas prune on its marks; under
            # partial replication the gossip multicasts to exactly that
            # set (non-replicas hold nothing to prune).
            targets, stream = system.propagation_plan(fragment)
            system.broadcast.multicast(
                node.name,
                {
                    "type": CKPT_MARK,
                    "fragment": fragment,
                    "node": node.name,
                    "upto": ckpt.upto,
                },
                kind="ckpt",
                targets=targets,
                stream=stream,
            )
        self._prune(node, fragment)
        return ckpt

    def _truncate_wal(
        self, node: "DatabaseNode", ckpt: FragmentCheckpoint
    ) -> None:
        if not self.config.truncate_wal:
            return
        dropped = node.wal.truncate(
            ckpt.fragment, ckpt.upto, ckpt.epoch, frozenset(ckpt.snapshot)
        )
        if dropped:
            self._c_wal_truncated.inc(dropped)
            if node.tracer.enabled:
                node.tracer.emit(
                    taxonomy.RECOVERY_WAL_TRUNCATE,
                    node=node.name,
                    fragment=ckpt.fragment,
                    dropped=dropped,
                    remaining=len(node.wal),
                )

    # -- watermark + pruning ------------------------------------------------

    def _on_mark(
        self, node: "DatabaseNode", sender: str, body: dict[str, Any]
    ) -> None:
        """Broadcast handler: a peer checkpointed; maybe prune here."""
        fragment = body["fragment"]
        self.tracker.note(fragment, body["node"], body["upto"])
        self._prune(node, fragment)

    def _suspect(self, fragment: str, name: str) -> bool:
        """Down, or unreachable from the fragment's stream source."""
        system = self.system
        node = system.nodes[name]
        if node.down:
            return True
        try:
            home = system.agent_of(fragment).home_node
        except DesignError:
            return False
        if home == name or system.nodes[home].down:
            return False
        return not system.topology.reachable(home, name)

    def _excluded(self, fragment: str, replicas: list[str]) -> set[str]:
        """Replicas past the grace period that stop pinning the watermark."""
        grace = self.config.grace
        if grace is None:
            return set()
        now = self.system.sim.now
        out: set[str] = set()
        for name in replicas:
            if self._suspect(fragment, name):
                since = self._suspect_since.setdefault(name, now)
                if now - since >= grace:
                    out.add(name)
            else:
                self._suspect_since.pop(name, None)
        return out

    def watermark(self, fragment: str) -> int:
        """The current cluster low-watermark for ``fragment``.

        Joiners still syncing do not pin it: their cursor is *expected*
        to trail (that is what the catch-up is for), and the snapshot
        path serves them regardless of how far peers have compacted.
        """
        syncing = self.system.syncing_replicas.get(fragment, ())
        replicas = [
            name
            for name in self.system.nodes
            if self.system.replicates(name, fragment) and name not in syncing
        ]
        excluded = self._excluded(fragment, replicas)
        return self.tracker.watermark(fragment, replicas, excluded)

    def _prune(self, node: "DatabaseNode", fragment: str) -> None:
        """Prune one replica's archive behind the watermark.

        The floor is clamped to the replica's *own* durable checkpoint:
        checkpoint ∪ retained archive must always cover the stream from
        seq 0, or the replica could not serve a far-behind rejoiner.
        A replica with no checkpoint therefore never prunes.
        """
        if not self.config.prune:
            return
        own = node.checkpoints.get(fragment)
        if own is None:
            return
        floor = min(self.watermark(fragment), own.upto)
        if floor <= 0:
            return
        dropped = node.streams.prune(fragment, floor)
        if dropped:
            self._c_pruned.inc(dropped)
            if node.tracer.enabled:
                node.tracer.emit(
                    taxonomy.RECOVERY_PRUNE,
                    node=node.name,
                    fragment=fragment,
                    below=floor,
                    dropped=dropped,
                )

    # -- crash / recover hooks ----------------------------------------------

    def node_crashed(self, node: "DatabaseNode") -> None:
        """Pipeline hook: start the grace clock, drop volatile counters."""
        self._suspect_since.setdefault(node.name, self.system.sim.now)
        self._cancel_pending(node.name)
        for key in [k for k in self._installs_since if k[0] == node.name]:
            del self._installs_since[key]

    def node_recovered(self, node: "DatabaseNode") -> None:
        """Pipeline hook: the node is back; it pins the watermark again."""
        self._suspect_since.pop(node.name, None)

    # -- catch-up (rejoiner side) -------------------------------------------

    def catch_up(
        self,
        node: "DatabaseNode",
        fragments: list[str] | None = None,
        want_snapshot: bool = False,
    ) -> None:
        """Start cursor-based anti-entropy for a node owed history.

        One donor per fragment (grouped into one request per donor),
        bounded retries rotating donors if a reply never comes or a
        donor could not serve the range.  ``fragments=None`` — the
        recovery path — covers everything the node replicates and
        replaces any catch-up already in flight; an explicit list — a
        reconfiguration join — merges into the in-flight state instead,
        so a concurrent recovery is not cancelled.  ``want_snapshot``
        asks donors for a checkpoint even above their compaction
        horizon (joiners need initial values, not just the delta).
        """
        system = self.system
        if fragments is None:
            self._cancel_pending(node.name)
        wanted = None if fragments is None else set(fragments)
        names = [
            fragment.name
            for fragment in system.catalog
            if system.replicates(node.name, fragment.name)
            and (wanted is None or fragment.name in wanted)
        ]
        if not names or len(system.nodes) < 2:
            return
        state = self._pending.get(node.name) if wanted is not None else None
        if state is None:
            state = _Catchup(
                outstanding=set(names),
                tried={fragment: set() for fragment in names},
            )
            self._pending[node.name] = state
        else:
            for fragment in names:
                state.outstanding.add(fragment)
                state.tried.setdefault(fragment, set())
        if want_snapshot:
            state.snapshot.update(names)
        self._send_requests(node, state)

    def _pick_donor(
        self, node: "DatabaseNode", fragment: str, tried: set[str]
    ) -> str | None:
        """Best untried peer replica: up and reachable first, by name."""
        system = self.system
        best: tuple[tuple[bool, bool, str], str] | None = None
        for name in system.nodes:
            if name == node.name or name in tried:
                continue
            if not system.replicates(name, fragment):
                continue
            peer = system.nodes[name]
            rank = (
                peer.down,
                not system.topology.reachable(node.name, name),
                # A joiner still syncing is a donor of last resort: its
                # own history may be incomplete.
                name in system.syncing_replicas.get(fragment, ()),
                name,
            )
            if best is None or rank < best[0]:
                best = (rank, name)
        return None if best is None else best[1]

    def _send_requests(self, node: "DatabaseNode", state: _Catchup) -> None:
        system = self.system
        state.attempts += 1
        assignments: dict[str, dict[str, int]] = {}
        for fragment in sorted(state.outstanding):
            tried = state.tried[fragment]
            donor = self._pick_donor(node, fragment, tried)
            if donor is None and tried:
                # Every replica has been tried; start the rotation over.
                tried.clear()
                donor = self._pick_donor(node, fragment, tried)
            if donor is None:
                # No peer replicates this fragment at all — this node's
                # WAL/checkpoint is the whole truth; nothing owed.
                state.outstanding.discard(fragment)
                continue
            tried.add(donor)
            cursor = int(node.streams.next_expected.get(fragment, 0))
            assignments.setdefault(donor, {})[fragment] = cursor
        for donor, cursors in sorted(assignments.items()):
            self._c_requests.inc()
            if node.tracer.enabled:
                node.tracer.emit(
                    taxonomy.RECOVERY_CATCHUP_REQUEST,
                    node=node.name,
                    donor=donor,
                    cursors=dict(sorted(cursors.items())),
                    attempt=state.attempts,
                )
            request: dict[str, Any] = {
                "requester": node.name,
                "cursors": cursors,
            }
            wants = sorted(state.snapshot & set(cursors))
            if wants:
                # Key present only for snapshot-seeded joins, so plain
                # recovery requests stay byte-identical.
                request["snapshot"] = wants
            system.network.send(node.name, donor, CATCHUP_REQ, request)
        if state.outstanding and state.attempts < self.config.catchup_attempts:
            state.timer = system.sim.schedule(
                self.config.catchup_retry,
                lambda: self._retry(node.name),
                label=f"catchup-retry {node.name}",
            )
        else:
            state.timer = None

    def _retry(self, name: str) -> None:
        state = self._pending.get(name)
        if state is None or not state.outstanding:
            return
        node = self.system.nodes[name]
        if node.down:
            return
        self._send_requests(node, state)

    def _cancel_pending(self, name: str) -> None:
        state = self._pending.pop(name, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()
            state.timer = None

    # -- catch-up (donor side) ----------------------------------------------

    def _horizon(self, donor: "DatabaseNode", fragment: str) -> int:
        """The donor's compaction horizon: lowest contiguous archived seq.

        Walking down from ``next_expected`` keeps the answer correct
        even if the archive has unrelated holes (it never should, but
        the serve decision must not depend on that).
        """
        archive = donor.streams.archive.get(fragment) or {}
        low = donor.streams.next_expected.get(fragment, 0)
        while low - 1 in archive:
            low -= 1
        return low

    def _build_part(
        self,
        donor: "DatabaseNode",
        requester: str,
        fragment: str,
        cursor: int,
        force_snapshot: bool = False,
    ) -> dict[str, Any]:
        """One fragment's slice of a catch-up reply.

        Ships ``[cursor, next_expected)`` from the archive when the
        cursor is at or above the compaction horizon; below it, ships
        the donor's checkpoint plus the tail above the checkpoint.  If
        neither covers the gap (no checkpoint and a pruned archive —
        only possible when the donor itself is mid-rejoin), the part is
        marked unserved and the requester's retry rotates donors.
        ``force_snapshot`` takes the checkpoint path even above the
        horizon (reconfiguration joins: a delta from seq 0 replays
        every write but carries no initial values).
        """
        streams = donor.streams
        upto = streams.next_expected.get(fragment, 0)
        horizon = self._horizon(donor, fragment)
        checkpoint: FragmentCheckpoint | None = None
        if cursor >= horizon and not force_snapshot:
            start = cursor
        else:
            checkpoint = donor.checkpoints.get(fragment)
            if checkpoint is None or checkpoint.upto < horizon:
                return {
                    "checkpoint": None,
                    "qts": [],
                    "served": False,
                    "horizon": horizon,
                }
            start = max(checkpoint.upto, cursor)
        archive = streams.archive.get(fragment) or {}
        qts = [archive[seq] for seq in range(start, upto)]
        if checkpoint is not None:
            self._c_ckpts_shipped.inc()
            self._c_snapshot_objects.inc(len(checkpoint.snapshot))
            if donor.tracer.enabled:
                donor.tracer.emit(
                    taxonomy.RECOVERY_CATCHUP_SNAPSHOT,
                    node=requester,
                    donor=donor.name,
                    fragment=fragment,
                    upto=checkpoint.upto,
                    objects=len(checkpoint.snapshot),
                )
        if qts:
            self._c_delta_qts.inc(len(qts))
            self._c_delta_objects.inc(sum(len(q.writes) for q in qts))
            if donor.tracer.enabled:
                donor.tracer.emit(
                    taxonomy.RECOVERY_CATCHUP_DELTA,
                    node=requester,
                    donor=donor.name,
                    fragment=fragment,
                    start=start,
                    count=len(qts),
                )
        return {
            "checkpoint": checkpoint,
            "qts": qts,
            "served": True,
            "horizon": horizon,
        }

    def _on_catchup_req(self, donor: "DatabaseNode", message: Message) -> None:
        requester = message.payload["requester"]
        wants_snapshot = set(message.payload.get("snapshot") or ())
        parts = {
            fragment: self._build_part(
                donor,
                requester,
                fragment,
                int(cursor),
                force_snapshot=fragment in wants_snapshot,
            )
            for fragment, cursor in message.payload["cursors"].items()
            if self.system.replicates(donor.name, fragment)
        }
        self.system.network.send(
            donor.name,
            requester,
            CATCHUP_REP,
            {"donor": donor.name, "fragments": parts},
        )

    def _on_catchup_rep(self, node: "DatabaseNode", message: Message) -> None:
        system = self.system
        state = self._pending.get(node.name)
        for fragment, part in message.payload["fragments"].items():
            checkpoint = part["checkpoint"]
            if checkpoint is not None:
                if apply_checkpoint(node, checkpoint, persist=True):
                    self._truncate_wal(node, checkpoint)
                # The rejoiner's durable cursor jumped: mark it so peers
                # stop pinning the watermark on its stale cursor.
                self.tracker.note(fragment, node.name, checkpoint.upto)
            for quasi in part["qts"]:
                system.movement.admit(node, quasi)
            if part["served"] and state is not None:
                state.outstanding.discard(fragment)
                state.snapshot.discard(fragment)
        if state is not None and not state.outstanding:
            self._cancel_pending(node.name)
            if node.tracer.enabled:
                node.tracer.emit(
                    taxonomy.RECOVERY_CATCHUP_DONE,
                    node=node.name,
                    attempts=state.attempts,
                )
            # A reconfiguration joiner that just finished syncing now
            # counts toward quorums (no-op for plain rejoiners).
            self.system.availability.note_caught_up(node)
