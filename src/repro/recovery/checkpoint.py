"""Durable per-fragment checkpoints.

A :class:`FragmentCheckpoint` is a versioned snapshot of one fragment's
objects plus the stream cursor the snapshot is current through: every
quasi-transaction with ``stream_seq < upto`` (in epochs ``<= epoch``)
is reflected in the snapshot values.  Checkpoints live in a
:class:`CheckpointStore`, which sits *beside* the WAL in the crash-stop
contract: durable, never cleared by :meth:`DatabaseNode.crash`.

Recovery restores the newest checkpoint per fragment and replays only
the WAL suffix past its cursor; catch-up ships a checkpoint to a
rejoiner whose cursor fell below a donor's compaction horizon.  Both
paths end in :func:`apply_checkpoint`, which fast-forwards the stream
cursor monotonically so ordered admission keeps dropping duplicates of
the snapshotted prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.replication.admission import drain_buffer
from repro.storage.values import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


@dataclass(frozen=True, slots=True)
class FragmentCheckpoint:
    """Snapshot of one fragment's objects at a stream cursor.

    ``upto`` is exclusive: the snapshot reflects stream sequences
    ``[0, upto)``.  ``origin`` records which node built it (a shipped
    checkpoint keeps its builder's name) and ``taken_at`` the sim time,
    both for tracing only — correctness depends only on
    ``(epoch, upto)`` and the snapshot versions.
    """

    fragment: str
    upto: int
    epoch: int
    snapshot: dict[str, Version]
    origin: str
    taken_at: float

    @property
    def cursor(self) -> tuple[int, int]:
        """The ``(epoch, upto)`` point this checkpoint is current through."""
        return (self.epoch, self.upto)


class CheckpointStore:
    """A node's durable checkpoint shelf: the newest checkpoint per fragment.

    Durability contract mirrors the WAL: survives ``crash()``, touched
    only through :meth:`put` / :meth:`get`.  Only the newest checkpoint
    per fragment is retained — an older one is strictly redundant with
    a newer one plus nothing, which is what keeps checkpoint storage
    itself bounded.
    """

    def __init__(self, node: str = "") -> None:
        self.node = node
        self._latest: dict[str, FragmentCheckpoint] = {}
        self.puts = 0
        self.restores = 0

    def put(self, ckpt: FragmentCheckpoint) -> bool:
        """Keep ``ckpt`` if it is newer than the stored one; True if kept."""
        current = self._latest.get(ckpt.fragment)
        if current is not None and ckpt.cursor <= current.cursor:
            return False
        self._latest[ckpt.fragment] = ckpt
        self.puts += 1
        return True

    def get(self, fragment: str) -> FragmentCheckpoint | None:
        """The newest checkpoint for ``fragment``, if any."""
        return self._latest.get(fragment)

    def discard(self, fragment: str) -> bool:
        """Drop the checkpoint for ``fragment``; True if one was held.

        Two sanctioned callers: a replica leaving the fragment's set
        (its frozen snapshot must not resurrect at recovery), and a
        demoted ex-home whose checkpoint covers part of a failover
        cut's discarded suffix (the snapshot folds stale writes in, so
        it cannot seed any rebuild).
        """
        return self._latest.pop(fragment, None) is not None

    def all(self) -> list[FragmentCheckpoint]:
        """Every stored checkpoint, ordered by fragment name."""
        return [self._latest[f] for f in sorted(self._latest)]

    def object_count(self) -> int:
        """Total snapshot objects held (the retained-bytes gauge input)."""
        return sum(len(ckpt.snapshot) for ckpt in self._latest.values())

    def __len__(self) -> int:
        return len(self._latest)


def build_checkpoint(
    system: "FragmentedDatabase",
    node: "DatabaseNode",
    fragment: str,
) -> FragmentCheckpoint:
    """Snapshot ``fragment``'s objects at ``node``'s current cursor."""
    streams = node.streams
    objects = system.fragment_objects(fragment, node.store)
    snapshot = node.store.version_snapshot(objects)
    return FragmentCheckpoint(
        fragment=fragment,
        upto=streams.next_expected[fragment],
        epoch=streams.epoch[fragment],
        snapshot=snapshot,
        origin=node.name,
        taken_at=system.sim.now,
    )


def apply_checkpoint(
    node: "DatabaseNode",
    ckpt: FragmentCheckpoint,
    persist: bool = True,
) -> bool:
    """Install a checkpoint into a replica, fast-forwarding its cursor.

    Returns True if the replica's cursor advanced (or matched) — i.e.
    the snapshot was installed.  A replica already past the checkpoint
    keeps its newer values untouched.  ``persist`` stores the
    checkpoint durably so the receiver can itself restore from it (and
    serve it onward) after a later crash; recovery's own restore passes
    ``persist=False`` because the checkpoint is already on the shelf.

    Always ends with a buffer drain: the fast-forwarded cursor may make
    previously-gapped buffered quasi-transactions contiguous.
    """
    streams = node.streams
    fragment = ckpt.fragment
    current = (streams.epoch[fragment], streams.next_expected[fragment])
    if persist:
        node.checkpoints.put(ckpt)
    applied = ckpt.cursor >= current
    if applied:
        for name, version in ckpt.snapshot.items():
            node.store.install(name, version)
        streams.next_expected[fragment] = max(
            streams.next_expected[fragment], ckpt.upto
        )
        streams.epoch[fragment] = max(streams.epoch[fragment], ckpt.epoch)
        # The snapshot subsumes every stream slot below ``upto``; compact
        # them so ``pruned_below`` marks the coverage floor.  Catch-up
        # paths that dedup by source txn rather than cursor (corrective
        # M0 replay) consult this floor — after a crash the WAL suffix
        # no longer names the snapshotted prefix's txns, so the floor is
        # the only record that they are already reflected here.
        streams.prune(fragment, ckpt.upto)
        node.checkpoints.restores += 1
    drain_buffer(node, fragment)
    return applied
