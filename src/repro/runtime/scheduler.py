"""AsyncioScheduler: the Simulator surface over a real event loop.

The protocol stack schedules everything — retransmit timers, heartbeat
probes, batch windows, quorum deadlines — through the five-method
surface of :class:`~repro.sim.simulator.Simulator` (``now``,
``schedule``, ``schedule_at``, ``schedule_recurring``, cancellation
handles).  This class implements the same surface over a real asyncio
loop running in a dedicated thread, so the stack runs unmodified in
real time.

**Tick scaling.**  Protocol constants are expressed in simulator ticks
(default link latency 1.0, retransmit RTO 4.0, heartbeat 5.0).  The
scheduler maps one tick to ``tick`` real seconds (default 0.05), so
``now`` still reads in ticks and every delay keeps its meaning — a
4-tick RTO becomes 200 ms of wall time — and a whole experiment's
timescale turns on one knob.

**Thread model.**  All scheduled callbacks fire on the loop thread;
the protocol stack therefore stays effectively single-threaded, exactly
as under the simulator.  ``schedule``/``cancel`` may be called from any
thread (the HTTP front door's worker threads marshal through
:meth:`call_soon` / :meth:`invoke`); bookkeeping that must be exact
(the pending count) settles on the loop thread.

**Failure visibility.**  The simulator propagates a callback exception
out of ``run()``.  A loop callback has no such caller, so exceptions
are captured into :attr:`errors` (and re-raised by :meth:`check`,
which harnesses call after a run) — never swallowed silently.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from collections.abc import Callable, Coroutine
from typing import Any

from repro.errors import SimulationError
from repro.obs.trace import Tracer

#: Poll period for cross-thread waits (run(), wait_until()).
_POLL = 0.01


class _AsyncHandle:
    """Cancellation handle mirroring :class:`~repro.sim.events.EventHandle`."""

    __slots__ = ("_scheduler", "_time", "_label", "_cancelled", "_fired",
                 "_settled", "_timer")

    def __init__(self, scheduler: "AsyncioScheduler", time: float, label: str):
        self._scheduler = scheduler
        self._time = time
        self._label = label
        self._cancelled = False
        self._fired = False
        self._settled = False
        self._timer: asyncio.TimerHandle | None = None

    @property
    def time(self) -> float:
        return self._time

    @property
    def label(self) -> str:
        return self._label

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; no-op after fire."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self._scheduler._cancel(self)


class _RecurringHandle:
    """Cancellation handle for a recurring chain (stops re-arming too)."""

    __slots__ = ("_current", "_cancelled", "label")

    def __init__(self, label: str) -> None:
        self._current: _AsyncHandle | None = None
        self._cancelled = False
        self.label = label

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        if self._current is not None:
            self._current.cancel()


class AsyncioScheduler:
    """Real-time scheduler satisfying the Simulator's duck type."""

    def __init__(self, tick: float = 0.05) -> None:
        if tick <= 0:
            raise SimulationError(f"tick must be positive (got {tick})")
        self.tick = tick
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._thread_id: int | None = None
        self._origin = 0.0
        self._count_lock = threading.Lock()
        self._pending = 0
        self._fired = 0
        self._tracer: Tracer | None = None
        self.errors: list[tuple[str, BaseException]] = []
        self._started = threading.Event()

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._loop is not None

    def start(self) -> None:
        """Boot the loop thread; idempotent."""
        if self._loop is not None:
            return
        self._loop = asyncio.new_event_loop()
        self._started.clear()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-runtime", daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run_loop(self) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        self._thread_id = threading.get_ident()
        self._origin = loop.time()
        loop.call_soon(self._started.set)
        loop.run_forever()

    def stop(self) -> None:
        """Stop the loop and join its thread; idempotent."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        loop.close()
        self._loop = None
        self._thread = None
        self._thread_id = None

    def check(self) -> None:
        """Raise the first captured callback exception, if any."""
        if self.errors:
            label, exc = self.errors[0]
            raise SimulationError(
                f"{len(self.errors)} runtime callback(s) raised; first "
                f"({label or 'unlabelled'}): {exc!r}"
            ) from exc

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current time in ticks (0.0 before :meth:`start`)."""
        loop = self._loop
        if loop is None:
            return 0.0
        return (loop.time() - self._origin) / self.tick

    @property
    def events_fired(self) -> int:
        return self._fired

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def queue_len(self) -> int:
        return self._pending

    @property
    def tracer(self) -> Tracer | None:
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer | None) -> None:
        if tracer is not None and tracer.clock is None:
            tracer.clock = lambda: self.now
        self._tracer = tracer

    # -- thread marshaling ----------------------------------------------

    def _on_loop_thread(self) -> bool:
        return threading.get_ident() == self._thread_id

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            raise SimulationError(
                "runtime not started: call start() (or "
                "FragmentedDatabase.start_runtime()) first"
            )
        return loop

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread, fire-and-forget."""
        if self._on_loop_thread():
            fn()
            return
        self._require_loop().call_soon_threadsafe(fn)

    def invoke(self, fn: Callable[[], Any], timeout: float = 30.0) -> Any:
        """Run ``fn`` on the loop thread and return its result.

        From the loop thread itself this runs inline (so protocol
        callbacks may use helpers that also serve HTTP threads).
        """
        if self._on_loop_thread():
            return fn()
        future: concurrent.futures.Future = concurrent.futures.Future()

        def runner() -> None:
            try:
                future.set_result(fn())
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                future.set_exception(exc)

        self._require_loop().call_soon_threadsafe(runner)
        return future.result(timeout=timeout)

    def run_coroutine(self, coro: Coroutine[Any, Any, Any],
                      timeout: float = 30.0) -> Any:
        """Run a coroutine on the loop from a foreign thread, blocking."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._require_loop()
        ).result(timeout=timeout)

    # -- scheduling ------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> _AsyncHandle:
        """Schedule ``callback`` ``delay`` *ticks* from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        loop = self._require_loop()
        handle = _AsyncHandle(self, self.now + delay, label)
        with self._count_lock:
            self._pending += 1

        def arm() -> None:
            if handle._cancelled:
                self._settle(handle)
                return
            handle._timer = loop.call_later(
                delay * self.tick, self._fire, handle, callback
            )

        if self._on_loop_thread():
            arm()
        else:
            loop.call_soon_threadsafe(arm)
        return handle

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> _AsyncHandle:
        """Schedule at absolute tick ``time`` (clamped to now if past)."""
        return self.schedule(max(0.0, time - self.now), callback, label)

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[[], None],
        until: float,
        label: str = "",
    ) -> _RecurringHandle:
        """Fire every ``interval`` ticks while the next firing <= ``until``.

        Same contract as the simulator's, with one strengthening:
        cancelling the returned handle stops the chain at any point,
        not just before the first firing — a real-time backend must be
        able to shut periodic work down promptly.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        if self.now + interval > until:
            raise SimulationError(
                f"recurring horizon {until} is before the first firing "
                f"at {self.now + interval}"
            )
        chain = _RecurringHandle(label)

        def fire() -> None:
            callback()
            if not chain._cancelled and self.now + interval <= until:
                chain._current = self.schedule(interval, fire, label)

        chain._current = self.schedule(interval, fire, label)
        return chain

    # -- event internals (loop thread) ----------------------------------

    def _settle(self, handle: _AsyncHandle) -> bool:
        """Retire one handle's pending slot exactly once (loop thread)."""
        if handle._settled:
            return False
        handle._settled = True
        with self._count_lock:
            self._pending -= 1
        return True

    def _fire(self, handle: _AsyncHandle, callback: Callable[[], None]) -> None:
        if handle._cancelled:
            self._settle(handle)
            return
        if not self._settle(handle):
            return
        handle._fired = True
        self._fired += 1
        try:
            callback()
        except Exception as exc:  # noqa: BLE001 - surfaced via check()
            self.errors.append((handle._label, exc))
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                tracer.emit(
                    "runtime.callback_error",
                    label=handle._label,
                    error=repr(exc),
                )

    def _cancel(self, handle: _AsyncHandle) -> None:
        def do_cancel() -> None:
            if handle._fired:
                return
            if handle._timer is not None:
                handle._timer.cancel()
            self._settle(handle)

        if self._on_loop_thread():
            do_cancel()
        elif self._loop is not None:
            self._loop.call_soon_threadsafe(do_cancel)

    # -- blocking drivers (foreign threads) ------------------------------

    def run(self, until: float | None = None,
            max_events: int = 10_000_000) -> None:
        """Block the calling thread while the loop advances.

        With ``until``: sleep until the clock passes that tick.  Without
        (a quiesce): wait for the pending-timer count to reach zero —
        which only converges once periodic chains hit their horizons,
        exactly as under the simulator.  Raises any captured callback
        error when done.  Must not be called from the loop thread.
        """
        if self._on_loop_thread():
            raise SimulationError("run() called from a runtime callback")
        self._require_loop()
        import time as _time

        if until is not None:
            while self.now < until:
                _time.sleep(min(_POLL, (until - self.now) * self.tick))
        else:
            while self._pending > 0:
                _time.sleep(_POLL)
        self.check()

    def advance_to(self, time: float) -> None:
        """Alias of ``run(until=time)`` for harness compatibility."""
        self.run(until=time)

    def wait_until(
        self, predicate: Callable[[], bool], timeout: float = 30.0
    ) -> bool:
        """Poll ``predicate`` (on the loop thread) until true or timeout.

        Returns whether the predicate became true.  The predicate runs
        via :meth:`invoke` so it reads protocol state race-free.
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            if self.invoke(predicate):
                return True
            _time.sleep(_POLL)
        return bool(self.invoke(predicate))

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"AsyncioScheduler({state}, tick={self.tick}, "
            f"now={self.now:.1f}, pending={self._pending})"
        )
