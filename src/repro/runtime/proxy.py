"""Frame-aware TCP fault proxy: real drops, delays, and kills.

One :class:`FaultProxy` fronts one node's mesh server.  Peers dial the
proxy; the proxy parses the length-prefixed frame stream and forwards
whole frames to the real server, which lets it inject faults at
message granularity without ever corrupting the byte stream:

* ``drop`` — each frame is discarded with the given probability
  (seeded RNG, per-node stream);
* ``delay`` — each forwarded frame waits the given seconds first
  (applied in-order per connection, so FIFO survives);
* ``kill`` / ``revive`` — a killed proxy blackholes every frame and
  severs its upstream connections: the node behind it is unreachable
  at the socket level, exactly like a dead process, until revival.

This is the asyncio backend's answer to the simulator's seeded
:class:`~repro.net.faults.FaultInjector` — same fault taxonomy, but the
loss is real packet loss on a real connection and recovery is carried
entirely by the reliable transport's retransmits, not by simulator
bookkeeping.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any


class FaultProxy:
    """A frame-parsing TCP forwarder with injectable faults."""

    def __init__(
        self,
        node: str,
        host: str,
        target_port: int,
        drop: float = 0.0,
        delay: float = 0.0,
        seed: int = 0,
        metrics: Any = None,
    ) -> None:
        self.node = node
        self.host = host
        self.target_port = target_port
        self.drop = drop
        self.delay = delay
        self.killed = False
        self.port: int | None = None
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self.frames_blackholed = 0
        self._rng = random.Random(f"proxy|{seed}|{node}")
        self._server: asyncio.base_events.Server | None = None
        self._upstreams: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._downstreams: set[asyncio.StreamWriter] = set()
        self._metrics = metrics

    async def start(self) -> None:
        """Bind the proxy's listening socket (ephemeral port)."""
        self._server = await asyncio.start_server(self._handle, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener, handler tasks, upstream connections."""
        if self._server is not None:
            self._server.close()
        # Close transports rather than cancelling: the handler tasks
        # are server-spawned, and cancelling those re-raises into the
        # streams connection_made callback (loud on 3.11).
        for writer in list(self._downstreams):
            writer.close()
        tasks = list(self._conn_tasks)
        if tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*tasks, return_exceptions=True),
                    timeout=2.0,
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                for task in tasks:
                    task.cancel()
        self._conn_tasks.clear()
        self._downstreams.clear()
        for writer in list(self._upstreams):
            writer.close()
        self._upstreams.clear()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    # -- fault controls --------------------------------------------------

    def kill(self) -> None:
        """Blackhole all traffic and sever live connections."""
        self.killed = True
        for writer in list(self._upstreams):
            writer.close()
        self._upstreams.clear()
        if self._metrics is not None:
            self._metrics.inc("proxy.kills")

    def revive(self) -> None:
        """Resume forwarding (sender retransmits refill the pipeline)."""
        self.killed = False
        if self._metrics is not None:
            self._metrics.inc("proxy.revives")

    # -- forwarding ------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        upstream: asyncio.StreamWriter | None = None
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._downstreams.add(writer)
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = int.from_bytes(header, "big")
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                if self.killed:
                    self.frames_blackholed += 1
                    if self._metrics is not None:
                        self._metrics.inc("proxy.frames_blackholed")
                    continue
                if self.drop and self._rng.random() < self.drop:
                    self.frames_dropped += 1
                    if self._metrics is not None:
                        self._metrics.inc("proxy.frames_dropped")
                    continue
                if self.delay:
                    await asyncio.sleep(self.delay)
                    if self.killed:
                        self.frames_blackholed += 1
                        continue
                if upstream is None or upstream.is_closing():
                    try:
                        _, upstream = await asyncio.open_connection(
                            self.host, self.target_port
                        )
                        self._upstreams.add(upstream)
                    except OSError:
                        self.frames_dropped += 1
                        continue
                try:
                    upstream.write(header + body)
                    await upstream.drain()
                    self.frames_forwarded += 1
                except (ConnectionError, OSError):
                    self._upstreams.discard(upstream)
                    upstream = None
                    self.frames_dropped += 1
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._downstreams.discard(writer)
            try:
                if upstream is not None:
                    self._upstreams.discard(upstream)
                    upstream.close()
                writer.close()
            except RuntimeError:  # loop already closed at teardown
                pass

    def __repr__(self) -> str:
        state = "killed" if self.killed else "live"
        return (
            f"FaultProxy({self.node}, {state}, port={self.port}, "
            f"fwd={self.frames_forwarded}, dropped={self.frames_dropped})"
        )
