"""The runtime abstraction: Clock, Scheduler, and Transport protocols.

These are *structural* protocols — the simulator backend predates them
and is not modified to inherit from anything; it already satisfies the
surfaces.  They exist so the asyncio backend has a precise contract to
implement, so new backends (subprocess meshes, say) know exactly what
the protocol stack touches, and so the few legitimate wall-clock
consumers (benchmark timing) go through an explicit :class:`Clock`
instead of scattering ``time.perf_counter()`` calls that would leak
nondeterminism into simulator paths.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """A source of monotonically advancing time."""

    def now(self) -> float:
        """The current time (ticks for sim clocks, seconds for wall)."""
        ...


class WallClock:
    """Real elapsed time via ``time.perf_counter``.

    The only sanctioned wall-clock in the codebase: benchmark harnesses
    measure through this object, never through a bare ``perf_counter``
    call site, so an audit for determinism leaks greps for one name.
    """

    def now(self) -> float:
        return time.perf_counter()


#: Shared wall clock for benchmark timing.
_WALL = WallClock()


def wall_clock() -> WallClock:
    """The process-wide :class:`WallClock` instance."""
    return _WALL


class SimClock:
    """A :class:`Clock` view over any scheduler's ``now`` property."""

    __slots__ = ("_scheduler",)

    def __init__(self, scheduler: "SchedulerProtocol") -> None:
        self._scheduler = scheduler

    def now(self) -> float:
        return self._scheduler.now


@runtime_checkable
class CancellableHandle(Protocol):
    """What ``schedule`` returns: a cancellation handle."""

    def cancel(self) -> None: ...


@runtime_checkable
class SchedulerProtocol(Protocol):
    """The scheduling surface the protocol stack runs against.

    Satisfied by :class:`repro.sim.simulator.Simulator` (virtual time,
    deterministic) and :class:`repro.runtime.scheduler.AsyncioScheduler`
    (real time, ticks scaled onto seconds).
    """

    @property
    def now(self) -> float: ...

    @property
    def pending(self) -> int: ...

    @property
    def events_fired(self) -> int: ...

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> CancellableHandle: ...

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> CancellableHandle: ...

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[[], None],
        until: float,
        label: str = "",
    ) -> CancellableHandle: ...

    def run(self, until: float | None = None) -> None: ...


@runtime_checkable
class TransportProtocol(Protocol):
    """The delivery surface: registered handlers, asynchronous sends.

    Satisfied by :class:`repro.net.network.Network` (simulated latency)
    and :class:`repro.runtime.tcp.TcpMeshNetwork` (real sockets).
    """

    def register(self, node: str, handler: Callable[[Any], None]) -> None: ...

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Any: ...

    def topology_changed(self) -> None: ...
