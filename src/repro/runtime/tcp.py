"""TcpMeshNetwork: the Network surface over real asyncio TCP sockets.

Subclasses :class:`~repro.net.network.Network` and replaces exactly one
internal step — how a link-crossing message physically travels.  The
whole observable surface above it (send/deliver counters, trace events,
partition holds, the reliable transport's wrap/intercept hooks) is
inherited unchanged, so protocol code and the audit cannot tell the
backends apart except by the wire being real.

Topology of one mesh: every node runs an ``asyncio.Server`` on an
ephemeral loopback port; each ``(src, dst)`` channel gets one
persistent client connection fed by a dedicated sender task draining a
FIFO queue — TCP's byte ordering then gives the per-channel FIFO the
simulated network enforced with a delivery-time floor.  Frames are the
length-prefixed JSON of :mod:`repro.runtime.codec`.

Faults: with a ``fault_profile`` armed, peers dial each node through a
frame-aware :class:`~repro.runtime.proxy.FaultProxy` that can drop,
delay, or blackhole ("kill") traffic — so loss is *real* loss on a
real socket, repaired by the same ``ReliableTransport`` retransmits
that repair simulated loss.  A killed node additionally refuses
delivery via ``down_guard`` *before* the transport's intercept, so a
crashed node can never acknowledge a packet its database never saw.

The sim-style fault path still works too: ``fail_node`` marks links
down, ``Network._transmit`` holds outbound messages exactly as in the
simulator, and ``topology_changed`` releases them through this class's
transmission override — onto the socket.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from typing import Any

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.runtime.codec import CodecError, WireCodec, default_codec
from repro.runtime.proxy import FaultProxy
from repro.runtime.scheduler import AsyncioScheduler

#: Connection attempts per frame before the frame is dropped (the
#: reliable transport's retransmit owns recovery beyond that).
_CONNECT_ATTEMPTS = 20
_CONNECT_BACKOFF = 0.05


class TcpMeshNetwork(Network):
    """A real-socket mesh behind the simulated network's interface."""

    def __init__(
        self,
        sim: AsyncioScheduler,
        topology: Topology,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        codec: WireCodec | None = None,
        host: str = "127.0.0.1",
        fault_profile: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(sim, topology, tracer=tracer, metrics=metrics)
        self.codec = codec or default_codec()
        self.host = host
        #: ``node -> bool`` guard consulted before delivery; a killed
        #: node's frames are dropped *before* the reliable transport
        #: can acknowledge them (set by the owning system).
        self.down_guard: Callable[[str], bool] | None = None
        #: Fault-proxy knobs (``{"drop": p, "delay": s, "seed": n}``);
        #: None runs direct connections with no proxy layer.
        self.fault_profile = fault_profile
        self.proxies: dict[str, FaultProxy] = {}
        self._servers: dict[str, asyncio.base_events.Server] = {}
        self._ports: dict[str, int] = {}
        self._dial: dict[str, int] = {}
        self._queues: dict[tuple[str, str], asyncio.Queue] = {}
        self._senders: dict[tuple[str, str], asyncio.Task] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._started = False
        self._c_frames_out = self.metrics.counter("tcp.frames_sent")
        self._c_frames_in = self.metrics.counter("tcp.frames_received")
        self._c_frames_down = self.metrics.counter("tcp.frames_dropped_down")
        self._c_frames_lost = self.metrics.counter("tcp.frames_lost")
        self._c_bytes_out = self.metrics.counter("tcp.bytes_sent")
        self.metrics.gauge("tcp.outbox_now", self._outbox_depth)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Bind one server (and optional proxy) per registered node."""
        if self._started:
            return
        self.sim.run_coroutine(self._start())
        self._started = True

    async def _start(self) -> None:
        for node in sorted(self._handlers):
            server = await asyncio.start_server(
                lambda r, w, n=node: self._serve_conn(n, r, w),
                self.host,
                0,
            )
            port = server.sockets[0].getsockname()[1]
            self._servers[node] = server
            self._ports[node] = port
            self._dial[node] = port
        if self.fault_profile is not None:
            profile = self.fault_profile
            for node, port in self._ports.items():
                proxy = FaultProxy(
                    node,
                    self.host,
                    port,
                    drop=float(profile.get("drop", 0.0)),
                    delay=float(profile.get("delay", 0.0)),
                    seed=int(profile.get("seed", 0)),
                    metrics=self.metrics,
                )
                await proxy.start()
                self.proxies[node] = proxy
                self._dial[node] = proxy.port

    def stop(self) -> None:
        """Close servers, sender tasks, proxies; idempotent."""
        if not self._started or not self.sim.running:
            return
        self.sim.run_coroutine(self._stop())
        self._started = False

    async def _stop(self) -> None:
        for server in self._servers.values():
            server.close()
        senders = list(self._senders.values())
        for task in senders:
            task.cancel()
        for task in senders:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._senders.clear()
        self._queues.clear()
        # Inbound handlers: close their transports so readexactly hits
        # EOF and each task *returns* — cancelling tasks spawned by
        # asyncio.start_server trips the streams connection_made
        # callback, which re-raises the CancelledError into the loop's
        # exception handler.  Cancellation is the fallback only.
        for writer in list(self._conn_writers):
            writer.close()
        conns = list(self._conn_tasks)
        if conns:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*conns, return_exceptions=True),
                    timeout=2.0,
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                for task in conns:
                    task.cancel()
        self._conn_tasks.clear()
        self._conn_writers.clear()
        for proxy in self.proxies.values():
            await proxy.stop()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()

    def port_of(self, node: str) -> int:
        """The real server port of ``node`` (after :meth:`start`)."""
        return self._ports[node]

    def _outbox_depth(self) -> int:
        return sum(q.qsize() for q in self._queues.values())

    # -- transmission override -------------------------------------------

    def _schedule_raw(self, message: Message, latency: float) -> None:
        # The simulated backend turns ``latency`` into a delivery event;
        # here the wire supplies its own latency (plus whatever the
        # fault proxy injects), so the model value is ignored.  Holds
        # and partition semantics already happened in ``_transmit``.
        if not self._started:
            raise NetworkError(
                "TCP mesh not started: call FragmentedDatabase.start_runtime()"
            )
        channel = (message.src, message.dst)
        queue = self._queues.get(channel)
        if queue is None:
            queue = self._queues[channel] = asyncio.Queue()
            self._senders[channel] = asyncio.ensure_future(
                self._channel_sender(channel, queue)
            )
        frame = self.codec.encode_frame(message)
        self._c_frames_out.inc()
        self._c_bytes_out.inc(len(frame))
        queue.put_nowait(frame)

    async def _channel_sender(
        self, channel: tuple[str, str], queue: asyncio.Queue
    ) -> None:
        """Drain one channel's outbox over a persistent connection."""
        _src, dst = channel
        writer: asyncio.StreamWriter | None = None
        try:
            while True:
                frame = await queue.get()
                for attempt in range(_CONNECT_ATTEMPTS):
                    if writer is None or writer.is_closing():
                        try:
                            _, writer = await asyncio.open_connection(
                                self.host, self._dial[dst]
                            )
                        except OSError:
                            writer = None
                            await asyncio.sleep(_CONNECT_BACKOFF * (attempt + 1))
                            continue
                    try:
                        writer.write(frame)
                        await writer.drain()
                        break
                    except (ConnectionError, OSError):
                        writer = None
                else:
                    # Connection never came up: the frame is lost on the
                    # floor, which is exactly what the reliable
                    # transport's retransmit budget exists to absorb.
                    self._c_frames_lost.inc()
        finally:
            if writer is not None:
                writer.close()

    # -- receive side ----------------------------------------------------

    async def _serve_conn(
        self,
        node: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Read frames off one inbound connection until EOF."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = int.from_bytes(header, "big")
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                try:
                    message = self.codec.decode_frame(body)
                except CodecError:
                    self.metrics.inc("tcp.frames_undecodable")
                    continue
                self._on_frame(message)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            try:
                writer.close()
            except RuntimeError:  # loop already closed at teardown
                pass

    def _on_frame(self, message: Message) -> None:
        self._c_frames_in.inc()
        guard = self.down_guard
        if guard is not None and guard(message.dst):
            # The destination node is crashed at the database layer: a
            # real dead process would never read this frame, so neither
            # ack nor deliver it — the sender's retransmits will carry
            # it through recovery.
            self._c_frames_down.inc()
            return
        self._deliver(message)
