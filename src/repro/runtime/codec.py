"""Length-prefixed JSON wire codec for the asyncio backend.

Every message the protocol stack puts on the wire is pure data — the
quasi-transaction dataclasses, reliable-transport envelopes, plain
dicts of primitives.  (Transaction *bodies* are generator callables,
but they never cross the network: an update executes at its agent's
home node and only its effects propagate, as
:class:`~repro.core.transaction.QuasiTransaction` objects.)

The codec serializes those payloads structurally: each registered
dataclass becomes a ``{"__wire__": "dc", "type": ..., "fields": ...}``
tagged object and is reconstructed as a *real instance* on the far
side — receivers dispatch on ``isinstance(payload, RPacket)`` /
``isinstance(payload, SeqPayload)``, so a dict lookalike would not do.
Tuples, sets, bytes, and non-string-keyed dicts get their own tags
(JSON would silently flatten them to lists/strings).  Anything
unregistered falls back to pickle-in-base64 so exotic workload values
still travel; the fallback is counted so a hot path quietly leaning on
pickle shows up in metrics.

Frames on the socket are ``4-byte big-endian length + JSON body`` —
self-delimiting, so one TCP connection carries any number of messages
and a frame-aware fault proxy can drop or delay whole messages without
corrupting the stream.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
from typing import Any

from repro.net.message import Message

_TAG = "__wire__"
_LEN = struct.Struct(">I")

#: Refuse absurd frame lengths (corrupt prefix, stray connection).
MAX_FRAME = 64 * 1024 * 1024


class CodecError(Exception):
    """A frame that cannot be decoded."""


class WireCodec:
    """Structural JSON encoding with a registered-dataclass vocabulary."""

    def __init__(self) -> None:
        self._types: dict[str, type] = {}
        self.pickle_fallbacks = 0

    def register(self, cls: type) -> type:
        """Teach the codec one dataclass (field-wise round trip)."""
        self._types[cls.__name__] = cls
        return cls

    # -- frame layer -----------------------------------------------------

    def encode_frame(self, message: Message) -> bytes:
        """One network message -> length-prefixed wire frame."""
        body = json.dumps(
            {
                "src": message.src,
                "dst": message.dst,
                "kind": message.kind,
                "sent_at": message.sent_at,
                "payload": self.encode(message.payload),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        return _LEN.pack(len(body)) + body

    def decode_frame(self, body: bytes) -> Message:
        """Wire frame body (without the length prefix) -> message."""
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"undecodable frame: {exc}") from exc
        return Message(
            raw["src"],
            raw["dst"],
            raw["kind"],
            self.decode(raw["payload"]),
            sent_at=raw["sent_at"],
        )

    # -- value layer -----------------------------------------------------

    def encode(self, value: Any) -> Any:
        """Any payload value -> JSON-safe structure."""
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, list):
            return [self.encode(item) for item in value]
        if isinstance(value, tuple):
            return {_TAG: "tuple", "items": [self.encode(i) for i in value]}
        if isinstance(value, (set, frozenset)):
            kind = "frozenset" if isinstance(value, frozenset) else "set"
            # Sorted by repr: set iteration order must not leak onto
            # the wire (it varies with insertion history).
            items = sorted(value, key=repr)
            return {_TAG: kind, "items": [self.encode(i) for i in items]}
        if isinstance(value, bytes):
            return {_TAG: "bytes", "b64": base64.b64encode(value).decode()}
        if isinstance(value, dict):
            if all(isinstance(k, str) for k in value) and _TAG not in value:
                return {k: self.encode(v) for k, v in value.items()}
            return {
                _TAG: "dict",
                "items": [
                    [self.encode(k), self.encode(v)]
                    for k, v in value.items()
                ],
            }
        cls_name = type(value).__name__
        cls = self._types.get(cls_name)
        if cls is not None and type(value) is cls:
            fields = _dataclass_fields(value)
            return {
                _TAG: "dc",
                "type": cls_name,
                "fields": {k: self.encode(v) for k, v in fields.items()},
            }
        self.pickle_fallbacks += 1
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return {_TAG: "pickle", "b64": base64.b64encode(blob).decode()}

    def decode(self, value: Any) -> Any:
        """Inverse of :meth:`encode`."""
        if isinstance(value, list):
            return [self.decode(item) for item in value]
        if not isinstance(value, dict):
            return value
        tag = value.get(_TAG)
        if tag is None:
            return {k: self.decode(v) for k, v in value.items()}
        if tag == "tuple":
            return tuple(self.decode(i) for i in value["items"])
        if tag == "set":
            return {self.decode(i) for i in value["items"]}
        if tag == "frozenset":
            return frozenset(self.decode(i) for i in value["items"])
        if tag == "bytes":
            return base64.b64decode(value["b64"])
        if tag == "dict":
            return {
                self.decode(k): self.decode(v) for k, v in value["items"]
            }
        if tag == "dc":
            cls = self._types.get(value["type"])
            if cls is None:
                raise CodecError(f"unregistered wire type {value['type']!r}")
            fields = {k: self.decode(v) for k, v in value["fields"].items()}
            return cls(**fields)
        if tag == "pickle":
            return pickle.loads(base64.b64decode(value["b64"]))
        raise CodecError(f"unknown wire tag {tag!r}")


def _dataclass_fields(value: Any) -> dict[str, Any]:
    import dataclasses

    return {
        f.name: getattr(value, f.name)
        for f in dataclasses.fields(value)
    }


def default_codec() -> WireCodec:
    """A codec registered with every dataclass the protocols wire-send.

    The vocabulary is the transitive closure of what reaches
    ``Network.send``: transport envelopes (:class:`RPacket`), broadcast
    envelopes (:class:`SeqPayload`), replication cargo
    (:class:`QtBatch` of :class:`QuasiTransaction` carrying
    :class:`Version` writes and a :class:`SpanContext`), recovery
    snapshots (:class:`FragmentCheckpoint`), and the concurrency-control
    ops (:class:`Read`/:class:`Write`) some workload metadata embeds.
    """
    from repro.cc.ops import Read, Write
    from repro.core.transaction import QuasiTransaction
    from repro.net.broadcast import SeqPayload
    from repro.net.reliable import RPacket
    from repro.obs.lineage import SpanContext
    from repro.recovery.checkpoint import FragmentCheckpoint
    from repro.replication.batch import QtBatch
    from repro.storage.values import Version

    codec = WireCodec()
    for cls in (
        Read,
        Write,
        QuasiTransaction,
        SeqPayload,
        RPacket,
        SpanContext,
        FragmentCheckpoint,
        QtBatch,
        Version,
    ):
        codec.register(cls)
    return codec
