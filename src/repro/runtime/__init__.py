"""Pluggable runtime backends: the simulator, and real asyncio TCP.

The protocol stack (reliable transport, replication pipeline, quorum
reads, availability supervisor) observes only three capabilities:

* a **clock** — ``sim.now``, a monotonically advancing time in ticks;
* a **scheduler** — ``sim.schedule(delay, callback)`` and friends,
  returning cancellable handles;
* a **transport** — ``network.send(src, dst, kind, payload)`` with
  at-least-once-or-held delivery into per-node handlers.

:mod:`repro.runtime.api` names those surfaces as protocols.  The
discrete-event :class:`~repro.sim.simulator.Simulator` and
:class:`~repro.net.network.Network` are the deterministic
implementation; :class:`~repro.runtime.scheduler.AsyncioScheduler` and
:class:`~repro.runtime.tcp.TcpMeshNetwork` are the real-time one —
every node an asyncio task behind a real TCP socket, exchanging
length-prefixed JSON frames, with the same protocol code running
unmodified on top.  ``FragmentedDatabase(..., runtime="asyncio")``
selects the backend.
"""

from repro.runtime.api import Clock, SchedulerProtocol, SimClock, TransportProtocol, WallClock, wall_clock
from repro.runtime.codec import WireCodec, default_codec
from repro.runtime.proxy import FaultProxy
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.tcp import TcpMeshNetwork

__all__ = [
    "AsyncioScheduler",
    "Clock",
    "FaultProxy",
    "SchedulerProtocol",
    "SimClock",
    "TcpMeshNetwork",
    "TransportProtocol",
    "WallClock",
    "WireCodec",
    "default_codec",
    "wall_clock",
]
