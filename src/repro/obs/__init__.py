"""Observability: the metrics registry and structured tracer.

Every :class:`~repro.core.system.FragmentedDatabase` owns one
:class:`MetricsRegistry` (``db.metrics``) and one :class:`Tracer`
(``db.tracer``), shared by the simulator, network, broadcast,
partition manager, nodes, and movement protocols.  Metrics are always
on (counter increments are a single attribute add); tracing starts
disabled and costs one boolean check per event site until
``db.enable_tracing()`` turns it on.

See ``docs/observability.md`` for the event taxonomy and metric names.
"""

from repro.obs import taxonomy
from repro.obs.availability import (
    AvailabilityAccountant,
    account_events,
    account_trace,
)
from repro.obs.lineage import SpanContext, batch_span_fields
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.summary import TraceSummary, read_trace, summarize_trace
from repro.obs.timeline import TimelineSampler
from repro.obs.trace import (
    DEFAULT_FLUSH_EVERY,
    DEFAULT_RING_SIZE,
    TraceEvent,
    Tracer,
)

__all__ = [
    "AvailabilityAccountant",
    "Counter",
    "DEFAULT_FLUSH_EVERY",
    "DEFAULT_RING_SIZE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanContext",
    "TimelineSampler",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "account_events",
    "account_trace",
    "batch_span_fields",
    "read_trace",
    "summarize_trace",
    "taxonomy",
]
