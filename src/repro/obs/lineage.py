"""Causal lineage: one identity threaded through the update path.

A committed update transaction's effects travel commit -> stream log ->
batcher -> reliable broadcast -> reliable transport (retransmits and
dedup included) -> admission -> apply queue -> per-node install.  Each
stage already emits its own trace events; what was missing is a single
*causal identity* tying them together so an offline checker can rebuild
the happens-before graph of one transaction instead of correlating
seqnos by hand.

:class:`SpanContext` is that identity.  It is stamped on the
quasi-transaction at commit time (only while tracing is enabled — a
disabled tracer allocates nothing) and enriched as the update moves
down the pipeline: the batcher fills in ``batch_id`` and the broadcast
sequence number, so every later event — including a retransmission of
the wire packet three stages down — can name the transactions it
carries.

The transport and broadcast layers must not import the replication
package (they sit below it), so :func:`batch_span_fields` recovers the
identity from a wire payload by duck typing: anything whose body is a
dict carrying a ``"batch"`` with ``qts`` yields its transaction ids and
batch id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(slots=True)
class SpanContext:
    """The causal identity of one update transaction's propagation span.

    ``parent`` links a derived transaction to its ancestor — the
    corrective protocol's repackaged orphans (``rp:T7`` carries
    ``parent="T7"``) are the only producers today.  ``batch_id`` and
    ``bcast_seq`` are filled in by the batcher when the quasi-
    transaction is sealed into its wire batch.
    """

    txn_id: str
    agent: str
    fragment: str
    origin_node: str
    stream_seq: int
    epoch: int
    parent: str | None = None
    batch_id: int | None = None
    bcast_seq: int | None = None

    def fields(self) -> dict[str, Any]:
        """Flat trace-event fields (Nones elided)."""
        out: dict[str, Any] = {
            "txn": self.txn_id,
            "agent": self.agent,
            "fragment": self.fragment,
            "origin_node": self.origin_node,
            "stream_seq": self.stream_seq,
            "epoch": self.epoch,
        }
        if self.parent is not None:
            out["parent"] = self.parent
        if self.batch_id is not None:
            out["batch_id"] = self.batch_id
        if self.bcast_seq is not None:
            out["bcast_seq"] = self.bcast_seq
        return out


def batch_span_fields(payload: Any) -> dict[str, Any]:
    """Span identity carried by a wire payload, or ``{}``.

    Accepts anything; returns ``{"txns": [...], "batch_id": ...}`` when
    the payload is (or wraps, via a ``body`` attribute or a plain dict)
    a quasi-transaction batch.  Used by the transport and broadcast
    layers to stamp retransmit/duplicate/buffer events with the causal
    identity of the batch they affect, without importing the
    replication package.
    """
    body = getattr(payload, "body", payload)
    if not isinstance(body, dict):
        return {}
    batch = body.get("batch")
    qts = getattr(batch, "qts", None)
    if qts is None:
        return {}
    fields: dict[str, Any] = {
        "txns": [quasi.source_txn for quasi in qts],
    }
    batch_id = getattr(batch, "batch_id", -1)
    if batch_id >= 0:
        fields["batch_id"] = batch_id
    return fields
