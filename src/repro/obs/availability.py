"""The availability accountant: who was unavailable, when, and why.

The paper's headline claim is availability, but until now the repo
only measured it as run-level ratios (committed / submitted) or a
single post-hoc MTTR histogram.  The :class:`AvailabilityAccountant`
is a per-fragment state machine fed by the existing taxonomy events —
crashes and recoveries, partition episodes, the ``avail.*`` failover
phases, ``system.reconfig*`` membership changes, apply backpressure,
quorum-read timeouts — that maintains each fragment's **write** and
**read** availability timeline and attributes every unavailability
window to a cause:

========== ====================================================
cause      opened / closed by
========== ====================================================
``crash``      the agent's home node crashed / recovered (or the
               agent failed over to a live successor); on the read
               side, so many replicas are down that no quorum of
               live, mutually connected countable replicas exists
``transit``    the fragment's token departed / arrived (updates are
               rejected mid-move)
``failover``   ``avail.failover.begin`` / ``done`` or ``abort``
``partition``  a partition episode leaves every component short of
               a read quorum of countable replicas
``reconfig``   the read quorum fails over the *countable* set but
               would succeed if still-syncing joiners counted — the
               outage is attributable to the membership change
``backpressure`` the apply queue engaged backpressure for the
               fragment (updates are deferred, not lost)
========== ====================================================

Write availability is home-centric (the 1987 model initiates every
update at the fragment's agent): a fragment is write-unavailable
while its home is down (with the supervisor armed, the submission
gate rejects loudly), while its token is in transit, while a failover
is electing a successor, or while backpressure defers submissions.
Read availability is quorum-centric, matching the PR 7 quorum-read
service: a fragment is read-unavailable when no partition component
contains a majority of its live countable replicas.

The accountant is a streaming reducer with the same contract as the
offline auditor (:mod:`repro.analysis.audit`): feed it events in
emission order (file order is causal order — the simulator is
single-threaded), then :meth:`finish`.  Mid-stream it answers
:meth:`unavailable` queries, which is what the auditor's 8th check
uses to prove every blocked submission in a trace falls inside an
accounted window.

Quorum-read timeouts are recorded as point *incidents* (they mark a
read that failed, not a span with a known end), as are detection and
repair latencies per failover (the MTTD/MTTR decomposition).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.obs import taxonomy
from repro.obs.summary import read_trace

#: Cause names, in attribution-priority order (a window with several
#: concurrent causes is labelled by the first active one here).
CAUSES = (
    "crash",
    "transit",
    "failover",
    "partition",
    "reconfig",
    "backpressure",
)

DIMENSIONS = ("write", "read")


@dataclass
class Window:
    """One contiguous unavailability window of a fragment dimension."""

    fragment: str
    dimension: str  # "write" | "read"
    start: float
    end: float | None = None  # None while still open
    causes: set[str] = field(default_factory=set)  # every cause seen

    @property
    def primary(self) -> str:
        """The highest-priority cause active during the window."""
        for cause in CAUSES:
            if cause in self.causes:
                return cause
        return "unknown"

    def duration(self, now: float) -> float:
        return (self.end if self.end is not None else now) - self.start

    def as_dict(self) -> dict[str, Any]:
        return {
            "fragment": self.fragment,
            "dimension": self.dimension,
            "start": round(self.start, 6),
            "end": None if self.end is None else round(self.end, 6),
            "causes": sorted(self.causes),
            "primary": self.primary,
        }


@dataclass
class _DimState:
    """Live cause set + open window for one (fragment, dimension)."""

    active: dict[str, int] = field(default_factory=dict)  # cause -> refcount
    window: Window | None = None
    last_change: float = 0.0
    cause_time: dict[str, float] = field(default_factory=dict)


class AvailabilityAccountant:
    """Streaming per-fragment write/read availability bookkeeping."""

    def __init__(self) -> None:
        self.start_time: float | None = None
        self.now = 0.0
        self.events = 0
        self.catalog_seen = False
        # Schema (from system.catalog / system.reconfig events).
        self.fragment_agent: dict[str, str] = {}
        self.agent_fragments: dict[str, list[str]] = {}
        self.agent_home: dict[str, str] = {}
        self.replicas: dict[str, set[str]] = {}
        self.syncing: dict[str, set[str]] = {}
        self.nodes: set[str] = set()
        # Connectivity inputs.
        self.down: set[str] = set()
        self._episodes: dict[str, list[list[set[str]]]] = {}
        # Per-(fragment, dimension) cause machines.
        self._dims: dict[tuple[str, str], _DimState] = {}
        # Closed windows, in close order.
        self.windows: list[Window] = []
        # Point incidents.
        self.quorum_timeouts: dict[str, int] = {}
        # Failover decomposition per agent: crash -> suspect -> done.
        self._crash_at: dict[str, float] = {}  # node -> time
        self._suspect_at: dict[str, float] = {}  # agent -> time
        self.incidents: list[dict[str, Any]] = []
        self._finished = False

    # -- event feed -------------------------------------------------------

    def feed(self, event: dict[str, Any]) -> None:
        """Consume one trace record (emission order)."""
        t = event.get("t")
        if isinstance(t, (int, float)):
            self.now = float(t)
            if self.start_time is None:
                self.start_time = self.now
        self.events += 1
        etype = event.get("type")
        handler = _HANDLERS.get(etype)
        if handler is not None:
            handler(self, event)

    def finish(self, end_time: float | None = None) -> "AvailabilityAccountant":
        """Close open windows at ``end_time`` (default: last event time)."""
        if self._finished:
            return self
        self._finished = True
        if end_time is not None:
            self.now = max(self.now, end_time)
        for state in self._dims.values():
            self._settle(state)
            if state.window is not None:
                state.window.end = self.now
                self.windows.append(state.window)
                state.window = None
        self.windows.sort(key=lambda w: (w.start, w.fragment, w.dimension))
        return self

    # -- streaming queries -------------------------------------------------

    def unavailable(self, fragment: str, dimension: str = "write") -> bool:
        """True while the fragment has an open unavailability window."""
        state = self._dims.get((fragment, dimension))
        return state is not None and bool(state.active)

    def active_causes(self, fragment: str, dimension: str = "write") -> set[str]:
        """The causes currently holding the dimension unavailable."""
        state = self._dims.get((fragment, dimension))
        return set(state.active) if state is not None else set()

    # -- cause machinery ---------------------------------------------------

    def _state(self, fragment: str, dimension: str) -> _DimState:
        key = (fragment, dimension)
        state = self._dims.get(key)
        if state is None:
            state = self._dims[key] = _DimState(
                last_change=self.start_time or self.now
            )
        return state

    def _settle(self, state: _DimState) -> None:
        """Integrate active causes' time up to now."""
        elapsed = self.now - state.last_change
        if elapsed > 0:
            for cause in state.active:
                state.cause_time[cause] = (
                    state.cause_time.get(cause, 0.0) + elapsed
                )
        state.last_change = self.now

    def _engage(self, fragment: str, dimension: str, cause: str) -> None:
        state = self._state(fragment, dimension)
        self._settle(state)
        state.active[cause] = state.active.get(cause, 0) + 1
        if state.window is None:
            state.window = Window(fragment, dimension, self.now)
        state.window.causes.add(cause)

    def _release(self, fragment: str, dimension: str, cause: str) -> None:
        state = self._dims.get((fragment, dimension))
        if state is None or cause not in state.active:
            return
        self._settle(state)
        state.active[cause] -= 1
        if state.active[cause] <= 0:
            del state.active[cause]
        if not state.active and state.window is not None:
            state.window.end = self.now
            self.windows.append(state.window)
            state.window = None

    def _release_all(self, fragment: str, dimension: str, cause: str) -> None:
        """Drop every refcount of ``cause`` at once."""
        state = self._dims.get((fragment, dimension))
        if state is None or cause not in state.active:
            return
        state.active[cause] = 1
        self._release(fragment, dimension, cause)

    # -- schema -----------------------------------------------------------

    def _on_catalog(self, event: dict[str, Any]) -> None:
        self.catalog_seen = True
        for name, spec in (event.get("fragments") or {}).items():
            agent = spec.get("agent")
            if agent is not None:
                self.fragment_agent[name] = agent
                fragments = self.agent_fragments.setdefault(agent, [])
                if name not in fragments:
                    fragments.append(name)
            replicas = spec.get("replicas")
            if replicas is not None:
                self.replicas[name] = set(replicas)
        for agent, home in (event.get("agents") or {}).items():
            self.agent_home.setdefault(agent, home)
        self.nodes.update(event.get("nodes") or ())
        # The catalog may arrive after crashes (tracing enabled late);
        # re-derive home-crash causes for completeness.
        for agent, home in self.agent_home.items():
            if home in self.down:
                self._home_crashed(agent)

    def _on_reconfig(self, event: dict[str, Any]) -> None:
        fragment = event.get("fragment")
        if fragment is None:
            return
        replicas = event.get("replicas")
        if replicas is not None:
            self.replicas[fragment] = set(replicas)
        self.syncing[fragment] = set(event.get("syncing") or ())
        self._reassess_read(fragment)

    def _on_synced(self, event: dict[str, Any]) -> None:
        fragment = event.get("fragment")
        node = event.get("node")
        if fragment is None:
            return
        self.syncing.get(fragment, set()).discard(node)
        self._reassess_read(fragment)

    # -- write dimension ---------------------------------------------------

    def _home_crashed(self, agent: str) -> None:
        for fragment in self.agent_fragments.get(agent, ()):
            state = self._state(fragment, "write")
            if "crash" not in state.active:
                self._engage(fragment, "write", "crash")

    def _home_restored(self, agent: str) -> None:
        for fragment in self.agent_fragments.get(agent, ()):
            self._release_all(fragment, "write", "crash")

    def _on_crash(self, event: dict[str, Any]) -> None:
        node = event.get("node")
        if node is None:
            return
        self.down.add(node)
        self._crash_at.setdefault(node, self.now)
        for agent, home in self.agent_home.items():
            if home == node:
                self._home_crashed(agent)
        self._reassess_all_reads()

    def _on_recover(self, event: dict[str, Any]) -> None:
        node = event.get("node")
        if node is None:
            return
        self.down.discard(node)
        self._crash_at.pop(node, None)
        for agent, home in self.agent_home.items():
            if home == node:
                self._home_restored(agent)
        self._reassess_all_reads()

    def _on_depart(self, event: dict[str, Any]) -> None:
        for fragment in event.get("fragments") or ():
            self._engage(fragment, "write", "transit")

    def _on_arrive(self, event: dict[str, Any]) -> None:
        agent = event.get("agent")
        dst = event.get("dst")
        if agent is not None and dst is not None:
            self.agent_home[agent] = dst
        for fragment in event.get("fragments") or ():
            self._release_all(fragment, "write", "transit")
        if agent is not None:
            # The move may have re-homed the agent off a crashed node
            # (failover) or onto one; re-derive the crash cause.
            if dst in self.down:
                self._home_crashed(agent)
            else:
                self._home_restored(agent)

    def _on_suspect(self, event: dict[str, Any]) -> None:
        agent = event.get("agent")
        if agent is not None:
            self._suspect_at.setdefault(agent, self.now)

    def _on_failover_begin(self, event: dict[str, Any]) -> None:
        agent = event.get("agent")
        fragments = event.get("fragments") or self.agent_fragments.get(
            agent, ()
        )
        for fragment in fragments:
            self._engage(fragment, "write", "failover")

    def _end_failover(self, agent: str | None) -> None:
        for fragment in self.agent_fragments.get(agent, ()):
            self._release_all(fragment, "write", "failover")

    def _on_failover_done(self, event: dict[str, Any]) -> None:
        agent = event.get("agent")
        failed_home = event.get("failed_home")
        self._end_failover(agent)
        crash_at = self._crash_at.get(failed_home)
        suspect_at = self._suspect_at.pop(agent, None)
        if crash_at is not None:
            self.incidents.append(
                {
                    "agent": agent,
                    "failed_home": failed_home,
                    "successor": event.get("successor"),
                    "crash_t": round(crash_at, 6),
                    "mttd": (
                        round(suspect_at - crash_at, 6)
                        if suspect_at is not None
                        else None
                    ),
                    "mttr": round(self.now - crash_at, 6),
                }
            )
        # The token-arrival at the successor (the shared movement path)
        # already re-homed the agent; nothing else to do for the
        # write-crash cause here.

    def _on_failover_abort(self, event: dict[str, Any]) -> None:
        self._end_failover(event.get("agent"))

    def _on_backpressure_engage(self, event: dict[str, Any]) -> None:
        fragment = event.get("fragment")
        if fragment is not None:
            self._engage(fragment, "write", "backpressure")

    def _on_backpressure_release(self, event: dict[str, Any]) -> None:
        fragment = event.get("fragment")
        if fragment is not None:
            self._release(fragment, "write", "backpressure")

    # -- read dimension ----------------------------------------------------

    def _on_cut(self, event: dict[str, Any]) -> None:
        label = str(event.get("label", ""))
        groups = [set(group) for group in event.get("groups") or ()]
        if groups:
            self._episodes.setdefault(label, []).append(groups)
        self._reassess_all_reads()

    def _on_heal(self, event: dict[str, Any]) -> None:
        label = str(event.get("label", ""))
        if label == "(now)":
            # heal_now releases every active claim at once.
            self._episodes.clear()
        else:
            stack = self._episodes.get(label)
            if stack:
                stack.pop()
                if not stack:
                    del self._episodes[label]
        self._reassess_all_reads()

    def _severed(self, a: str, b: str) -> bool:
        """True if any active episode separates ``a`` and ``b``."""
        for stacks in self._episodes.values():
            for groups in stacks:
                group_a = group_b = None
                for group in groups:
                    if a in group:
                        group_a = group
                    if b in group:
                        group_b = group
                if (
                    group_a is not None
                    and group_b is not None
                    and group_a is not group_b
                ):
                    return True
        return False

    def _read_quorum_state(self, fragment: str) -> tuple[bool, str | None]:
        """(available, cause-if-not) for the fragment's read quorum.

        Available iff some mutually connected set of live *countable*
        replicas reaches a majority of the countable set.  Greedy
        component construction over the live members is exact here:
        partition-induced connectivity is an equivalence relation per
        episode, and the intersection of equivalence relations is one.
        """
        replicas = self.replicas.get(fragment)
        if not replicas:
            return True, None  # full replication / unknown: not tracked
        syncing = self.syncing.get(fragment, set())
        countable = sorted(replicas - syncing) or sorted(replicas)
        quorum = len(countable) // 2 + 1
        if self._quorum_reachable(countable, quorum):
            return True, None
        # Attribute: would the quorum exist if syncing joiners counted?
        if syncing:
            widened = sorted(replicas)
            if self._quorum_reachable(widened, len(widened) // 2 + 1):
                return False, "reconfig"
        if self._episodes:
            live = [n for n in countable if n not in self.down]
            if len(live) >= quorum:
                return False, "partition"
        return False, "crash"

    def _quorum_reachable(self, members: list[str], quorum: int) -> bool:
        live = [n for n in members if n not in self.down]
        if len(live) < quorum:
            return False
        # Partition components over the live members.
        components: list[list[str]] = []
        for node in live:
            placed = False
            for component in components:
                if not self._severed(node, component[0]):
                    component.append(node)
                    placed = True
                    break
            if not placed:
                components.append([node])
        return any(len(c) >= quorum for c in components)

    _READ_CAUSES = ("crash", "partition", "reconfig")

    def _reassess_read(self, fragment: str) -> None:
        available, cause = self._read_quorum_state(fragment)
        state = self._state(fragment, "read")
        current = [c for c in self._READ_CAUSES if c in state.active]
        if available:
            for c in current:
                self._release_all(fragment, "read", c)
        else:
            for c in current:
                if c != cause:
                    self._release_all(fragment, "read", c)
            if cause not in state.active:
                self._engage(fragment, "read", cause)

    def _reassess_all_reads(self) -> None:
        for fragment in self.replicas:
            self._reassess_read(fragment)

    def _on_quorum_timeout(self, event: dict[str, Any]) -> None:
        for fragment in event.get("missing") or event.get("fragments") or ():
            self.quorum_timeouts[fragment] = (
                self.quorum_timeouts.get(fragment, 0) + 1
            )

    # -- summaries ---------------------------------------------------------

    def fragment_summary(
        self, fragment: str, dimension: str = "write"
    ) -> dict[str, Any]:
        """SLO summary of one fragment dimension (after :meth:`finish`)."""
        start = self.start_time or 0.0
        total = max(self.now - start, 0.0)
        windows = [
            w
            for w in self.windows
            if w.fragment == fragment and w.dimension == dimension
        ]
        unavailable = sum(w.duration(self.now) for w in windows)
        state = self._dims.get((fragment, dimension))
        per_cause = dict(
            sorted((state.cause_time if state else {}).items())
        )
        longest = max(
            (w.duration(self.now) for w in windows), default=0.0
        )
        return {
            "fragment": fragment,
            "dimension": dimension,
            "observed": round(total, 6),
            "unavailable": round(unavailable, 6),
            "availability": round(
                1.0 - (unavailable / total) if total else 1.0, 6
            ),
            "windows": len(windows),
            "longest_window": round(longest, 6),
            "by_cause": {c: round(t, 6) for c, t in per_cause.items()},
            "quorum_timeouts": self.quorum_timeouts.get(fragment, 0)
            if dimension == "read"
            else 0,
        }

    def summary(self) -> dict[str, Any]:
        """The full accountant report (after :meth:`finish`)."""
        fragments = sorted(self.fragment_agent) or sorted(
            {w.fragment for w in self.windows}
        )
        mttds = [
            i["mttd"] for i in self.incidents if i.get("mttd") is not None
        ]
        mttrs = [
            i["mttr"] for i in self.incidents if i.get("mttr") is not None
        ]
        return {
            "observed": round(max(self.now - (self.start_time or 0.0), 0.0), 6),
            "fragments": {
                fragment: {
                    dim: self.fragment_summary(fragment, dim)
                    for dim in DIMENSIONS
                }
                for fragment in fragments
            },
            "windows": [w.as_dict() for w in self.windows],
            "incidents": list(self.incidents),
            "mttd_mean": round(sum(mttds) / len(mttds), 6) if mttds else None,
            "mttr_mean": round(sum(mttrs) / len(mttrs), 6) if mttrs else None,
            "mttr_max": round(max(mttrs), 6) if mttrs else None,
        }

    def worst_window(self, dimension: str = "write") -> float:
        """Longest closed window across fragments (0.0 when none)."""
        return max(
            (
                w.duration(self.now)
                for w in self.windows
                if w.dimension == dimension
            ),
            default=0.0,
        )

    def availability(self, dimension: str = "write") -> float:
        """Mean per-fragment availability fraction for one dimension."""
        fragments = sorted(self.fragment_agent) or sorted(
            {w.fragment for w in self.windows}
        )
        if not fragments:
            return 1.0
        return sum(
            self.fragment_summary(f, dimension)["availability"]
            for f in fragments
        ) / len(fragments)


_HANDLERS = {
    taxonomy.SYSTEM_CATALOG: AvailabilityAccountant._on_catalog,
    taxonomy.SYSTEM_RECONFIG: AvailabilityAccountant._on_reconfig,
    taxonomy.RECONFIG_SYNCED: AvailabilityAccountant._on_synced,
    taxonomy.NODE_CRASH: AvailabilityAccountant._on_crash,
    taxonomy.NODE_RECOVER: AvailabilityAccountant._on_recover,
    taxonomy.TOKEN_MOVE_DEPART: AvailabilityAccountant._on_depart,
    taxonomy.TOKEN_MOVE_ARRIVE: AvailabilityAccountant._on_arrive,
    taxonomy.AVAIL_SUSPECT: AvailabilityAccountant._on_suspect,
    taxonomy.AVAIL_FAILOVER_BEGIN: AvailabilityAccountant._on_failover_begin,
    taxonomy.AVAIL_FAILOVER_DONE: AvailabilityAccountant._on_failover_done,
    taxonomy.AVAIL_FAILOVER_ABORT: AvailabilityAccountant._on_failover_abort,
    taxonomy.BACKPRESSURE_ENGAGE: AvailabilityAccountant._on_backpressure_engage,
    taxonomy.BACKPRESSURE_RELEASE: (
        AvailabilityAccountant._on_backpressure_release
    ),
    taxonomy.PARTITION_CUT: AvailabilityAccountant._on_cut,
    taxonomy.PARTITION_HEAL: AvailabilityAccountant._on_heal,
    taxonomy.QUORUM_READ_TIMEOUT: AvailabilityAccountant._on_quorum_timeout,
}


def account_events(
    events: Iterable[dict[str, Any]], end_time: float | None = None
) -> AvailabilityAccountant:
    """Run the accountant over event dicts in emission order."""
    accountant = AvailabilityAccountant()
    for event in events:
        accountant.feed(event)
    return accountant.finish(end_time)


def account_trace(path: str) -> dict[str, AvailabilityAccountant]:
    """Account a JSONL trace file, one accountant per ``run`` context."""
    grouped: dict[str, list[dict[str, Any]]] = {}
    for record in read_trace(path):
        grouped.setdefault(str(record.get("run", "")), []).append(record)
    return {
        run: account_events(events) for run, events in sorted(grouped.items())
    }
