"""Trace-file analysis: read a JSONL trace back into summaries.

The counterpart of :meth:`repro.obs.trace.Tracer.open_jsonl`: load the
records, tally event types (per run when a ``run`` context field is
present), and break ``message.*`` traffic down by kind — the numbers
the ``repro metrics`` CLI subcommand prints and the reconciliation
tests compare against :class:`~repro.net.network.Network` counters.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any


def read_trace(path: str) -> Iterator[dict[str, Any]]:
    """Yield each JSONL record as a dict (blank lines skipped)."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


@dataclass
class TraceSummary:
    """Aggregates over one JSONL trace file."""

    total: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    by_run: dict[str, dict[str, int]] = field(default_factory=dict)
    message_kinds: dict[str, int] = field(default_factory=dict)
    time_span: tuple[float, float] | None = None

    def count(self, event_type: str, run: str | None = None) -> int:
        """Events of ``event_type`` (within ``run`` when given)."""
        if run is None:
            return self.by_type.get(event_type, 0)
        return self.by_run.get(run, {}).get(event_type, 0)


def summarize_trace(path: str) -> TraceSummary:
    """Tally a JSONL trace file into a :class:`TraceSummary`."""
    by_type: Counter[str] = Counter()
    by_run: dict[str, Counter[str]] = {}
    kinds: Counter[str] = Counter()
    total = 0
    t_min: float | None = None
    t_max: float | None = None
    for record in read_trace(path):
        total += 1
        event_type = record.get("type", "?")
        by_type[event_type] += 1
        run = record.get("run")
        if run is not None:
            by_run.setdefault(str(run), Counter())[event_type] += 1
        if event_type.startswith("message.") and "kind" in record:
            kinds[f"{event_type}:{record['kind']}"] += 1
        t = record.get("t")
        if isinstance(t, (int, float)):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
    return TraceSummary(
        total=total,
        by_type=dict(sorted(by_type.items())),
        by_run={
            run: dict(sorted(tally.items()))
            for run, tally in sorted(by_run.items())
        },
        message_kinds=dict(sorted(kinds.items())),
        time_span=None if t_min is None else (t_min, t_max),
    )
