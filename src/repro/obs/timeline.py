"""Telemetry timelines: periodic, sim-time-driven metric sampling.

Every metric in the registry is cumulative — counters only grow,
histograms only accumulate — so nothing in the repo can say *when*
message traffic spiked or how commit latency drifted across a
partition.  The :class:`TimelineSampler` fixes that: driven by a
recurring simulator event (:meth:`~repro.sim.simulator.Simulator.
schedule_recurring`), it snapshots the registry every ``tick``
simulated ticks into bounded ring-buffer time series:

* **counters** — value plus the delta since the previous sample (the
  per-tick rate is ``delta / tick``);
* **gauges** — the polled value, kept only when numeric;
* **histograms** — count, mean, p50/p90/p99, max, plus the count delta.

Because sampling rides the simulator's own event queue, the records
are a pure function of simulated time: two runs of the same seed
produce bit-identical timelines, which the E21 bench asserts by
hashing the JSONL dump.  The sampler's horizon is bounded (like the
availability supervisor's probe chain) so ``quiesce()`` still drains.

``dump_jsonl``/``load_jsonl`` round-trip the series through the same
JSONL idiom as the tracer; the dashboard renders sparklines from
either a live sampler or a dump.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.simulator import Simulator

#: Default sampling interval in simulated ticks.
DEFAULT_TICK = 5.0

#: Default ring-buffer capacity per series (oldest samples fall off).
DEFAULT_RETENTION = 512

#: Histogram summary fields carried per sample, in record order.
_HIST_FIELDS = ("count", "mean", "p50", "p90", "p99", "max")


class TimelineSampler:
    """Samples a :class:`MetricsRegistry` into bounded time series.

    Parameters
    ----------
    registry:
        The registry to sample.  The sampler registers itself as
        ``registry.timeline`` so consumers (``repro metrics --watch``,
        the dashboard) can find it without extra plumbing.
    tick:
        Simulated ticks between samples.
    retention:
        Ring-buffer capacity per series; ``None`` keeps everything.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        tick: float = DEFAULT_TICK,
        retention: int | None = DEFAULT_RETENTION,
    ) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive (got {tick})")
        self.registry = registry
        self.tick = tick
        self.retention = retention
        self.samples_taken = 0
        # series key -> deque of sample tuples; see sample() for shapes.
        self._counters: dict[str, deque[tuple[float, int, int]]] = {}
        self._gauges: dict[str, deque[tuple[float, float]]] = {}
        self._histograms: dict[str, deque[tuple[Any, ...]]] = {}
        self._last_counter: dict[str, int] = {}
        self._last_hist_count: dict[str, int] = {}
        registry.timeline = self

    # -- driving ----------------------------------------------------------

    def start(self, sim: "Simulator", until: float) -> None:
        """Arm the recurring sampling event on ``sim`` up to ``until``.

        The chain is horizon-bounded so the simulator can still drain;
        the determinism contract holds because sampling is itself a
        scheduled event, ordered by ``(time, scheduling-order)`` like
        everything else.
        """
        sim.schedule_recurring(
            self.tick,
            lambda: self.sample(sim.now),
            until=until,
            label="timeline sample",
        )

    def sample(self, now: float) -> None:
        """Take one sample of every registered metric at time ``now``."""
        self.samples_taken += 1
        retention = self.retention
        last_counter = self._last_counter
        for name, counter in self.registry.counters_sorted():
            value = counter.value
            previous = last_counter.get(name, 0)
            series = self._counters.get(name)
            if series is None:
                series = self._counters[name] = deque(maxlen=retention)
            series.append((now, value, value - previous))
            last_counter[name] = value
        for name, gauge in self.registry.gauges_sorted():
            value = gauge.value
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            series = self._gauges.get(name)
            if series is None:
                series = self._gauges[name] = deque(maxlen=retention)
            series.append((now, float(value)))
        last_hist = self._last_hist_count
        for name, histogram in self.registry.histograms_sorted():
            summary = histogram.summary()
            previous = last_hist.get(name, 0)
            series = self._histograms.get(name)
            if series is None:
                series = self._histograms[name] = deque(maxlen=retention)
            series.append(
                (
                    now,
                    *(summary[field] for field in _HIST_FIELDS),
                    summary["count"] - previous,
                )
            )
            last_hist[name] = summary["count"]

    # -- queries ----------------------------------------------------------

    def series_names(self) -> dict[str, list[str]]:
        """Sampled series names by kind."""
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
        }

    def counter_series(self, name: str) -> list[tuple[float, int, int]]:
        """``(t, value, delta)`` samples for one counter."""
        return list(self._counters.get(name, ()))

    def gauge_series(self, name: str) -> list[tuple[float, float]]:
        """``(t, value)`` samples for one gauge."""
        return list(self._gauges.get(name, ()))

    def histogram_series(self, name: str) -> list[dict[str, Any]]:
        """Per-sample histogram summaries (dicts with ``t`` + fields)."""
        out = []
        for sample in self._histograms.get(name, ()):
            record = {"t": sample[0]}
            record.update(zip(_HIST_FIELDS, sample[1:-1]))
            record["count_delta"] = sample[-1]
            out.append(record)
        return out

    def rate_series(self, name: str) -> list[tuple[float, float]]:
        """``(t, per-tick-rate)`` derived from a counter's deltas."""
        return [
            (t, delta / self.tick)
            for t, _value, delta in self._counters.get(name, ())
        ]

    # -- JSONL round-trip --------------------------------------------------

    def records(self) -> Iterable[dict[str, Any]]:
        """Every sample as a flat dict, in (kind, name, time) order."""
        for name in sorted(self._counters):
            for t, value, delta in self._counters[name]:
                yield {
                    "kind": "counter",
                    "name": name,
                    "t": t,
                    "value": value,
                    "delta": delta,
                }
        for name in sorted(self._gauges):
            for t, value in self._gauges[name]:
                yield {"kind": "gauge", "name": name, "t": t, "value": value}
        for name in sorted(self._histograms):
            for record in self.histogram_series(name):
                yield {"kind": "histogram", "name": name, **record}

    def dump_jsonl(self, path: str) -> int:
        """Write every sample as JSON lines; returns the record count."""
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                written += 1
        return written


def load_jsonl(path: str) -> dict[str, dict[str, list[dict[str, Any]]]]:
    """Load a timeline dump back into ``{kind: {name: [records]}}``.

    The inverse of :meth:`TimelineSampler.dump_jsonl` for post-hoc
    consumers (the dashboard's ``--html`` mode); records keep their
    flat-dict shape.
    """
    out: dict[str, dict[str, list[dict[str, Any]]]] = {
        "counter": {},
        "gauge": {},
        "histogram": {},
    }
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            name = record.get("name")
            if kind in out and name is not None:
                out[kind].setdefault(name, []).append(record)
    return out
