"""The trace-event taxonomy: every typed event the library emits.

One module-level constant per event type keeps emit sites, tests, and
the documentation (``docs/observability.md``) in agreement.  Event
types are dotted names grouped by subsystem; consumers filter with
simple prefix matching (``tracer.counts("message.")``).
"""

from __future__ import annotations

# -- network (repro.net.network) --------------------------------------
MESSAGE_SEND = "message.send"  # every Network.send, held or not
MESSAGE_DELIVER = "message.deliver"  # handler actually invoked
MESSAGE_HOLD = "message.hold"  # held at send, or re-held in flight
MESSAGE_RELEASE = "message.release"  # released by a topology change

# -- fault injection (repro.net.faults) -------------------------------
FAULT_DROP = "fault.drop"  # injected message loss
FAULT_DUPLICATE = "fault.duplicate"  # injected duplicate delivery
FAULT_FLAP_DOWN = "fault.flap.down"  # transient link flap: link cut
FAULT_FLAP_UP = "fault.flap.up"  # transient link flap: link revived
FAULT_CRASH_SKIPPED = "fault.crash.skipped"  # crash episode vetoed

# -- reliable delivery (repro.net.reliable) ---------------------------
RETRANS_SEND = "retrans.send"  # retransmission of an unacked packet
RETRANS_ACK = "retrans.ack"  # ack processed at the sender
RETRANS_DUPLICATE = "retrans.duplicate"  # receiver-side dedup drop
RETRANS_BUFFER = "retrans.buffer"  # out-of-order packet buffered
RETRANS_EXHAUSTED = "retrans.exhausted"  # retry budget spent, gave up

# -- reliable broadcast (repro.net.broadcast) -------------------------
BROADCAST_BUFFER = "broadcast.buffer"  # out-of-order, first sighting
BROADCAST_DRAIN = "broadcast.drain"  # buffered payload delivered
BROADCAST_DUPLICATE = "broadcast.duplicate"  # replay/held-original dup

# -- transactions (repro.core.system) ---------------------------------
TXN_SUBMIT = "txn.submit"
TXN_COMMIT = "txn.commit"
TXN_REJECT = "txn.reject"
TXN_ABORT = "txn.abort"
TXN_TIMEOUT = "txn.timeout"

# -- causal lineage spans (repro.obs.lineage; see docs/observability.md).
# A span covers one update transaction from initiation to its terminal
# status; the lineage.* events stamp the same causal identity on every
# stage of the propagation path so the offline auditor
# (repro.analysis.audit) can rebuild the happens-before graph.
SPAN_BEGIN = "span.begin"  # update accepted: the span opens
SPAN_END = "span.end"  # tracker terminal: the span closes
LINEAGE_COMMIT = "lineage.commit"  # versions minted at the agent's node
LINEAGE_SEND = "lineage.send"  # batch handed to the broadcast
LINEAGE_DELIVER = "lineage.deliver"  # batch unpacked at one receiver
LINEAGE_BUFFER = "lineage.buffer"  # admission parked an out-of-order qt
LINEAGE_ENQUEUE = "lineage.enqueue"  # qt entered the apply queue
SYSTEM_CATALOG = "system.catalog"  # fragment map for offline audits

# -- quasi-transaction installs (repro.replication.apply) -------------
QT_INSTALL = "qt.install"  # remote quasi-transaction installed

# -- replication pipeline (repro.replication) -------------------------
# Batch-flush events only fire when batching is configured, so the
# default (unbatched) wire traces stay byte-identical to the seed.
QT_BATCH_FLUSH = "replication.batch.flush"  # QtBatch sealed + broadcast
BACKPRESSURE_ENGAGE = "replication.backpressure.engage"  # queue over bound
BACKPRESSURE_RELEASE = "replication.backpressure.release"  # queue drained
BACKPRESSURE_THROTTLE = "replication.backpressure.throttle"  # submit deferred
BACKPRESSURE_RESUME = "replication.backpressure.resume"  # deferred re-gated

# -- quorum reads (repro.replication.quorum) --------------------------
# Reads of fragments the submitting node does not replicate: a version
# vote over the fragment's replica set, resolved at read-quorum size.
QUORUM_READ_BEGIN = "quorum.read.begin"  # fan-out to the replica set
QUORUM_READ_REPLY = "quorum.read.reply"  # one replica's version vote
QUORUM_READ_RESOLVE = "quorum.read.resolve"  # quorum reached, versions chosen
QUORUM_READ_TIMEOUT = "quorum.read.timeout"  # quorum not reached in time
QUORUM_READ_RETRY = "quorum.read.retry"  # lost quorum mid-flight, re-fanned

# -- agent movement (repro.core.movement) -----------------------------
TOKEN_MOVE_REQUESTED = "token.move.requested"
TOKEN_MOVE_DEPART = "token.move.depart"
TOKEN_MOVE_ARRIVE = "token.move.arrive"

# -- node failure model (repro.core.system) ---------------------------
NODE_CRASH = "node.crash"
NODE_RECOVER = "node.recover"

# -- checkpoint & catch-up subsystem (repro.recovery) ------------------
RECOVERY_CHECKPOINT = "recovery.checkpoint"  # fragment checkpoint taken
RECOVERY_PRUNE = "recovery.prune"  # archive pruned behind watermark
RECOVERY_WAL_TRUNCATE = "recovery.wal.truncate"  # WAL prefix dropped
RECOVERY_CATCHUP_REQUEST = "recovery.catchup.request"  # cursors to donor
RECOVERY_CATCHUP_DELTA = "recovery.catchup.delta"  # seq range shipped
RECOVERY_CATCHUP_SNAPSHOT = "recovery.catchup.snapshot"  # ckpt shipped
RECOVERY_CATCHUP_DONE = "recovery.catchup.done"  # rejoiner fully served

# -- availability supervisor (repro.availability) ----------------------
# Heartbeat failure detection, automatic agent failover, epoch cuts,
# demotion of stale ex-homes, and online replica-set reconfiguration.
AVAIL_SUSPECT = "avail.suspect"  # heartbeat misses crossed the threshold
AVAIL_FAILOVER_BEGIN = "avail.failover.begin"  # succession poll started
AVAIL_FAILOVER_DONE = "avail.failover.done"  # successor holds the token
AVAIL_FAILOVER_ABORT = "avail.failover.abort"  # no quorum / raced a move
AVAIL_EPOCH_CUT = "avail.epoch.cut"  # successor opened a new epoch
AVAIL_DEMOTE = "avail.demote"  # stale ex-home discarded its suffix
SYSTEM_RECONFIG = "system.reconfig"  # epoch-stamped replica-set change
RECONFIG_SYNCED = "system.reconfig.synced"  # joiner caught up, counts now

# -- partitions (repro.net.partition) ---------------------------------
PARTITION_CUT = "partition.cut"
PARTITION_HEAL = "partition.heal"

# -- warnings ---------------------------------------------------------
WARN_MULTI_FRAGMENT_AGENT = "warn.multi_fragment_agent"

# -- simulator (repro.sim.simulator); excluded by default, see Tracer --
SIM_FIRE = "sim.fire"

ALL_EVENT_TYPES = tuple(
    value
    for name, value in sorted(globals().items())
    if name.isupper() and isinstance(value, str)
)

#: Event types a fresh :class:`~repro.obs.trace.Tracer` suppresses.
#: ``sim.fire`` is one event per simulator callback — megabytes per
#: run — so it is opt-in (``tracer.exclude.discard(SIM_FIRE)``).
DEFAULT_EXCLUDE = frozenset({SIM_FIRE})
