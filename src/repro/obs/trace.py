"""Structured tracing: typed events with simulation timestamps.

A :class:`Tracer` collects :class:`TraceEvent` records into a bounded
ring buffer and, optionally, streams them to a JSONL sink.  It starts
*disabled*; every emit site guards with ``tracer.enabled`` (or relies
on :meth:`Tracer.emit` returning immediately), so a quiescent tracer
costs one attribute check per event site and allocates nothing.

Event types are dotted names from :mod:`repro.obs.taxonomy`; fields are
free-form keyword arguments (keep them JSON-serializable — the sink
falls back to ``str()`` otherwise).
"""

from __future__ import annotations

import atexit
import json
import threading
import weakref
from collections import Counter as _TallyCounter
from collections import deque
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any, TextIO

from repro.obs.taxonomy import DEFAULT_EXCLUDE

DEFAULT_RING_SIZE = 65536

#: Tracers with an open JSONL sink, flushed at interpreter exit so an
#: abnormal termination (uncaught exception, SystemExit mid-run) keeps
#: the trace tail instead of losing up to ``flush_every - 1`` records
#: still sitting in Python's file buffer.  Weak references: the hook
#: must not keep dead tracers (or their file handles) alive, and a
#: tracer garbage-collected with its sink open is closed by the file
#: object's own finalizer anyway.
_OPEN_SINKS: "weakref.WeakSet[Tracer]" = weakref.WeakSet()


@atexit.register
def _flush_open_sinks() -> None:
    """Flush every tracer that still has a sink open at exit."""
    for tracer in list(_OPEN_SINKS):
        try:
            tracer.flush()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass  # a sink already closed out from under us

#: Sink writes between automatic flushes.  Python buffers file writes,
#: so a run that dies mid-simulation would otherwise lose the tail of
#: its JSONL trace — exactly the part a CI failure upload needs.
DEFAULT_FLUSH_EVERY = 256


@dataclass(slots=True)
class TraceEvent:
    """One structured trace record.

    Slotted: enabled-tracer runs allocate one of these per recorded
    event, and the ring buffer can hold tens of thousands."""

    time: float
    type: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form (``t``/``type`` plus the event fields)."""
        return {"t": self.time, "type": self.type, **self.fields}


class Tracer:
    """Typed event collector with a ring buffer and optional JSONL sink.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulation) time;
        installed by the owning system (``lambda: sim.now``).  Defaults
        to a constant 0.0 clock so a bare tracer still works in tests.
    enabled:
        Start enabled.  Disabled tracers drop events without recording.
    ring_size:
        Ring-buffer capacity; oldest events fall off first.
    exclude:
        Event types to suppress even while enabled.  Defaults to
        :data:`~repro.obs.taxonomy.DEFAULT_EXCLUDE` (the per-callback
        ``sim.fire`` firehose).
    flush_every:
        Flush the JSONL sink after this many writes (0 disables
        periodic flushing; :meth:`close` always flushes).
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = False,
        ring_size: int = DEFAULT_RING_SIZE,
        exclude: frozenset[str] | set[str] | tuple[str, ...] | None = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.exclude: set[str] = set(
            DEFAULT_EXCLUDE if exclude is None else exclude
        )
        self._ring: deque[TraceEvent] = deque(maxlen=ring_size)
        self._sink: TextIO | None = None
        self._sink_context: dict[str, Any] = {}
        self.emitted = 0  # events recorded (post-filter), lifetime
        self.flush_every = flush_every
        self._unflushed = 0  # sink writes since the last flush
        # Emission and sink lifecycle are guarded: the asyncio backend
        # emits from its loop thread while HTTP front-door threads read
        # the ring and SSE watchers poll ``emitted`` — without the lock
        # two writers could interleave halves of JSONL lines.  The
        # simulator path pays one uncontended RLock acquire per
        # *recorded* event (the disabled-tracer early return stays
        # lock-free), which does not register next to the json.dumps
        # already on that path.
        self._lock = threading.RLock()

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        """Start recording events."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording events (the ring buffer is kept)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all buffered events."""
        with self._lock:
            self._ring.clear()

    # -- emission --------------------------------------------------------

    def emit(self, type: str, **fields: Any) -> None:
        """Record one event (no-op while disabled or excluded).

        Thread-safe: ring append, sequence count, and the sink write
        happen under one lock, so concurrent emitters (the asyncio
        backend's loop thread plus any instrumented worker) can never
        interleave partial JSONL lines.
        """
        if not self.enabled or type in self.exclude:
            return
        time = self.clock() if self.clock is not None else 0.0
        event = TraceEvent(time, type, fields)
        with self._lock:
            self._ring.append(event)
            self.emitted += 1
            if self._sink is not None:
                record = {
                    "t": time, "type": type, **self._sink_context, **fields
                }
                self._sink.write(json.dumps(record, default=str) + "\n")
                self._unflushed += 1
                if self.flush_every and self._unflushed >= self.flush_every:
                    self.flush()

    # -- JSONL sink ------------------------------------------------------

    def open_jsonl(
        self,
        path: str,
        append: bool = False,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        """Stream subsequent events to ``path`` as JSON lines.

        ``context`` key/values are merged into every record (e.g.
        ``{"run": "fa-unrestricted"}`` to distinguish multiple runs
        appended to one file).  Re-opening closes the previous sink.
        """
        self.close()
        with self._lock:
            self._sink = open(path, "a" if append else "w", encoding="utf-8")
            self._sink_context = dict(context or {})
            self._unflushed = 0
        _OPEN_SINKS.add(self)

    def flush(self) -> None:
        """Push buffered sink writes to disk, if a sink is open."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._unflushed = 0

    def close(self) -> None:
        """Flush and close the JSONL sink, if open."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
                self._sink_context = {}
                self._unflushed = 0
        _OPEN_SINKS.discard(self)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- queries ---------------------------------------------------------

    def events(self, prefix: str | None = None) -> list[TraceEvent]:
        """Buffered events, optionally filtered by type prefix.

        Snapshots the ring under the emission lock, so a reader thread
        (the live dashboard) never races a concurrent append.
        """
        with self._lock:
            ring = list(self._ring)
        if prefix is None:
            return ring
        return [event for event in ring if event.type.startswith(prefix)]

    def counts(self, prefix: str | None = None) -> dict[str, int]:
        """Buffered event tallies by type, optionally prefix-filtered."""
        tally: _TallyCounter[str] = _TallyCounter()
        for event in self.events():
            if prefix is None or event.type.startswith(prefix):
                tally[event.type] += 1
        return dict(sorted(tally.items()))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, buffered={len(self._ring)})"
