"""The metrics registry: counters, gauges, and timing histograms.

One :class:`MetricsRegistry` per :class:`~repro.core.system.FragmentedDatabase`
is shared by every layer (network, broadcast, partitions, nodes,
movement).  Hot paths hold on to their :class:`Counter` objects at
wiring time, so an increment is one attribute add — cheap enough to
stay on even when tracing is off.

``snapshot()`` is the experiment-facing view: a plain nested dict of
counter values, polled gauge values, and histogram percentile
summaries, suitable for table rendering or JSON serialization.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from typing import Any

#: Samples kept verbatim per histogram before reservoir sampling kicks
#: in.  Small runs (everything in the test suite) stay exact; E18-scale
#: runs hold a bounded, statistically representative subset.
RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically increasing counter.

    ``_lock`` is None on the (single-threaded) simulator backend —
    an increment stays one attribute add.  The asyncio backend calls
    :meth:`MetricsRegistry.enable_thread_safety`, which installs one
    shared lock on every counter so concurrent bumps from the loop
    thread and HTTP worker threads cannot lose increments.  The lock
    is installed by *mutating* existing objects because hot paths cache
    their Counter references at wiring time.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Any = None) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        lock = self._lock
        if lock is None:
            self.value += n
        else:
            with lock:
                self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value, read through a callable at snapshot time."""

    __slots__ = ("name", "read")

    def __init__(self, name: str, read: Callable[[], Any]) -> None:
        self.name = name
        self.read = read

    @property
    def value(self) -> Any:
        """The current value (polls the callable)."""
        return self.read()

    def __repr__(self) -> str:
        return f"Gauge({self.name})"


class Histogram:
    """A value distribution with percentile summaries, bounded in memory.

    The first :data:`RESERVOIR_SIZE` samples are kept verbatim, so
    small runs (and every percentile assertion in the test suite) are
    exact.  Beyond that the sample list becomes an Algorithm-R
    reservoir: each further sample replaces a random held one with
    probability ``k/n``, keeping a uniform subset regardless of stream
    length — always-on per-install latency histograms no longer hold
    millions of floats at E18 scale.  The replacement RNG is seeded
    from the histogram name, so runs stay reproducible.

    ``count``/``mean``/``min``/``max`` are exact over the full stream
    (tracked incrementally); percentiles are exact until the reservoir
    engages and estimates from the sample after.

    The sorted view percentiles need is cached and invalidated on
    ``observe``, so repeated ``percentile``/``summary`` calls between
    observations sort at most once — these sit on the per-install
    latency hot path.
    """

    __slots__ = (
        "name",
        "values",
        "_sorted",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
        "_lock",
    )

    def __init__(self, name: str, lock: Any = None) -> None:
        self.name = name
        self.values: list[float] = []
        self._sorted: list[float] | None = None
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._rng: random.Random | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one sample (invalidates the cached sorted view).

        With a registry-installed lock (asyncio backend), the whole
        update — moments, reservoir, cache invalidation — is atomic.
        """
        lock = self._lock
        if lock is not None:
            with lock:
                self._observe(value)
        else:
            self._observe(value)

    def _observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self._count <= RESERVOIR_SIZE:
            self.values.append(value)
        else:
            rng = self._rng
            if rng is None:
                rng = self._rng = random.Random(self.name)
            # random() * n instead of randrange(n): one float draw, no
            # rejection loop — the tiny modulo bias is irrelevant for a
            # sampling reservoir and this runs once per observation.
            slot = int(rng.random() * self._count)
            if slot < RESERVOIR_SIZE:
                self.values[slot] = value
            else:
                return  # sample dropped: cached sorted view still valid
        self._sorted = None

    @property
    def count(self) -> int:
        """Number of recorded samples (the true total, not the held subset)."""
        return self._count

    def _ordered(self) -> list[float]:
        lock = self._lock
        if lock is not None:
            with lock:
                if self._sorted is None:
                    self._sorted = sorted(self.values)
                return self._sorted
        if self._sorted is None:
            self._sorted = sorted(self.values)
        return self._sorted

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile, ``p`` in [0, 100]; None when empty.

        Exact until the stream exceeds :data:`RESERVOIR_SIZE`, then
        estimated from the reservoir.
        """
        if not self.values:
            return None
        ordered = self._ordered()
        n = len(ordered)
        return ordered[min(n - 1, max(0, round(p / 100.0 * n) - 1))]

    def summary(self) -> dict[str, float | int | None]:
        """count / mean / min / p50 / p90 / p99 / max (count and the
        moments exact; percentiles reservoir-estimated at scale)."""
        if not self._count:
            return {
                "count": 0,
                "mean": None,
                "min": None,
                "p50": None,
                "p90": None,
                "p99": None,
                "max": None,
            }
        ordered = self._ordered()
        n = len(ordered)

        def rank(p: float) -> float:
            return ordered[min(n - 1, max(0, round(p / 100.0 * n) - 1))]

        return {
            "count": self._count,
            "mean": self._sum / self._count,
            "min": self._min,
            "p50": rank(50),
            "p90": rank(90),
            "p99": rank(99),
            "max": self._max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """A named registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: The attached :class:`~repro.obs.timeline.TimelineSampler`,
        #: if one registered itself (see that module).
        self.timeline: Any = None
        # Name-sorted views, rebuilt lazily after a registration.  The
        # timeline sampler calls snapshot() every tick, so the sorts
        # (and their list allocations) are hoisted out of the per-call
        # path — registration is rare, sampling is not.
        self._sorted_counters: list[tuple[str, Counter]] | None = None
        self._sorted_gauges: list[tuple[str, Gauge]] | None = None
        self._sorted_histograms: list[tuple[str, Histogram]] | None = None
        # Shared instrument lock, installed by enable_thread_safety().
        # None on the simulator backend: registration and increments
        # stay lock-free on the single protocol thread.
        self._lock: Any = None

    def enable_thread_safety(self) -> None:
        """Make every instrument (existing and future) lock-guarded.

        Called once by the asyncio backend before any concurrent use.
        Mutates the already-registered counters/histograms in place —
        hot paths cache instrument references at wiring time, so a
        class- or registry-level swap would miss them.  Idempotent.
        """
        if self._lock is not None:
            return
        import threading

        self._lock = threading.RLock()
        for counter in self._counters.values():
            counter._lock = self._lock
        for histogram in self._histograms.values():
            histogram._lock = self._lock

    @property
    def thread_safe(self) -> bool:
        """True once :meth:`enable_thread_safety` has run."""
        return self._lock is not None

    # -- registration (get-or-create) ----------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    counter = self._counters.get(name)
                    if counter is None:
                        counter = self._counters[name] = Counter(name, lock)
                        self._sorted_counters = None
            else:
                counter = self._counters[name] = Counter(name)
                self._sorted_counters = None
        return counter

    def gauge(self, name: str, read: Callable[[], Any]) -> Gauge:
        """Register (or replace) a polled gauge."""
        gauge = Gauge(name, read)
        lock = self._lock
        if lock is not None:
            with lock:
                self._gauges[name] = gauge
                self._sorted_gauges = None
        else:
            self._gauges[name] = gauge
            self._sorted_gauges = None
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            lock = self._lock
            if lock is not None:
                with lock:
                    histogram = self._histograms.get(name)
                    if histogram is None:
                        histogram = self._histograms[name] = Histogram(
                            name, lock
                        )
                        self._sorted_histograms = None
            else:
                histogram = self._histograms[name] = Histogram(name)
                self._sorted_histograms = None
        return histogram

    # -- sorted views (cached) -------------------------------------------

    def _build_sorted(self, which: str) -> Any:
        if which == "counters" and self._sorted_counters is None:
            self._sorted_counters = sorted(self._counters.items())
        elif which == "gauges" and self._sorted_gauges is None:
            self._sorted_gauges = sorted(self._gauges.items())
        elif which == "histograms" and self._sorted_histograms is None:
            self._sorted_histograms = sorted(self._histograms.items())

    def _sorted_view(self, which: str) -> Any:
        # Rebuild under the shared lock when thread safety is on so a
        # concurrent registration cannot mutate the dict mid-sort; the
        # returned list object is immutable-by-convention either way.
        lock = self._lock
        if lock is not None:
            with lock:
                self._build_sorted(which)
                return getattr(self, f"_sorted_{which}")
        self._build_sorted(which)
        return getattr(self, f"_sorted_{which}")

    def counters_sorted(self) -> list[tuple[str, Counter]]:
        """Name-sorted ``(name, counter)`` pairs; cached between registrations."""
        return self._sorted_view("counters")

    def gauges_sorted(self) -> list[tuple[str, Gauge]]:
        """Name-sorted ``(name, gauge)`` pairs; cached between registrations."""
        return self._sorted_view("gauges")

    def histograms_sorted(self) -> list[tuple[str, Histogram]]:
        """Name-sorted ``(name, histogram)`` pairs; cached between registrations."""
        return self._sorted_view("histograms")

    # -- convenience ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment a counter by name (hot paths should cache instead)."""
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample by name."""
        self.histogram(name).observe(value)

    def value(self, name: str) -> Any:
        """Current value of the metric called ``name``.

        Counters and gauges return their scalar value; histograms
        return their :meth:`Histogram.summary` dict, so ``value()``
        covers all three metric kinds.  Unknown names still raise
        :class:`KeyError`.
        """
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return self._histograms[name].summary()
        raise KeyError(name)

    # -- views -----------------------------------------------------------

    @property
    def counters(self) -> Mapping[str, Counter]:
        """All registered counters."""
        return dict(self._counters)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A plain-dict view of everything, suitable for experiments.

        ``{"counters": {name: int}, "gauges": {name: value},
        "histograms": {name: summary-dict}}``, each sorted by name.
        """
        return {
            "counters": {
                name: counter.value
                for name, counter in self.counters_sorted()
            },
            "gauges": {
                name: gauge.value for name, gauge in self.gauges_sorted()
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms_sorted()
            },
        }

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counter values whose names start with ``prefix``."""
        return {
            name: counter.value
            for name, counter in self.counters_sorted()
            if name.startswith(prefix)
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
