"""The observability dashboard: sparklines, heatmap, span timelines.

Everything the observability layer produces — the tracer's JSONL
events, the :class:`~repro.obs.timeline.TimelineSampler`'s metric
series, the :class:`~repro.obs.availability.AvailabilityAccountant`'s
windows — renders into **one self-contained HTML file** with inline
SVG, no external assets, no third-party libraries:

* **sparklines** — per-tick counter rates (and gauge values) from a
  timeline dump; without one, per-bucket event rates derived from the
  trace itself;
* **availability heatmap** — fragment × time buckets, each cell shaded
  by the fraction of the bucket the fragment was write-unavailable
  (sequential single-hue ramp: light means available, dark means a
  full-bucket outage), hover names the causes;
* **span timeline** — the first few hundred lineage spans
  (``span.begin``/``span.end``) as horizontal bars, colored by
  terminal status;
* the accountant's SLO summary table per run.

``repro dashboard --html`` writes the file; ``repro dashboard
--serve`` wraps the same renderer in a stdlib :mod:`http.server` with
a server-sent-events endpoint that pings when the trace file grows, so
a browser tab tracks a running experiment live (the page re-renders
from the current file contents on every ping).
"""

from __future__ import annotations

import html as _html
import json
from typing import Any

from repro.obs import taxonomy
from repro.obs.availability import AvailabilityAccountant, account_events
from repro.obs.summary import read_trace

#: Time buckets across the heatmap / derived-rate x-axis.
HEATMAP_BUCKETS = 60

#: Sparklines rendered (top counters by final value, plus gauges).
MAX_SPARKLINES = 24

#: Lineage spans drawn on the timeline (earliest first).
MAX_SPANS = 200

#: Sequential blue ramp, light -> dark (palette steps 100..700): cell
#: shade encodes unavailable fraction of the bucket.
_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_STATUS_COLOR = {
    "committed": "var(--status-good)",
    "aborted": "var(--status-critical)",
    "timed_out": "var(--status-serious)",
    "rejected": "var(--status-warning)",
}


# -- data assembly ---------------------------------------------------------


def build_dashboard_data(
    events: list[dict[str, Any]],
    timeline_records: dict[str, dict[str, list[dict[str, Any]]]] | None = None,
) -> dict[str, Any]:
    """Assemble the render-ready dashboard payload from raw records.

    ``events`` is a materialized trace (dict records in file order,
    possibly spanning several ``run`` contexts); ``timeline_records``
    is the shape :func:`repro.obs.timeline.load_jsonl` returns.
    """
    runs: dict[str, list[dict[str, Any]]] = {}
    for event in events:
        runs.setdefault(str(event.get("run", "")), []).append(event)
    times = [
        e["t"] for e in events if isinstance(e.get("t"), (int, float))
    ]
    t_min = min(times, default=0.0)
    t_max = max(times, default=0.0)
    accountants = {
        run: account_events(run_events)
        for run, run_events in sorted(runs.items())
    }
    return {
        "meta": {
            "events": len(events),
            "runs": sorted(runs),
            "t_min": t_min,
            "t_max": t_max,
        },
        "series": _build_series(events, timeline_records, t_min, t_max),
        "heatmap": _build_heatmap(accountants, t_min, t_max),
        "spans": _build_spans(events),
        "availability": {
            run: accountant.summary()
            for run, accountant in accountants.items()
        },
    }


def _build_series(
    events: list[dict[str, Any]],
    timeline_records: dict[str, dict[str, list[dict[str, Any]]]] | None,
    t_min: float,
    t_max: float,
) -> list[dict[str, Any]]:
    """Sparkline series: timeline dump when given, event rates otherwise."""
    series: list[dict[str, Any]] = []
    if timeline_records:
        counters = timeline_records.get("counter", {})
        ranked = sorted(
            counters.items(),
            key=lambda item: (-(item[1][-1].get("value") or 0), item[0]),
        )
        for name, records in ranked[:MAX_SPARKLINES]:
            series.append(
                {
                    "name": name,
                    "kind": "counter-rate",
                    "points": [
                        [r["t"], r.get("delta", 0)] for r in records
                    ],
                }
            )
        remaining = MAX_SPARKLINES - len(series)
        for name, records in sorted(
            timeline_records.get("gauge", {}).items()
        )[: max(remaining, 0)]:
            series.append(
                {
                    "name": name,
                    "kind": "gauge",
                    "points": [
                        [r["t"], r.get("value", 0)] for r in records
                    ],
                }
            )
        return series
    # No timeline dump: derive per-bucket event rates per type family.
    span = max(t_max - t_min, 1e-9)
    width = span / HEATMAP_BUCKETS
    families: dict[str, list[int]] = {}
    for event in events:
        t = event.get("t")
        etype = event.get("type")
        if not isinstance(t, (int, float)) or not isinstance(etype, str):
            continue
        family = etype.split(".", 1)[0]
        buckets = families.setdefault(family, [0] * HEATMAP_BUCKETS)
        index = min(int((t - t_min) / width), HEATMAP_BUCKETS - 1)
        buckets[index] += 1
    ranked_families = sorted(
        families.items(), key=lambda item: (-sum(item[1]), item[0])
    )
    for family, buckets in ranked_families[:MAX_SPARKLINES]:
        series.append(
            {
                "name": f"events: {family}.*",
                "kind": "event-rate",
                "points": [
                    [t_min + (i + 0.5) * width, count]
                    for i, count in enumerate(buckets)
                ],
            }
        )
    return series


def _build_heatmap(
    accountants: dict[str, AvailabilityAccountant],
    t_min: float,
    t_max: float,
) -> dict[str, Any]:
    """Fragment x time-bucket write-unavailability fractions."""
    span = max(t_max - t_min, 1e-9)
    width = span / HEATMAP_BUCKETS
    multi = len(accountants) > 1
    rows = []
    for run, accountant in accountants.items():
        fragments = sorted(accountant.fragment_agent) or sorted(
            {w.fragment for w in accountant.windows}
        )
        for fragment in fragments:
            cells = [0.0] * HEATMAP_BUCKETS
            causes: list[set[str]] = [set() for _ in range(HEATMAP_BUCKETS)]
            for window in accountant.windows:
                if window.fragment != fragment:
                    continue
                if window.dimension != "write":
                    continue
                end = window.end if window.end is not None else t_max
                first = max(int((window.start - t_min) / width), 0)
                last = min(
                    int((end - t_min) / width), HEATMAP_BUCKETS - 1
                )
                for index in range(first, last + 1):
                    lo = t_min + index * width
                    hi = lo + width
                    overlap = min(end, hi) - max(window.start, lo)
                    if overlap > 0:
                        cells[index] = min(
                            cells[index] + overlap / width, 1.0
                        )
                        causes[index].update(window.causes)
            rows.append(
                {
                    "label": f"{fragment} ({run})" if multi else fragment,
                    "cells": [round(c, 4) for c in cells],
                    "causes": [sorted(c) for c in causes],
                }
            )
    return {
        "t_min": t_min,
        "t_max": t_max,
        "buckets": HEATMAP_BUCKETS,
        "rows": rows,
    }


def _build_spans(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Pair span.begin / span.end into drawable lineage bars."""
    open_spans: dict[str, dict[str, Any]] = {}
    spans: list[dict[str, Any]] = []
    for event in events:
        etype = event.get("type")
        txn = event.get("txn")
        if txn is None:
            continue
        if etype == taxonomy.SPAN_BEGIN:
            open_spans[str(txn)] = {
                "txn": str(txn),
                "agent": event.get("agent"),
                "start": event.get("t", 0.0),
            }
        elif etype == taxonomy.SPAN_END:
            span = open_spans.pop(str(txn), None)
            if span is None:
                continue
            span["end"] = event.get("t", span["start"])
            span["status"] = str(event.get("status", "")).lower()
            spans.append(span)
            if len(spans) >= MAX_SPANS:
                break
    return spans


# -- HTML rendering --------------------------------------------------------

_CSS = """\
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --border: rgba(255,255,255,0.10);
}
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 24px 0 8px; }
.viz-root .meta { color: var(--text-secondary); font-size: 12px; }
.viz-root .grid {
  display: grid;
  grid-template-columns: repeat(auto-fill, minmax(220px, 1fr));
  gap: 12px;
}
.viz-root .card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 6px;
  padding: 10px 12px;
}
.viz-root .card .name {
  font-size: 11px;
  color: var(--text-secondary);
  overflow: hidden;
  text-overflow: ellipsis;
  white-space: nowrap;
}
.viz-root .card .last {
  font-size: 16px;
  color: var(--text-primary);
}
.viz-root svg { display: block; }
.viz-root table {
  border-collapse: collapse;
  font-size: 12px;
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 6px;
}
.viz-root th, .viz-root td {
  padding: 4px 10px;
  text-align: right;
  border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
.viz-root th:first-child, .viz-root td:first-child { text-align: left; }
.viz-root th {
  color: var(--text-secondary);
  font-weight: 500;
  text-align: right;
}
.viz-root .axis-label { font-size: 10px; fill: var(--text-muted); }
"""


def _spark_svg(points: list[list[float]], width: int = 200,
               height: int = 36) -> str:
    """One 2px sparkline polyline over an invisible plot box."""
    if not points:
        return f'<svg width="{width}" height="{height}"></svg>'
    xs = [p[0] for p in points]
    ys = [float(p[1] or 0) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys + [0.0]), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    pad = 2
    coords = " ".join(
        f"{pad + (x - x_lo) / x_span * (width - 2 * pad):.1f},"
        f"{height - pad - (y - y_lo) / y_span * (height - 2 * pad):.1f}"
        for x, y in zip(xs, ys)
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="var(--baseline)" stroke-width="1"/>'
        f'<polyline points="{coords}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
        "</svg>"
    )


def _heatmap_svg(heatmap: dict[str, Any]) -> str:
    """Fragment x time cells, sequential blue: darker = more unavailable."""
    rows = heatmap["rows"]
    if not rows:
        return '<p class="meta">no fragments to plot</p>'
    buckets = heatmap["buckets"]
    cell_w, cell_h, gap, label_w = 14, 18, 2, 110
    width = label_w + buckets * (cell_w + gap)
    height = len(rows) * (cell_h + gap) + 16
    t_min, t_max = heatmap["t_min"], heatmap["t_max"]
    parts = [f'<svg width="{width}" height="{height}" role="img">']
    for r, row in enumerate(rows):
        y = r * (cell_h + gap)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + cell_h / 2 + 3}" '
            f'text-anchor="end" class="axis-label">'
            f"{_html.escape(str(row['label']))}</text>"
        )
        for c, value in enumerate(row["cells"]):
            shade = _RAMP[min(int(value * (len(_RAMP) - 1) + 0.5),
                              len(_RAMP) - 1)]
            causes = row["causes"][c]
            lo = t_min + c / buckets * (t_max - t_min)
            hi = t_min + (c + 1) / buckets * (t_max - t_min)
            tip = (
                f"{row['label']} t=[{lo:.1f}, {hi:.1f}): "
                f"{value * 100:.0f}% unavailable"
                + (f" ({', '.join(causes)})" if causes else "")
            )
            parts.append(
                f'<rect x="{label_w + c * (cell_w + gap)}" y="{y}" '
                f'width="{cell_w}" height="{cell_h}" rx="2" '
                f'fill="{shade}"><title>{_html.escape(tip)}</title></rect>'
            )
    axis_y = len(rows) * (cell_h + gap) + 12
    parts.append(
        f'<text x="{label_w}" y="{axis_y}" class="axis-label">'
        f"t={t_min:.0f}</text>"
        f'<text x="{width - 4}" y="{axis_y}" text-anchor="end" '
        f'class="axis-label">t={t_max:.0f}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _spans_svg(spans: list[dict[str, Any]], t_min: float,
               t_max: float) -> str:
    """Horizontal lineage-span bars colored by terminal status."""
    if not spans:
        return '<p class="meta">no lineage spans in trace</p>'
    bar_h, gap, label_w, plot_w = 10, 2, 70, 720
    span_t = (t_max - t_min) or 1.0
    height = len(spans) * (bar_h + gap) + 16
    parts = [
        f'<svg width="{label_w + plot_w}" height="{height}" role="img">'
    ]
    for i, span in enumerate(spans):
        y = i * (bar_h + gap)
        x0 = label_w + (span["start"] - t_min) / span_t * plot_w
        x1 = label_w + (span["end"] - t_min) / span_t * plot_w
        color = _STATUS_COLOR.get(span.get("status", ""), "var(--series-1)")
        tip = (
            f"{span['txn']} [{span.get('status', '?')}] "
            f"t=[{span['start']:.2f}, {span['end']:.2f}] "
            f"agent={span.get('agent')}"
        )
        parts.append(
            f'<text x="{label_w - 6}" y="{y + bar_h - 1}" '
            f'text-anchor="end" class="axis-label">'
            f"{_html.escape(str(span['txn']))}</text>"
            f'<rect x="{x0:.1f}" y="{y}" '
            f'width="{max(x1 - x0, 1.5):.1f}" height="{bar_h}" rx="2" '
            f'fill="{color}"><title>{_html.escape(tip)}</title></rect>'
        )
    axis_y = len(spans) * (bar_h + gap) + 12
    parts.append(
        f'<text x="{label_w}" y="{axis_y}" class="axis-label">'
        f"t={t_min:.0f}</text>"
        f'<text x="{label_w + plot_w}" y="{axis_y}" text-anchor="end" '
        f'class="axis-label">t={t_max:.0f}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _availability_table(availability: dict[str, Any]) -> str:
    rows = []
    for run, summary in sorted(availability.items()):
        for fragment, dims in sorted(summary.get("fragments", {}).items()):
            write = dims["write"]
            read = dims["read"]
            rows.append(
                "<tr>"
                f"<td>{_html.escape(run or '(default)')}</td>"
                f"<td>{_html.escape(fragment)}</td>"
                f"<td>{write['availability'] * 100:.2f}%</td>"
                f"<td>{read['availability'] * 100:.2f}%</td>"
                f"<td>{write['windows']}</td>"
                f"<td>{write['longest_window']:.2f}</td>"
                f"<td>{_html.escape(', '.join(write['by_cause']) or '—')}"
                "</td></tr>"
            )
    if not rows:
        return '<p class="meta">no availability windows recorded</p>'
    return (
        "<table><thead><tr><th>run</th><th>fragment</th>"
        "<th>write avail</th><th>read avail</th><th>windows</th>"
        "<th>longest</th><th>causes</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def render_html(
    data: dict[str, Any], title: str = "repro dashboard",
    live: bool = False,
) -> str:
    """Render the payload into one self-contained HTML document."""
    meta = data["meta"]
    cards = []
    for series in data["series"]:
        points = series["points"]
        last = points[-1][1] if points else 0
        cards.append(
            '<div class="card">'
            f'<div class="name" title="{_html.escape(series["name"])}">'
            f"{_html.escape(series['name'])}</div>"
            f'<div class="last">{last:g}</div>'
            + _spark_svg(points)
            + "</div>"
        )
    sse = (
        "<script>\n"
        "const es = new EventSource('/events');\n"
        "es.onmessage = () => location.reload();\n"
        "</script>"
        if live
        else ""
    )
    run_list = ", ".join(r or "(default)" for r in meta["runs"]) or "—"
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>{_html.escape(title)}</h1>
<p class="meta">{meta['events']} events over
t=[{meta['t_min']:.1f}, {meta['t_max']:.1f}] · runs: {_html.escape(run_list)}</p>
<h2>Availability accountant</h2>
{_availability_table(data['availability'])}
<h2>Write availability by fragment (darker = more of the bucket unavailable)</h2>
{_heatmap_svg(data['heatmap'])}
<h2>Metric sparklines</h2>
<div class="grid">{''.join(cards) or '<p class="meta">no series</p>'}</div>
<h2>Lineage spans (first {MAX_SPANS})</h2>
{_spans_svg(data['spans'], meta['t_min'], meta['t_max'])}
{sse}
</body>
</html>
"""


def dashboard_from_trace(
    trace_path: str,
    timeline_path: str | None = None,
    title: str | None = None,
    live: bool = False,
) -> str:
    """Read files, assemble the payload, render the HTML document."""
    from repro.obs.timeline import load_jsonl

    events = list(read_trace(trace_path))
    timeline_records = (
        load_jsonl(timeline_path) if timeline_path is not None else None
    )
    data = build_dashboard_data(events, timeline_records)
    return render_html(
        data, title=title or f"repro dashboard — {trace_path}", live=live
    )


# -- live server -----------------------------------------------------------


def serve_dashboard(
    trace_path: str,
    timeline_path: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8377,
    poll_interval: float = 1.0,
    max_pings: int | None = None,
):  # pragma: no cover - exercised via handler unit tests
    """Serve the dashboard over stdlib HTTP with SSE file-watch reloads.

    ``GET /`` renders the current file contents; ``GET /data.json``
    returns the payload; ``GET /events`` holds a server-sent-events
    stream that pings whenever the trace file grows (the page's inline
    script reloads on ping).  ``max_pings`` bounds the SSE loop for
    tests.  Returns the configured ``ThreadingHTTPServer`` — call
    ``serve_forever()`` on it (the CLI does).
    """
    import http.server
    import os
    import time

    class Handler(http.server.BaseHTTPRequestHandler):
        def log_message(self, *args: Any) -> None:
            pass  # keep the CLI quiet; the dashboard is the output

        def _send(self, body: bytes, content_type: str) -> None:
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path in ("/", "/index.html"):
                page = dashboard_from_trace(
                    trace_path, timeline_path, live=True
                )
                self._send(page.encode("utf-8"), "text/html; charset=utf-8")
            elif self.path == "/data.json":
                from repro.obs.timeline import load_jsonl

                events = list(read_trace(trace_path))
                records = (
                    load_jsonl(timeline_path) if timeline_path else None
                )
                body = json.dumps(
                    build_dashboard_data(events, records), sort_keys=True
                ).encode("utf-8")
                self._send(body, "application/json")
            elif self.path == "/events":
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                self.end_headers()
                last_size = os.path.getsize(trace_path)
                pings = 0
                while max_pings is None or pings < max_pings:
                    time.sleep(poll_interval)
                    try:
                        size = os.path.getsize(trace_path)
                    except OSError:
                        break
                    if size != last_size:
                        last_size = size
                        try:
                            self.wfile.write(b"data: grew\n\n")
                            self.wfile.flush()
                        except (BrokenPipeError, ConnectionResetError):
                            break
                        pings += 1
            else:
                self.send_error(404)

    server = http.server.ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    return server
