"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro spectrum            # E1: the Figure 1.1 table
    python -m repro spectrum --seed 42 --duration 200
    python -m repro spectrum --trace out.jsonl
    python -m repro sweep               # E9: availability vs duration
    python -m repro theorem --runs 50   # E8: randomized theorem check
    python -m repro scenario            # E2/E3: the Section 1-2 banking story
    python -m repro metrics             # metrics snapshot of an E1-style run
    python -m repro metrics --summarize out.jsonl
    python -m repro spectrum --loss-rate 0.1 --jitter 2   # lossy substrate
    python -m repro chaos --seeds 10    # E16: seeded nemesis sweep
    python -m repro chaos --crashes 2 --checkpoint-every 8  # + recovery armed
    python -m repro checkpoint          # E17: full vs delta vs snapshot rejoin
    python -m repro audit out.jsonl     # offline lineage audit of a trace
    python -m repro timeline out.jsonl --txn T3   # one txn's causal story
    python -m repro metrics --watch 10 --timeline-out tl.jsonl
    python -m repro dashboard out.jsonl --timeline tl.jsonl --html dash.html
    python -m repro dashboard out.jsonl --serve   # live-reloading server
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.report import (
    format_metrics_snapshot,
    format_table,
    format_trace_summary,
)
from repro.analysis.spectrum import (
    SPECTRUM_HEADERS,
    SpectrumConfig,
    run_fragments_agents,
    run_mutual_exclusion,
    run_optimistic,
    run_spectrum,
)
from repro.analysis.theorem import run_random_workload
from repro.core.control.acyclic import AcyclicReadsStrategy
from repro.core.control.read_locks import ReadLocksStrategy
from repro.core.control.unrestricted import UnrestrictedReadsStrategy


def _config_from_args(args: argparse.Namespace) -> SpectrumConfig:
    duration = getattr(args, "duration", None)
    kwargs = {"seed": args.seed}
    if duration is not None:
        kwargs["partition_start"] = 60.0
        kwargs["partition_end"] = 60.0 + max(duration, 0.001)
    batch_size = getattr(args, "batch_size", None)
    if batch_size is not None:
        kwargs["batch_size"] = batch_size
    batch_window = getattr(args, "batch_window", None)
    if batch_window is not None:
        kwargs["batch_window"] = batch_window
    kwargs.update(_fault_kwargs(args))
    return SpectrumConfig(**kwargs)


def _fault_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    for name in ("loss_rate", "dup_rate", "jitter"):
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    return kwargs


def _add_batching_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="group up to N quasi-transactions per broadcast (default 1)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=None, metavar="TICKS",
        help="flush a partial batch after this many simulated ticks",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--loss-rate", type=float, default=None, metavar="P",
        dest="loss_rate",
        help="drop each message with probability P (enables the "
        "ack/retransmit delivery layer)",
    )
    parser.add_argument(
        "--dup-rate", type=float, default=None, metavar="P",
        dest="dup_rate",
        help="duplicate each delivered message with probability P",
    )
    parser.add_argument(
        "--jitter", type=float, default=None, metavar="TICKS",
        help="add uniform random extra latency in [0, TICKS] per message",
    )


def cmd_spectrum(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rows = run_spectrum(config, trace_path=args.trace)
    print(
        format_table(
            SPECTRUM_HEADERS,
            [row.as_tuple() for row in rows],
            title=(
                f"Figure 1.1 spectrum (seed {config.seed}, partition "
                f"{config.partition_start}-{config.partition_end})"
            ),
        )
    )
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    durations = [0.0, 100.0, 200.0, 300.0, 400.0, 480.0]
    if args.trace:
        open(args.trace, "w", encoding="utf-8").close()  # truncate
    rows = []
    for duration in durations:
        config = SpectrumConfig(
            partition_start=60.0,
            partition_end=60.0 + max(duration, 0.001),
            seed=args.seed,
            **_fault_kwargs(args),
        )
        rows.append(
            [
                duration,
                run_mutual_exclusion(config).availability,
                run_fragments_agents(
                    config,
                    ReadLocksStrategy(lock_timeout=60.0, retry_interval=2.0),
                    f"fa-read-locks@{duration:g}",
                    view_mode="own",
                    trace_path=args.trace,
                ).availability,
                run_fragments_agents(
                    config, AcyclicReadsStrategy(), f"fa-acyclic@{duration:g}",
                    view_mode="none",
                    trace_path=args.trace,
                ).availability,
                run_fragments_agents(
                    config,
                    UnrestrictedReadsStrategy(),
                    f"fa-unrestricted@{duration:g}",
                    view_mode="own",
                    trace_path=args.trace,
                ).availability,
                run_optimistic(config).availability,
            ]
        )
    print(
        format_table(
            ["duration", "mutual-excl", "read-locks", "acyclic",
             "unrestricted", "optimistic"],
            rows,
            title="availability vs partition duration (E9)",
        )
    )
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    return 0


def cmd_theorem(args: argparse.Namespace) -> int:
    rows = []
    for label, acyclic in (("forests", True), ("cyclic", False)):
        violations = sum(
            not run_random_workload(seed, acyclic=acyclic).globally_serializable
            for seed in range(args.runs)
        )
        rows.append([label, args.runs, violations])
    print(
        format_table(
            ["read-access graphs", "runs", "GS violations"],
            rows,
            title="Section 4.2 theorem, randomized (E8)",
        )
    )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro import FragmentedDatabase
    from repro.workloads import BankingWorkload

    db = FragmentedDatabase(["A", "B"])
    if args.trace:
        db.enable_tracing(args.trace, context={"run": "scenario"})
    bank = BankingWorkload(
        db,
        accounts={"00001": 300.0},
        central_node="A",
        owners={"00001": [("alice", "A"), ("bob", "B")]},
        view_mode="balance",
    )
    db.finalize()
    db.partitions.partition_now([["A"], ["B"]])
    at_a = bank.withdraw("00001", args.amount, owner=0)
    at_b = bank.withdraw("00001", args.amount, owner=1)
    db.run(until=20)
    db.partitions.heal_now()
    db.quiesce()
    print(
        format_table(
            ["measure", "value"],
            [
                ["withdrawal at A", at_a.result[0]],
                ["withdrawal at B", at_b.result[0]],
                ["final balance", bank.balance_at("00001", "A")],
                ["overdraft letters", len(bank.stats.letters)],
                ["mutually consistent", db.mutual_consistency().consistent],
                ["fragmentwise", db.fragmentwise_serializability().ok],
            ],
            title=(
                f"Section 2 banking scenario: two ${args.amount:.0f} "
                f"withdrawals on a $300 joint account during a partition"
            ),
        )
    )
    if args.trace:
        db.tracer.close()
        print(f"\ntrace written to {args.trace}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if getattr(args, "backend", "sim") == "asyncio":
        return _cmd_chaos_asyncio(args)
    from repro.analysis.nemesis import NemesisConfig, run_nemesis
    from repro.analysis.torture import PROTOCOLS

    config = NemesisConfig(
        loss_rate=args.loss_rate if args.loss_rate is not None else 0.15,
        dup_rate=args.dup_rate if args.dup_rate is not None else 0.05,
        jitter=args.jitter if args.jitter is not None else 2.0,
        n_bursts=args.bursts,
        n_flaps=args.flaps,
        n_crashes=args.crashes,
        n_partitions=args.partitions,
        checkpoint_every=args.checkpoint_every,
        recovery_grace=args.recovery_grace,
        replication_factor=args.replication_factor,
        n_quorum_reads=args.quorum_reads,
        n_agent_kills=args.kill_agent,
        failover=args.failover,
    )
    protocols = [args.protocol] if args.protocol else list(PROTOCOLS)
    seeds = (
        range(args.seed, args.seed + args.seeds)
        if args.seeds
        else [args.seed]
    )
    if args.trace:
        open(args.trace, "w", encoding="utf-8").close()  # truncate
    rows = []
    violations = []
    for protocol in protocols:
        for seed in seeds:
            result = run_nemesis(seed, protocol, config, trace_path=args.trace)
            ok = result.respects_guarantees()
            if not ok:
                violations.append((protocol, seed))
            causes = result.unavailability_causes or {}
            rows.append(
                [
                    protocol,
                    seed,
                    f"{result.committed}/{result.submitted}",
                    result.drops,
                    result.dups,
                    result.retransmits,
                    result.dups_dropped,
                    result.exhausted,
                    round(result.converge_time, 1),
                    f"{result.write_availability * 100:.1f}%",
                    round(result.worst_window, 1),
                    result.mutually_consistent,
                    result.fragmentwise,
                    "ok" if result.audit_ok
                    else f"FAIL:{result.audit_violations}",
                    "OK" if ok else "VIOLATION",
                ]
            )
            if not result.audit_ok:
                print(
                    f"{protocol}@{seed}: audit: {result.audit_first}",
                    file=sys.stderr,
                )
            if config.failover and causes:
                worst = max(causes.items(), key=lambda item: item[1])
                print(
                    f"{protocol}@{seed}: unavailability by cause: "
                    + " ".join(
                        f"{cause}={held:.1f}"
                        for cause, held in sorted(causes.items())
                    )
                    + f" (dominant: {worst[0]}; failovers="
                    f"{result.failovers}, blocked={result.updates_blocked})"
                )
    print(
        format_table(
            ["protocol", "seed", "committed", "drops", "dups", "retrans",
             "dedup", "exhausted", "converge", "avail", "worst-win",
             "MC", "FW", "audit", "verdict"],
            rows,
            title=(
                f"chaos nemesis (loss={config.loss_rate}, "
                f"dup={config.dup_rate}, jitter={config.jitter}, "
                f"bursts={config.n_bursts}, flaps={config.n_flaps}, "
                f"crashes={config.n_crashes}, "
                f"partitions={config.n_partitions})"
            ),
        )
    )
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    if violations:
        print(
            f"\n{len(violations)} guarantee violation(s): {violations}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(rows)} runs respected the Section 4.4 guarantees")
    return 0


def _cmd_chaos_asyncio(args: argparse.Namespace) -> int:
    """Chaos on the real backend: fault proxies + hard kills over TCP."""
    from repro.analysis.serve_bench import run_live_chaos

    drop = args.loss_rate if args.loss_rate is not None else 0.05
    delay = (args.jitter / 1000.0) if args.jitter is not None else 0.002
    seeds = (
        range(args.seed, args.seed + args.seeds)
        if args.seeds
        else [args.seed]
    )
    if args.trace:
        open(args.trace, "w", encoding="utf-8").close()  # truncate
    rows = []
    violations = []
    for seed in seeds:
        result = run_live_chaos(
            seed=seed,
            drop=drop,
            delay=delay,
            trace_path=args.trace,
            trace_append=True,
        )
        if not result["respects_guarantees"]:
            violations.append(seed)
        rows.append([
            seed,
            f"{result['committed']}/{result['submitted']}",
            result["frames_dropped"],
            result["frames_blackholed"],
            result["retransmits"],
            result["failovers"],
            result["retries"],
            f"{result['throughput_ups']}/s",
            "ok" if result["audit_ok"]
            else f"FAIL:{result['audit_violations']}",
            "OK" if result["respects_guarantees"] else "VIOLATION",
        ])
    print(
        format_table(
            ["seed", "committed", "dropped", "blackholed", "retrans",
             "failovers", "http-retries", "throughput", "audit", "verdict"],
            rows,
            title=(
                f"chaos --backend=asyncio (real TCP; proxy drop={drop}, "
                f"delay={delay}s, one hard kill per run)"
            ),
        )
    )
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    if violations:
        print(
            f"\n{len(violations)} guarantee violation(s) at seeds "
            f"{violations}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(rows)} live runs respected the Section 4.4 "
          "guarantees")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the asyncio backend and serve it over HTTP until Ctrl-C."""
    from repro.analysis.serve_bench import build_system
    from repro.serve import FrontDoor

    fault_profile = None
    if args.drop or args.delay:
        fault_profile = {
            "drop": args.drop, "delay": args.delay, "seed": args.seed
        }
    db = build_system(
        nodes=args.nodes,
        fragments=args.fragments,
        factor=args.factor,
        tick=args.tick,
        fault_profile=fault_profile,
        trace_path=args.trace,
    )
    db.start_runtime()
    db.call_on_runtime(lambda: db.availability.start(until=10_000_000.0))
    door = FrontDoor(db, host=args.host, port=args.port).start()
    print(f"serving {args.nodes} nodes / {args.fragments} fragments "
          f"(k={args.factor}, asyncio backend) on {door.url}")
    print(f"  POST {door.url}/updates   " + '{"object": "x0", "delta": 1}')
    print(f"  POST {door.url}/reads     " + '{"object": "x0", "at": "N4"}')
    print(f"  GET  {door.url}/          live dashboard "
          "(/fragments /updates /metrics /healthz)")
    print("Ctrl-C to stop")
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        door.stop()
        db.tracer.close()
        db.stop_runtime()
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.analysis.serve_bench import (
        check_gates,
        load_committed,
        run_serve_bench,
        write_result,
    )

    result = run_serve_bench(
        nodes=args.nodes,
        fragments=args.fragments,
        updates=args.updates,
        factor=args.factor,
        clients=args.clients,
        tick=args.tick,
        kill=not args.no_kill,
        trace_path=args.trace,
    )
    print(
        format_table(
            ["committed", "failovers", "http-retries", "throughput",
             "p50", "p99", "audit"],
            [[
                f"{result['committed']}/{result['submitted']}",
                result["failovers"],
                result["retries"],
                f"{result['throughput_ups']}/s",
                f"{result['p50_ms']}ms",
                f"{result['p99_ms']}ms",
                "ok" if result["audit_ok"]
                else f"FAIL:{result['audit_violations']}",
            ]],
            title=(
                f"E22 — HTTP front door on the asyncio backend: "
                f"{args.nodes} nodes, {args.fragments} fragments, "
                f"k={args.factor}, {args.clients} clients"
                + ("" if args.no_kill else ", one mid-run hard kill")
            ),
        )
    )
    committed = None
    if args.check:
        committed = load_committed(args.check)
        if committed is None:
            print(f"error: no committed benchmark at {args.check}",
                  file=sys.stderr)
            return 1
    ok, message = check_gates(result, committed)
    if ok:
        print("all gates OK: " + message)
    else:
        print("GATE FAILED: " + message, file=sys.stderr)
    if args.json:
        write_result(result, args.json)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def cmd_checkpoint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.recovery_bench import MODES, run_rejoin_comparison

    results = run_rejoin_comparison(
        seed=args.seed,
        n_updates=args.updates,
        checkpoint_every=args.every,
        grace=args.grace,
    )
    rows = []
    for mode in MODES:
        result = results[mode]
        rows.append(
            [
                mode,
                result.committed,
                result.wal_replayed,
                result.checkpoints,
                result.archive_pruned,
                result.delta_qts_shipped,
                result.checkpoints_shipped,
                result.bytes_shipped,
                result.retained_bytes,
                round(result.rejoin_ticks, 1),
                result.consistent,
                "ok" if result.audit_ok else "FAIL",
            ]
        )
    print(
        format_table(
            ["mode", "committed", "wal-replay", "ckpts", "pruned",
             "delta-qts", "snaps", "bytes-shipped", "retained-bytes",
             "rejoin", "MC", "audit"],
            rows,
            title=(
                f"checkpoint & rejoin benchmark (E17, seed {args.seed}, "
                f"{args.updates} updates, every={args.every}, "
                f"grace={args.grace:g})"
            ),
        )
    )
    if args.json:
        payload = {mode: results[mode].as_dict() for mode in MODES}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nresults written to {args.json}")
    broken = [
        mode
        for mode in MODES
        if not (results[mode].consistent and results[mode].audit_ok)
    ]
    if broken:
        print(f"\nmode(s) broke consistency or audit: {broken}",
              file=sys.stderr)
        return 1
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import ALL_CHECKS, audit_trace, write_report

    try:
        reports = audit_trace(args.trace_file, protocol=args.protocol)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace_file}: {exc}",
              file=sys.stderr)
        return 1
    if not reports:
        print(f"error: no events in {args.trace_file}", file=sys.stderr)
        return 1
    rows = []
    for run, report in reports.items():
        row = [run or "-", report.protocol or "?", report.events,
               report.installs]
        for name in ALL_CHECKS:
            check = report.checks[name]
            if not check.checked:
                row.append("relaxed")
            elif check.ok:
                row.append("ok")
            else:
                row.append(f"FAIL:{check.violation_count}")
        row.append("OK" if report.ok else "VIOLATION")
        rows.append(row)
    print(
        format_table(
            ["run", "protocol", "events", "installs",
             *[name.replace("_", "-") for name in ALL_CHECKS], "verdict"],
            rows,
            title=f"lineage audit: {args.trace_file}",
        )
    )
    failed = {run: rep for run, rep in reports.items() if not rep.ok}
    for run, report in failed.items():
        first = report.first_violation()
        print(f"\n{run or '-'}: first violation [{first.check}] "
              f"{first.message}", file=sys.stderr)
        print(f"  event: {first.event}", file=sys.stderr)
    if args.report:
        write_report(args.report, reports)
        print(f"\naudit report written to {args.report}")
    if failed:
        print(f"\n{len(failed)} run(s) failed the audit", file=sys.stderr)
        return 1
    print(f"\nall {len(reports)} run(s) passed the audit")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.audit import timeline_from_trace

    try:
        events = timeline_from_trace(args.trace_file, args.txn, run=args.run)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace_file}: {exc}",
              file=sys.stderr)
        return 1
    if not events:
        print(f"no events mention transaction {args.txn!r}", file=sys.stderr)
        return 1
    rows = []
    for event in events:
        fields = {
            key: value
            for key, value in event.items()
            if key not in ("t", "type", "run")
        }
        where = (
            fields.pop("node", None)
            or fields.pop("receiver", None)
            or fields.pop("origin", None)
            or fields.pop("src", "-")
        )
        detail = " ".join(f"{key}={value}" for key, value in fields.items())
        rows.append([f"{event.get('t', 0.0):.2f}", event.get("type", "?"),
                     where, detail])
    print(
        format_table(
            ["t", "event", "where", "detail"],
            rows,
            title=f"timeline of {args.txn} ({len(events)} events)",
        )
    )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.summary import summarize_trace

    if args.summarize:
        try:
            summary = summarize_trace(args.summarize)
        except OSError as exc:
            print(f"error: cannot read trace {args.summarize}: {exc}",
                  file=sys.stderr)
            return 1
        print(format_trace_summary(summary))
        return 0

    config = _config_from_args(args)
    if args.trace:
        open(args.trace, "w", encoding="utf-8").close()  # truncate
    db_box: list = []
    on_db = None
    if args.watch is not None:
        if args.watch <= 0:
            print("error: --watch interval must be positive", file=sys.stderr)
            return 1
        from repro.obs.timeline import TimelineSampler

        def on_db(db, tick=args.watch):
            sampler = TimelineSampler(db.metrics, tick=tick)
            sampler.start(db.sim, until=config.partition_end + 200.0)

    row = run_fragments_agents(
        config,
        UnrestrictedReadsStrategy(),
        "fa-unrestricted",
        view_mode="own",
        trace_path=args.trace,
        db_sink=db_box,
        on_db=on_db,
    )
    db = db_box[0]
    if args.watch is not None:
        _print_watch(db.metrics.timeline)
    print(
        format_metrics_snapshot(
            db.snapshot(),
            title=(
                f"metrics snapshot: fa-unrestricted E1 run "
                f"(seed {config.seed}, availability "
                f"{row.availability:.3f})"
            ),
        )
    )
    if args.timeline_out:
        written = (
            db.metrics.timeline.dump_jsonl(args.timeline_out)
            if db.metrics.timeline is not None
            else 0
        )
        print(f"\n{written} timeline records written to {args.timeline_out}")
    if args.trace:
        print()
        print(format_trace_summary(summarize_trace(args.trace)))
    return 0


def _print_watch(sampler) -> int:
    """Per-tick counter-delta blocks from a finished timeline sampler.

    The run executes at simulation speed (instantly), so "watch" output
    is the per-interval view printed in order after the fact — the same
    records a live wall-clock watcher would have seen tick by tick.
    """
    if sampler is None or not sampler.samples_taken:
        print("(no timeline samples taken)")
        return 0
    names = sampler.series_names()["counters"]
    ticks: dict[float, list[tuple[str, int, int]]] = {}
    for name in names:
        for t, value, delta in sampler.counter_series(name):
            if delta:
                ticks.setdefault(t, []).append((name, value, delta))
    for t in sorted(ticks):
        print(f"t={t:g}")
        for name, value, delta in ticks[t]:
            print(f"  {name:<44} {value:>8}  (+{delta})")
    print(
        f"({sampler.samples_taken} samples, "
        f"{len(ticks)} with counter activity)\n"
    )
    return len(ticks)


def cmd_scale_bench(args: argparse.Namespace) -> int:
    from repro.analysis.scale_bench import (
        check_regression,
        load_committed,
        run_scale_bench,
        write_result,
    )

    result = run_scale_bench(
        nodes=args.nodes, updates=args.updates, repeats=args.repeats
    )
    base = result["baseline"]
    flat = result["flattened"]
    print(
        format_table(
            ["side", "path cache", "events", "elapsed s",
             "events/s", "MC"],
            [
                ["baseline", base["path_cache"],
                 base["events_fired"], base["elapsed_s"],
                 base["throughput_eps"], base["mutually_consistent"]],
                ["flattened", flat["path_cache"],
                 flat["events_fired"], flat["elapsed_s"],
                 flat["throughput_eps"], flat["mutually_consistent"]],
            ],
            title=(
                f"E18 — scale bench: {args.nodes} nodes, "
                f"{args.updates} updates, speedup {result['speedup']}x"
            ),
        )
    )
    print(f"state hashes match:  {result['state_match']}")
    print(f"event counts match:  {result['events_match']}")
    if not (result["state_match"] and result["events_match"]):
        print("error: configurations diverged — determinism contract broken",
              file=sys.stderr)
        return 1
    if args.check:
        committed = load_committed(args.check)
        if committed is None:
            print(f"error: no committed benchmark at {args.check}",
                  file=sys.stderr)
            return 1
        ok, message = check_regression(result, committed, args.tolerance)
        print(("OK: " if ok else "REGRESSION: ") + message)
        if args.json:
            write_result(result, args.json)
        return 0 if ok else 1
    if args.json:
        write_result(result, args.json)
        print(f"wrote {args.json}")
    return 0


def cmd_partial_bench(args: argparse.Namespace) -> int:
    from repro.analysis.partial_bench import (
        check_gates,
        load_committed,
        run_partial_bench,
        write_result,
    )

    result = run_partial_bench(
        nodes=args.nodes,
        fragments=args.fragments,
        updates=args.updates,
        factors=tuple(args.factors),
        seed=args.seed,
    )
    rows = []
    baseline = result["baseline"]
    for point in result["points"] + [baseline]:
        ratio = (
            point["qt_messages"] / baseline["qt_messages"]
            if baseline["qt_messages"]
            else 0.0
        )
        rows.append([
            point["k"],
            point["qt_messages"],
            f"{ratio:.2f}",
            f"{point['k'] / result['nodes']:.2f}",
            point["storage_ratio"],
            f"{point['quorum_served']}/{point['quorum_reads']}",
            point["mutually_consistent"],
            point["audit_ok"],
        ])
    print(
        format_table(
            ["k", "qt msgs", "vs bcast", "k/N", "storage", "quorum",
             "MC", "audit"],
            rows,
            title=(
                f"E19 — partial replication: {args.nodes} nodes, "
                f"{args.fragments} fragments, {args.updates} updates"
            ),
        )
    )
    committed = None
    if args.check:
        committed = load_committed(args.check)
        if committed is None:
            print(f"error: no committed benchmark at {args.check}",
                  file=sys.stderr)
            return 1
    ok, problems = check_gates(result, committed, args.tolerance)
    for problem in problems:
        print("GATE FAILED: " + problem, file=sys.stderr)
    if ok:
        print("all gates OK: multicast volume scales with k, storage "
              "tracks k/N, quorum reads served")
    if args.json:
        write_result(result, args.json)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def cmd_failover_bench(args: argparse.Namespace) -> int:
    from repro.analysis.failover_bench import (
        check_gates,
        load_committed,
        run_failover_bench,
        write_result,
    )

    result = run_failover_bench(
        nodes=args.nodes,
        fragments=args.fragments,
        updates=args.updates,
        factor=args.factor,
        seed=args.seed,
    )
    rows = []
    for tag in ("supervised", "unsupervised"):
        mode = result[tag]
        rows.append([
            tag,
            f"{mode['committed']}/{mode['submitted']}",
            mode["blocked"],
            mode["attempts"],
            mode["failovers"],
            mode["demotions"],
            round(mode["max_unavailability"], 1),
            round(mode["mttr_max"], 1),
            mode["audit_ok"],
        ])
    print(
        format_table(
            ["mode", "committed", "blocked", "attempts", "failovers",
             "demotions", "max-unavail", "mttr-max", "audit"],
            rows,
            title=(
                f"E20 — availability failover: {args.nodes} nodes, "
                f"{args.fragments} fragments, k={args.factor}, "
                f"seed {args.seed}"
            ),
        )
    )
    committed = None
    if args.check:
        committed = load_committed(args.check)
        if committed is None:
            print(f"error: no committed benchmark at {args.check}",
                  file=sys.stderr)
            return 1
    ok, problems = check_gates(result, committed, args.tolerance)
    for problem in problems:
        print("GATE FAILED: " + problem, file=sys.stderr)
    if ok:
        print("all gates OK: supervised outages bounded, every update "
              "completed, audit (incl. epoch fencing) clean")
    if args.json:
        write_result(result, args.json)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import dashboard_from_trace, serve_dashboard

    if not args.html and not args.serve:
        print("error: pick --html FILE or --serve", file=sys.stderr)
        return 1
    if args.html:
        try:
            page = dashboard_from_trace(
                args.trace_file, timeline_path=args.timeline
            )
        except OSError as exc:
            print(f"error: cannot read {args.trace_file}: {exc}",
                  file=sys.stderr)
            return 1
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(page)
        print(f"dashboard written to {args.html}")
    if args.serve:
        server = serve_dashboard(
            args.trace_file,
            timeline_path=args.timeline,
            host=args.host,
            port=args.port,
        )
        print(
            f"serving dashboard for {args.trace_file} on "
            f"http://{args.host}:{args.port}/ (Ctrl-C to stop)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    return 0


def cmd_availability_accounting_bench(args: argparse.Namespace) -> int:
    from repro.analysis.availability_bench import (
        check_gates,
        load_committed,
        run_availability_accounting_bench,
        write_result,
    )

    result = run_availability_accounting_bench(
        nodes=args.nodes,
        fragments=args.fragments,
        updates=args.updates,
        factor=args.factor,
        seed=args.seed,
    )
    rows = []
    for tag in ("supervised", "unsupervised"):
        mode = result[tag]
        rows.append([
            tag,
            f"{mode['write_availability'] * 100:.2f}%",
            f"{mode['read_availability'] * 100:.2f}%",
            round(mode["worst_window"], 1),
            mode["windows"],
            mode["incidents"],
            mode["mttd_mean"] if mode["mttd_mean"] is not None else "-",
            mode["mttr_mean"] if mode["mttr_mean"] is not None else "-",
            mode["timeline_records"],
        ])
    print(
        format_table(
            ["mode", "write-avail", "read-avail", "worst-win", "windows",
             "incidents", "mttd", "mttr", "tl-records"],
            rows,
            title=(
                f"E21 — availability accounting: {args.nodes} nodes, "
                f"{args.fragments} fragments, k={args.factor}, "
                f"seed {args.seed}"
            ),
        )
    )
    deterministic = (
        result["rerun_timeline_hash"]
        == result["supervised"]["timeline_hash"]
    )
    print(f"timeline deterministic across reruns: {deterministic}")
    committed = None
    if args.check:
        committed = load_committed(args.check)
        if committed is None:
            print(f"error: no committed benchmark at {args.check}",
                  file=sys.stderr)
            return 1
    ok, problems = check_gates(result, committed, args.tolerance)
    for problem in problems:
        print("GATE FAILED: " + problem, file=sys.stderr)
    if ok:
        print("all gates OK: accountant deterministic, windows agree "
              "with the measured E20 ground truth")
    if args.json:
        write_result(result, args.json)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Garcia-Molina & Kogan, 'Achieving High "
            "Availability in Distributed Databases' (ICDE 1987)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_help = "write structured trace events to this JSONL file"

    spectrum = sub.add_parser("spectrum", help="the Figure 1.1 table (E1)")
    spectrum.add_argument("--seed", type=int, default=7)
    spectrum.add_argument(
        "--duration", type=float, default=None,
        help="partition duration in ticks (default: the E1 scenario's 300)",
    )
    spectrum.add_argument("--trace", default=None, help=trace_help)
    _add_batching_args(spectrum)
    _add_fault_args(spectrum)
    spectrum.set_defaults(func=cmd_spectrum)

    sweep = sub.add_parser("sweep", help="availability vs duration (E9)")
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--trace", default=None, help=trace_help)
    _add_fault_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    chaos = sub.add_parser(
        "chaos",
        help="seeded nemesis: movement protocols under composed faults (E16)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="sweep N consecutive seeds starting at --seed",
    )
    chaos.add_argument(
        "--protocol", choices=["none", "majority", "with-data",
                               "with-seqno", "corrective"],
        default=None, help="run one protocol (default: all five)",
    )
    chaos.add_argument(
        "--bursts", type=int, default=1, help="scheduled loss bursts"
    )
    chaos.add_argument(
        "--flaps", type=int, default=2, help="transient link flaps"
    )
    chaos.add_argument(
        "--crashes", type=int, default=1, help="crash/recover episodes"
    )
    chaos.add_argument(
        "--partitions", type=int, default=1, help="partition episodes"
    )
    chaos.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        dest="checkpoint_every",
        help="arm the recovery subsystem: checkpoint every K installs, "
        "compact logs behind the cluster watermark, delta catch-up on "
        "rejoin",
    )
    chaos.add_argument(
        "--recovery-grace", type=float, default=60.0, metavar="TICKS",
        dest="recovery_grace",
        help="how long a downed/unreachable replica pins the compaction "
        "watermark (with --checkpoint-every)",
    )
    chaos.add_argument(
        "--replication-factor", type=int, default=None, metavar="K",
        dest="replication_factor",
        help="restrict every fragment to a rendezvous-placed replica "
        "set of K nodes (default: full replication)",
    )
    chaos.add_argument(
        "--quorum-reads", type=int, default=0, metavar="N",
        dest="quorum_reads",
        help="schedule N read-only transactions at nodes outside the "
        "fragment's replica set (version-vote quorum reads)",
    )
    chaos.add_argument(
        "--kill-agent", type=int, default=0, metavar="N",
        dest="kill_agent",
        help="crash-stop the agent's current home node N times (no "
        "home-node rail; pair with --failover for bounded outages)",
    )
    chaos.add_argument(
        "--failover", action="store_true",
        help="arm the availability supervisor: heartbeat failure "
        "detection plus automatic agent failover to a live replica",
    )
    chaos.add_argument("--trace", default=None, help=trace_help)
    chaos.add_argument(
        "--backend", choices=["sim", "asyncio"], default="sim",
        help="sim: seeded nemesis in the simulator (default); asyncio: "
        "real TCP with frame-dropping fault proxies, one hard kill per "
        "run, HTTP-driven workload (maps --loss-rate to the proxy drop "
        "probability and --jitter milliseconds to the proxy delay)",
    )
    _add_fault_args(chaos)
    chaos.set_defaults(func=cmd_chaos)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="checkpoint & rejoin benchmark: full replay vs checkpoint+"
        "delta vs snapshot shipping (E17)",
    )
    checkpoint.add_argument("--seed", type=int, default=7)
    checkpoint.add_argument(
        "--updates", type=int, default=60,
        help="update transactions in the workload",
    )
    checkpoint.add_argument(
        "--every", type=int, default=8,
        help="checkpoint every K installs (armed modes)",
    )
    checkpoint.add_argument(
        "--grace", type=float, default=60.0,
        help="watermark grace for the snapshot mode",
    )
    checkpoint.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the results as JSON",
    )
    checkpoint.set_defaults(func=cmd_checkpoint)

    audit = sub.add_parser(
        "audit",
        help="offline lineage audit of a JSONL trace (exactly-once, "
        "stream order, initiation, token uniqueness, agreement)",
    )
    audit.add_argument("trace_file", help="JSONL trace file to audit")
    audit.add_argument(
        "--protocol",
        choices=["none", "majority", "with-data", "with-seqno", "corrective"],
        default=None,
        help="force the guarantee matrix of one protocol (default: infer "
        "from each run's '{protocol}@{seed}' label)",
    )
    audit.add_argument(
        "--report", default=None, metavar="FILE",
        help="also write the structured audit report as JSON",
    )
    audit.set_defaults(func=cmd_audit)

    timeline = sub.add_parser(
        "timeline",
        help="chronological lineage of one transaction from a JSONL trace",
    )
    timeline.add_argument("trace_file", help="JSONL trace file to read")
    timeline.add_argument(
        "--txn", required=True,
        help="transaction id (repackaged descendants/ancestors included)",
    )
    timeline.add_argument(
        "--run", default=None,
        help="restrict to one run label when the trace holds several",
    )
    timeline.set_defaults(func=cmd_timeline)

    theorem = sub.add_parser("theorem", help="randomized §4.2 theorem (E8)")
    theorem.add_argument("--runs", type=int, default=60)
    theorem.set_defaults(func=cmd_theorem)

    scenario = sub.add_parser(
        "scenario", help="the Section 1/2 banking walkthrough"
    )
    scenario.add_argument("--amount", type=float, default=200.0)
    scenario.add_argument("--trace", default=None, help=trace_help)
    scenario.set_defaults(func=cmd_scenario)

    metrics = sub.add_parser(
        "metrics",
        help="metrics snapshot of an E1-style run (or summarize a trace)",
    )
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument(
        "--duration", type=float, default=None,
        help="partition duration in ticks (default: the E1 scenario's 300)",
    )
    metrics.add_argument("--trace", default=None, help=trace_help)
    metrics.add_argument(
        "--summarize", default=None, metavar="TRACE",
        help="summarize an existing JSONL trace file and exit",
    )
    metrics.add_argument(
        "--watch", type=float, default=None, metavar="TICKS",
        help="sample the registry every TICKS simulated ticks and print "
        "per-interval counter deltas (the timeline sampler's view)",
    )
    metrics.add_argument(
        "--timeline-out", default=None, metavar="FILE",
        dest="timeline_out",
        help="dump the sampled timeline as JSONL (requires --watch; feed "
        "it to `repro dashboard --timeline`)",
    )
    _add_batching_args(metrics)
    _add_fault_args(metrics)
    metrics.set_defaults(func=cmd_metrics)

    dashboard = sub.add_parser(
        "dashboard",
        help="render a trace (sparklines, availability heatmap, lineage "
        "spans) as a self-contained HTML page or a live-reloading server",
    )
    dashboard.add_argument("trace_file", help="JSONL trace file to render")
    dashboard.add_argument(
        "--timeline", default=None, metavar="FILE",
        help="timeline JSONL dump (from `repro metrics --watch "
        "--timeline-out`) for real metric sparklines",
    )
    dashboard.add_argument(
        "--html", default=None, metavar="FILE",
        help="write a static self-contained HTML dashboard here",
    )
    dashboard.add_argument(
        "--serve", action="store_true",
        help="serve the dashboard over HTTP with live reload (SSE pings "
        "when the trace file grows)",
    )
    dashboard.add_argument("--host", default="127.0.0.1")
    dashboard.add_argument("--port", type=int, default=8377)
    dashboard.set_defaults(func=cmd_dashboard)

    scale = sub.add_parser(
        "scale-bench",
        help="E18 path-cache throughput A/B with determinism check",
    )
    scale.add_argument("--nodes", type=int, default=32)
    scale.add_argument("--updates", type=int, default=400)
    scale.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per side; fastest sample wins",
    )
    scale.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the result record (BENCH_scale.json format) here",
    )
    scale.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed record; exit 1 on regression",
    )
    scale.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed relative-speedup regression for --check (default 0.20)",
    )
    scale.set_defaults(func=cmd_scale_bench)

    partial = sub.add_parser(
        "partial-bench",
        help="E19 message volume and storage vs replication factor k",
    )
    partial.add_argument("--nodes", type=int, default=12)
    partial.add_argument("--fragments", type=int, default=8)
    partial.add_argument("--updates", type=int, default=160)
    partial.add_argument("--seed", type=int, default=19)
    partial.add_argument(
        "--factors", type=int, nargs="+", default=[2, 3, 5], metavar="K",
        help="replication factors to sweep (full replication is always "
        "run as the baseline)",
    )
    partial.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the result record (BENCH_partial.json format) here",
    )
    partial.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="verify the scaling gates and exact match against a "
        "committed record; exit 1 on failure",
    )
    partial.add_argument(
        "--tolerance", type=float, default=0.10,
        help="slack on the (k/N)-scaling gates for --check (default 0.10)",
    )
    partial.set_defaults(func=cmd_partial_bench)

    failover = sub.add_parser(
        "failover-bench",
        help="E20 write availability under agent-home crashes, with and "
        "without the availability supervisor",
    )
    failover.add_argument("--nodes", type=int, default=6)
    failover.add_argument("--fragments", type=int, default=3)
    failover.add_argument("--updates", type=int, default=36)
    failover.add_argument(
        "--factor", type=int, default=3,
        help="replication factor for every fragment",
    )
    failover.add_argument("--seed", type=int, default=20)
    failover.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the result record (BENCH_availability.json format) here",
    )
    failover.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="verify the availability gates and exact match against a "
        "committed record; exit 1 on failure",
    )
    failover.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed MTTR regression for --check (default 0.20)",
    )
    failover.set_defaults(func=cmd_failover_bench)

    accounting = sub.add_parser(
        "availability-accounting-bench",
        help="E21 accountant-vs-measured availability agreement, with "
        "timeline determinism hashing",
    )
    accounting.add_argument("--nodes", type=int, default=6)
    accounting.add_argument("--fragments", type=int, default=3)
    accounting.add_argument("--updates", type=int, default=36)
    accounting.add_argument(
        "--factor", type=int, default=3,
        help="replication factor for every fragment",
    )
    accounting.add_argument("--seed", type=int, default=20)
    accounting.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the result record (BENCH_obs.json format) here",
    )
    accounting.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="verify the accounting gates and exact match against a "
        "committed record; exit 1 on failure",
    )
    accounting.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed write-availability regression for --check "
        "(default 0.05)",
    )
    accounting.set_defaults(func=cmd_availability_accounting_bench)

    serve = sub.add_parser(
        "serve",
        help="boot the asyncio runtime backend (real TCP between nodes) "
        "and serve it over HTTP: location-transparent writes, quorum "
        "reads, live dashboard",
    )
    serve.add_argument("--nodes", type=int, default=5)
    serve.add_argument("--fragments", type=int, default=2)
    serve.add_argument(
        "--factor", type=int, default=3,
        help="replication factor for every fragment",
    )
    serve.add_argument(
        "--tick", type=float, default=0.05, metavar="SECONDS",
        help="real seconds per simulated tick (protocol timeouts scale "
        "with this; default 0.05)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8378)
    serve.add_argument(
        "--drop", type=float, default=0.0, metavar="P",
        help="arm fault proxies dropping each frame with probability P",
    )
    serve.add_argument(
        "--delay", type=float, default=0.0, metavar="SECONDS",
        help="arm fault proxies delaying each frame this long",
    )
    serve.add_argument("--seed", type=int, default=0,
                       help="fault-proxy RNG seed (with --drop)")
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream the live trace to this JSONL file (auditable with "
        "`repro audit`)",
    )
    serve.set_defaults(func=cmd_serve)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="E22 HTTP-path throughput/latency on the asyncio backend, "
        "with a mid-run hard kill ridden by supervisor failover",
    )
    serve_bench.add_argument("--nodes", type=int, default=5)
    serve_bench.add_argument("--fragments", type=int, default=2)
    serve_bench.add_argument("--updates", type=int, default=40)
    serve_bench.add_argument(
        "--factor", type=int, default=3,
        help="replication factor for every fragment",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=4,
        help="concurrent HTTP client threads",
    )
    serve_bench.add_argument(
        "--tick", type=float, default=0.01, metavar="SECONDS",
        help="real seconds per simulated tick (default 0.01 — fast "
        "failure detection for benching)",
    )
    serve_bench.add_argument(
        "--no-kill", action="store_true", dest="no_kill",
        help="skip the mid-run hard kill (pure throughput run)",
    )
    serve_bench.add_argument(
        "--trace", default=None, metavar="PATH",
        help="capture the live trace to this JSONL file",
    )
    serve_bench.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the result record (BENCH_serve.json format) here",
    )
    serve_bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="verify the sanity gates and record schema against a "
        "committed record; exit 1 on failure",
    )
    serve_bench.set_defaults(func=cmd_serve_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
