"""Waits-for-graph deadlock detection and victim selection."""

from __future__ import annotations

from repro.graphs import Digraph


class WaitsForGraph:
    """Tracks which transaction waits for which, detects cycles.

    Edges are recomputed incrementally: :meth:`block` records the full
    blocker set when a transaction blocks; :meth:`clear` removes the
    waiter's edges when it resumes or dies.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}

    def block(self, waiter: str, blockers: set[str]) -> None:
        """Record that ``waiter`` now waits for each of ``blockers``."""
        self._edges[waiter] = set(blockers)

    def clear_waiting(self, txn: str) -> None:
        """``txn`` resumed: drop its outgoing wait edges only.

        Other waiters' edges *to* ``txn`` must survive — a resumed
        transaction still holds every lock it ever acquired (strict
        2PL), so anyone recorded as blocked by it still is.  Erasing
        those edges here is how deadlocks go undetected.
        """
        self._edges.pop(txn, None)

    def remove(self, txn: str) -> None:
        """``txn`` finished (commit/abort): remove it from both sides.

        Its locks are released, so edges pointing at it are now stale.
        """
        self._edges.pop(txn, None)
        for blockers in self._edges.values():
            blockers.discard(txn)

    def find_cycle(self) -> list[str] | None:
        """A deadlock cycle (node list, first == last), or None."""
        graph = Digraph()
        for waiter, blockers in self._edges.items():
            graph.add_node(waiter)
            for blocker in blockers:
                graph.add_edge(waiter, blocker)
        cycle = graph.find_cycle()
        if cycle is None:
            return None
        return [str(node) for node in cycle]


def choose_victim(cycle: list[str], start_seq: dict[str, int]) -> str:
    """Pick the youngest transaction in the cycle as the abort victim.

    Youngest = largest start sequence number; deterministic.  Aborting
    the youngest wastes the least completed work, the classic policy.
    """
    members = cycle[:-1] if cycle and cycle[0] == cycle[-1] else cycle
    return max(members, key=lambda txn: (start_seq.get(txn, -1), txn))
