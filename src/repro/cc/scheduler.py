"""Strict two-phase-locking local transaction scheduler.

Transactions are generator functions yielding :class:`~repro.cc.ops.Read`
and :class:`~repro.cc.ops.Write`.  The scheduler:

* acquires an S lock per read and an X lock per write (strict 2PL:
  everything is held until after commit/abort),
* buffers writes and applies them atomically at commit (deferred
  update), so no transaction ever observes a partial effect — this is
  what realizes the paper's atomic quasi-transaction installation
  (Property 2),
* detects deadlocks with a waits-for graph and aborts the youngest
  cycle member,
* optionally spreads a transaction's actions over simulated time
  (``action_delay``) so that concurrent local transactions genuinely
  interleave — used by the randomized workloads; scripted experiments
  keep the default of zero and control interleavings via the network
  timing instead.

The scheduler is storage-aware but policy-free: fragment rules, version
numbering, and broadcasting live in :class:`repro.core.node.DatabaseNode`,
injected through the ``apply_writes`` callback.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.cc.deadlock import WaitsForGraph, choose_victim
from repro.cc.locks import LockMode, LockTable
from repro.cc.ops import Read, Write
from repro.cc.serializability import ActionRecord
from repro.errors import SimulationError, TransactionAborted
from repro.storage.store import ObjectStore
from repro.storage.values import Version
from repro.sim.simulator import Simulator

Body = Generator[Any, Any, Any]
DoneFn = Callable[["TxnHandle", "TxnOutcome", Exception | None], None]
ApplyFn = Callable[["TxnHandle"], None]


class TxnOutcome(enum.Enum):
    """Terminal state of a scheduled transaction."""

    COMMITTED = "committed"
    ABORTED = "aborted"


class TxnHandle:
    """Scheduler-side state of one in-flight transaction."""

    def __init__(
        self,
        txn_id: str,
        gen: Body,
        kind: str,
        start_seq: int,
        start_time: float,
        on_done: DoneFn | None,
        meta: dict[str, Any],
    ) -> None:
        self.txn_id = txn_id
        self.gen = gen
        self.kind = kind  # "update" | "readonly" | "quasi"
        self.start_seq = start_seq
        self.start_time = start_time
        self.on_done = on_done
        self.meta = meta
        self.state = "running"  # running | waiting | committed | aborted
        self.reads: list[tuple[str, Version]] = []
        self.write_buffer: dict[str, Any] = {}
        self.pending_op: Read | Write | None = None
        self.result: Any = None
        self.commit_time: float | None = None

    @property
    def read_set(self) -> list[str]:
        """Objects read (committed versions only), in read order."""
        return [obj for obj, _ in self.reads]

    @property
    def write_set(self) -> list[str]:
        """Objects written, in first-write order."""
        return list(self.write_buffer)


class LocalScheduler:
    """The per-node strict-2PL scheduler."""

    def __init__(
        self,
        node: str,
        store: ObjectStore,
        sim: Simulator | None = None,
        action_delay: float = 0.0,
        apply_writes: ApplyFn | None = None,
    ) -> None:
        if action_delay > 0 and sim is None:
            raise SimulationError("action_delay requires a simulator")
        self.node = node
        self.store = store
        self.sim = sim
        self.action_delay = action_delay
        self._apply = apply_writes if apply_writes is not None else self._default_apply
        self.locks = LockTable()
        self.waits_for = WaitsForGraph()
        self.active: dict[str, TxnHandle] = {}
        self._next_start_seq = 0
        self._action_seq = 0
        self.action_history: list[ActionRecord] = []
        self.record_actions = False
        self.committed = 0
        self.aborted = 0
        self.deadlocks = 0

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        txn_id: str,
        body: Callable[[Any], Body],
        ctx: Any = None,
        kind: str = "update",
        on_done: DoneFn | None = None,
        meta: dict[str, Any] | None = None,
    ) -> TxnHandle:
        """Start a transaction; it runs as far as locks allow right away.

        ``on_done(handle, outcome, error)`` fires exactly once, at
        commit or abort.  The returned handle can be inspected but the
        generator must not be touched by the caller.
        """
        if txn_id in self.active:
            raise SimulationError(f"duplicate active txn id {txn_id!r}")
        now = self.sim.now if self.sim is not None else 0.0
        handle = TxnHandle(
            txn_id,
            body(ctx),
            kind,
            self._next_start_seq,
            now,
            on_done,
            meta or {},
        )
        self._next_start_seq += 1
        self.active[txn_id] = handle
        self._advance(handle, None)
        return handle

    def submit_quasi(
        self,
        txn_id: str,
        writes: Iterable[tuple[str, Version]],
        on_done: DoneFn | None = None,
        meta: dict[str, Any] | None = None,
    ) -> TxnHandle:
        """Install a quasi-transaction: X-lock and write every object.

        The pre-assigned origin versions ride in ``meta['versions']``;
        the apply callback installs them verbatim instead of minting new
        version numbers.
        """
        writes = list(writes)
        versions = {obj: version for obj, version in writes}

        def body(_ctx: Any) -> Body:
            for obj, version in writes:
                yield Write(obj, version.value)

        merged = dict(meta or {})
        merged["versions"] = versions
        return self.submit(txn_id, body, kind="quasi", on_done=on_done, meta=merged)

    # -- execution engine ----------------------------------------------------

    def _advance(self, handle: TxnHandle, send_value: Any) -> None:
        while handle.state == "running":
            try:
                op = handle.gen.send(send_value)
            except StopIteration as stop:
                handle.result = stop.value
                if handle.meta.get("hold"):
                    # Two-phase commit participant: the body finished and
                    # every lock is held, but nothing is applied until
                    # the coordinator decides (commit_prepared /
                    # abort_prepared).  See repro.core.groups.
                    handle.state = "prepared"
                    on_prepared = handle.meta.get("on_prepared")
                    if on_prepared is not None:
                        on_prepared(handle)
                    return
                self._commit(handle)
                return
            except TransactionAborted as abort_exc:
                self._abort(handle, abort_exc.reason)
                return
            outcome = self._perform(handle, op)
            if outcome is _BLOCKED:
                return
            if handle.state != "running":
                return  # aborted as a deadlock victim inside _perform
            send_value = outcome
            if self.action_delay > 0:
                self.sim.schedule(
                    self.action_delay,
                    lambda h=handle, v=send_value: self._continue(h, v),
                    label=f"step {handle.txn_id}",
                )
                return

    def _continue(self, handle: TxnHandle, send_value: Any) -> None:
        if handle.state == "running":
            self._advance(handle, send_value)

    def _perform(self, handle: TxnHandle, op: Read | Write) -> Any:
        if isinstance(op, Read):
            if op.obj in handle.write_buffer:
                return handle.write_buffer[op.obj]  # read-your-own-write
            if self.locks.acquire(handle.txn_id, op.obj, LockMode.S):
                version = self._read_version(handle, op.obj)
                handle.reads.append((op.obj, version))
                self._record(handle.txn_id, "r", op.obj)
                return version.value
            self._block(handle, op)
            return _BLOCKED
        if isinstance(op, Write):
            if self.locks.acquire(handle.txn_id, op.obj, LockMode.X):
                handle.write_buffer[op.obj] = op.value
                self._record(handle.txn_id, "w", op.obj)
                return None
            self._block(handle, op)
            return _BLOCKED
        raise SimulationError(
            f"transaction {handle.txn_id} yielded {op!r}; expected Read/Write"
        )

    def _block(self, handle: TxnHandle, op: Read | Write) -> None:
        mode = LockMode.S if isinstance(op, Read) else LockMode.X
        handle.state = "waiting"
        handle.pending_op = op
        blockers = self.locks.blockers_of(handle.txn_id, op.obj, mode)
        self.waits_for.block(handle.txn_id, blockers)
        cycle = self.waits_for.find_cycle()
        if cycle is not None:
            self.deadlocks += 1
            start_seqs = {t: h.start_seq for t, h in self.active.items()}
            # Never sacrifice a quasi-transaction when a local one is in
            # the cycle: an aborted quasi-transaction is a lost replica
            # update (mutual consistency breaks), whereas local clients
            # can retry.  Two quasi-transactions cannot deadlock with
            # each other — same-fragment installs are serialized and
            # different fragments touch disjoint objects — so a cycle
            # virtually always offers a local candidate.
            members = cycle[:-1] if cycle[0] == cycle[-1] else list(cycle)
            local_members = [
                m
                for m in members
                if m in self.active and self.active[m].kind != "quasi"
            ]
            candidates = local_members or members
            victim_id = choose_victim(list(candidates), start_seqs)
            victim = self.active.get(victim_id)
            if victim is not None:
                self._abort(victim, "deadlock victim")

    # -- terminal transitions ---------------------------------------------

    def _commit(self, handle: TxnHandle) -> None:
        handle.state = "committed"
        handle.commit_time = self.sim.now if self.sim is not None else 0.0
        try:
            self._apply(handle)
        except TransactionAborted as abort_exc:
            # The apply hook vetoed the commit (initiation-requirement or
            # read-restriction violation detected at commit time).  The
            # hook raises *before* installing anything, so aborting here
            # is clean.
            handle.state = "running"  # _abort expects a live handle
            self._abort(handle, abort_exc.reason)
            return
        self._record(handle.txn_id, "c", "")
        self.committed += 1
        self._finish(handle, TxnOutcome.COMMITTED, None)

    def _abort(self, handle: TxnHandle, reason: str) -> None:
        handle.state = "aborted"
        handle.gen.close()
        self.aborted += 1
        self._finish(
            handle, TxnOutcome.ABORTED, TransactionAborted(handle.txn_id, reason)
        )

    def _finish(
        self, handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
    ) -> None:
        self.active.pop(handle.txn_id, None)
        self.waits_for.remove(handle.txn_id)
        granted = self.locks.release_all(handle.txn_id)
        if handle.on_done is not None:
            handle.on_done(handle, outcome, error)
        self._resume_granted(granted)

    def _resume_granted(self, granted: list[tuple[str, str, LockMode]]) -> None:
        for txn_id, obj, _mode in granted:
            waiter = self.active.get(txn_id)
            if waiter is None or waiter.state != "waiting":
                continue
            op = waiter.pending_op
            if op is None or op.obj != obj:
                continue
            waiter.state = "running"
            waiter.pending_op = None
            self.waits_for.clear_waiting(txn_id)
            if isinstance(op, Read):
                version = self._read_version(waiter, op.obj)
                waiter.reads.append((op.obj, version))
                self._record(txn_id, "r", op.obj)
                self._advance(waiter, version.value)
            else:
                waiter.write_buffer[op.obj] = op.value
                self._record(txn_id, "w", op.obj)
                self._advance(waiter, None)

    def _read_version(self, handle: TxnHandle, obj: str) -> Version:
        """The version a read observes.

        Remote-lock strategies (Section 4.1) pin the values read at the
        lock site into ``meta['remote_versions']`` — the lock guarantees
        those stay current until release, whereas the local replica may
        lag behind the fragment's update stream.
        """
        overrides: dict[str, Version] | None = handle.meta.get("remote_versions")
        if overrides and obj in overrides:
            return overrides[obj]
        return self.store.read_version(obj)

    # -- two-phase commit participants -----------------------------------------

    def commit_prepared(self, txn_id: str) -> None:
        """Commit a transaction parked in the prepared state."""
        handle = self.active.get(txn_id)
        if handle is None or handle.state != "prepared":
            raise SimulationError(f"{txn_id!r} is not prepared")
        handle.state = "running"  # _commit expects a live handle
        self._commit(handle)

    def abort_prepared(self, txn_id: str, reason: str = "coordinator abort") -> None:
        """Abort a prepared transaction, releasing its locks."""
        handle = self.active.get(txn_id)
        if handle is None or handle.state != "prepared":
            raise SimulationError(f"{txn_id!r} is not prepared")
        self._abort(handle, reason)

    # -- external (remote) locks ----------------------------------------------

    def try_lock_external(self, owner: str, objs: Iterable[str]) -> bool:
        """All-or-nothing S locks on behalf of a remote transaction.

        Used by the Section 4.1 control strategy: the home node of a
        fragment's agent grants shared locks to remote readers.  The
        grant is atomic — either every object is immediately lockable
        (compatible with holders, empty queue) and all are taken, or
        nothing is taken and the caller retries later.  No queuing, so
        remote requests can never deadlock with local transactions;
        they simply bounce.
        """
        objs = list(objs)
        for obj in objs:
            holders = self.locks.holders_of(obj)
            if any(mode is LockMode.X for txn, mode in holders.items()):
                return False
            if self.locks.queued_for(obj):
                return False
        for obj in objs:
            granted = self.locks.acquire(owner, obj, LockMode.S)
            assert granted, "probe said lockable but acquire failed"
        return True

    def release_external(self, owner: str) -> None:
        """Release all locks held by a remote owner; resume local waiters."""
        granted = self.locks.release_all(owner)
        self.waits_for.remove(owner)
        self._resume_granted(granted)

    # -- defaults and recording -----------------------------------------------

    def _default_apply(self, handle: TxnHandle) -> None:
        """Standalone apply: install buffered writes with fresh versions.

        Used when the scheduler is exercised without a
        :class:`~repro.core.node.DatabaseNode` on top (unit tests,
        micro-benchmarks).  Quasi-transactions install their pre-assigned
        versions.
        """
        now = self.sim.now if self.sim is not None else 0.0
        preassigned: dict[str, Version] = handle.meta.get("versions", {})
        for obj, value in handle.write_buffer.items():
            if obj in preassigned:
                self.store.install(obj, preassigned[obj])
                continue
            previous_no = (
                self.store.read_version(obj).version_no
                if self.store.exists(obj)
                else -1
            )
            self.store.install(
                obj, Version(value, handle.txn_id, previous_no + 1, now)
            )

    def _record(self, txn: str, kind: str, obj: str) -> None:
        if self.record_actions:
            self.action_history.append(
                ActionRecord(txn, kind, obj, self._action_seq)
            )
            self._action_seq += 1


class _Blocked:
    """Sentinel: the transaction is parked on a lock queue."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<blocked>"


_BLOCKED = _Blocked()
