"""Committed-transaction records and the global history recorder.

The serialization-graph constructions of the paper's appendix
(Definitions 8.2 and 8.3) are computed *after the fact* from what
actually happened in a run.  This module defines the facts we record:

* :class:`CommittedTxn` — one transaction committed at its home node,
  with the exact versions it read (reads-from) and the versions it
  produced;
* :class:`InstallRecord` — one quasi-transaction installed at one
  remote replica (with local install order preserved).

One :class:`HistoryRecorder` is shared by every node in a simulated
system; all checkers (:mod:`repro.core.gsg`,
:mod:`repro.core.properties`) consume it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ReadObservation:
    """A read: object name plus the identity of the version observed."""

    obj: str
    writer: str
    version_no: int


@dataclass(frozen=True)
class WriteRecord:
    """A committed write: object, the version number produced, the value."""

    obj: str
    version_no: int
    value: Any


@dataclass
class CommittedTxn:
    """One transaction committed at its home node.

    ``fragment`` is the fragment updated (None for read-only
    transactions).  ``stream_seq`` is the position in the fragment's
    update stream (the reliable-broadcast sequence number), None for
    read-only transactions.  ``agent`` is the initiating agent's name.
    """

    txn_id: str
    agent: str
    fragment: str | None
    node: str
    commit_time: float
    stream_seq: int | None
    kind: str  # "update" | "readonly"
    reads: list[ReadObservation] = field(default_factory=list)
    writes: list[WriteRecord] = field(default_factory=list)

    @property
    def is_update(self) -> bool:
        """True if the transaction wrote anything."""
        return bool(self.writes)


@dataclass(frozen=True)
class InstallRecord:
    """A quasi-transaction installed at a (remote) replica."""

    node: str
    txn_id: str
    fragment: str
    stream_seq: int
    time: float


class HistoryRecorder:
    """Collects the global history of a simulated run."""

    def __init__(self) -> None:
        self.committed: list[CommittedTxn] = []
        self.installs: list[InstallRecord] = []
        self._by_id: dict[str, CommittedTxn] = {}
        self.aborted: list[tuple[str, str]] = []  # (txn_id, reason)
        self.rejected: list[tuple[str, str]] = []  # (txn_id, reason)
        self.orphaned: dict[str, str] = {}  # txn_id -> reason

    # -- recording ----------------------------------------------------------

    def record_commit(self, record: CommittedTxn) -> None:
        """Record a commit at its home node."""
        self.committed.append(record)
        self._by_id[record.txn_id] = record

    def record_install(self, record: InstallRecord) -> None:
        """Record a quasi-transaction install at a replica."""
        self.installs.append(record)

    def record_abort(self, txn_id: str, reason: str) -> None:
        """Record a local abort (deadlock victim, body abort)."""
        self.aborted.append((txn_id, reason))

    def record_rejection(self, txn_id: str, reason: str) -> None:
        """Record an availability loss: the system refused the request."""
        self.rejected.append((txn_id, reason))

    def record_orphan(self, txn_id: str, reason: str) -> None:
        """Mark a committed transaction as discarded by a failover cut.

        The paper's Section 2 orphans made explicit: the transaction
        committed at its home node but its effects were declared lost
        by an epoch cut before propagating.  Serializability is judged
        over the *surviving* history — an orphan's stream slot is
        legitimately re-minted by the successor in the new epoch.
        """
        self.orphaned.setdefault(txn_id, reason)

    # -- queries ---------------------------------------------------------

    def transaction(self, txn_id: str) -> CommittedTxn:
        """Lookup by id; raises KeyError if unknown."""
        return self._by_id[txn_id]

    @property
    def surviving(self) -> list[CommittedTxn]:
        """Committed transactions minus failover orphans.

        Identical to ``committed`` (same list object, no copy) on runs
        without epoch cuts, so the common path costs nothing.
        """
        if not self.orphaned:
            return self.committed
        return [t for t in self.committed if t.txn_id not in self.orphaned]

    def observed_orphan(self, txn: CommittedTxn) -> bool:
        """True if any of the transaction's reads saw a discarded write.

        Such observations belong to the cut-off branch of history: the
        version they name was re-minted with a different value by the
        successor, so comparing them against surviving version numbers
        would fabricate dependencies that never existed.
        """
        if not self.orphaned:
            return False
        return any(read.writer in self.orphaned for read in txn.reads)

    def updates_of_fragment(self, fragment: str) -> list[CommittedTxn]:
        """The set ``U(F_i)`` of the paper, in stream order."""
        selected = [
            t for t in self.surviving
            if t.fragment == fragment and t.is_update
        ]
        selected.sort(key=lambda t: (t.stream_seq if t.stream_seq is not None
                                     else -1, t.commit_time))
        return selected

    def version_order(self) -> dict[str, list[tuple[int, str]]]:
        """Per object: committed ``(version_no, txn_id)`` in version order.

        This is the version order induced by each fragment's update
        stream, which all replicas install in the same order under FIFO
        broadcast.
        """
        order: dict[str, list[tuple[int, str]]] = defaultdict(list)
        for txn in self.surviving:
            for write in txn.writes:
                order[write.obj].append((write.version_no, txn.txn_id))
        for versions in order.values():
            versions.sort()
        return dict(order)

    def installs_at(self, node: str) -> list[InstallRecord]:
        """Install records at one node, in install order."""
        return [r for r in self.installs if r.node == node]

    # -- summary counters ----------------------------------------------------

    @property
    def commit_count(self) -> int:
        """Total committed transactions."""
        return len(self.committed)

    @property
    def update_count(self) -> int:
        """Committed update transactions."""
        return sum(1 for t in self.committed if t.is_update)
