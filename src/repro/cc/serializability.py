"""Conflict-serializability testing for single-site action histories.

Used to validate the local scheduler ("local concurrency control
mechanisms will guarantee that all the l.s.g.'s are acyclic", appendix
footnote): the scheduler can emit its raw action history and the tests
assert conflict serializability here, independently of the heavier
distributed machinery in :mod:`repro.core.gsg`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.graphs import Digraph


@dataclass(frozen=True)
class ActionRecord:
    """One executed action in a single-site history.

    ``kind`` is ``'r'`` or ``'w'``; ``seq`` is the global position of
    the action in the site's history.
    """

    txn: str
    kind: str
    obj: str
    seq: int


def conflict_graph(actions: Iterable[ActionRecord]) -> Digraph:
    """The conflict (serialization) graph of a single-site history.

    Nodes are transaction ids; there is an edge ``Ti -> Tj`` when an
    action of ``Ti`` precedes and conflicts with an action of ``Tj``
    (same object, at least one write, different transactions).
    """
    ordered = sorted(actions, key=lambda a: a.seq)
    graph = Digraph()
    per_obj: dict[str, list[ActionRecord]] = {}
    for action in ordered:
        graph.add_node(action.txn)
        per_obj.setdefault(action.obj, []).append(action)
    for history in per_obj.values():
        for i, first in enumerate(history):
            for second in history[i + 1 :]:
                if first.txn == second.txn:
                    continue
                if first.kind == "w" or second.kind == "w":
                    graph.add_edge(first.txn, second.txn)
    return graph


def is_conflict_serializable(actions: Iterable[ActionRecord]) -> bool:
    """True iff the history's conflict graph is acyclic."""
    return conflict_graph(actions).is_acyclic()


def equivalent_serial_order(actions: Iterable[ActionRecord]) -> list[str]:
    """A serial transaction order equivalent to the history.

    Raises :class:`ValueError` if the history is not conflict
    serializable.
    """
    return [str(t) for t in conflict_graph(actions).topological_order()]
