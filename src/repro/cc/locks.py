"""A shared/exclusive lock table with FIFO queuing and upgrades."""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass


class LockMode(enum.Enum):
    """Lock modes: shared (read) and exclusive (write)."""

    S = "S"
    X = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.S and requested is LockMode.S


@dataclass
class _Waiter:
    txn: str
    mode: LockMode


class LockTable:
    """Per-object S/X locks with strict-FIFO waiting.

    Grant policy: a request is granted immediately iff it is compatible
    with all current holders *and* no conflicting request is already
    queued (strict FIFO — prevents reader streams from starving a
    queued writer).  ``S -> X`` upgrade is granted when the requester is
    the sole holder; otherwise it waits at the *front* of the queue
    (upgrades get priority since the requester already blocks others).
    """

    def __init__(self) -> None:
        self._holders: dict[str, dict[str, LockMode]] = defaultdict(dict)
        self._queue: dict[str, list[_Waiter]] = defaultdict(list)
        self.grants = 0
        self.waits = 0
        self.upgrades = 0

    # -- acquisition ------------------------------------------------------

    def acquire(self, txn: str, obj: str, mode: LockMode) -> bool:
        """Try to acquire; returns True if granted, else queues ``txn``.

        Re-requesting a mode already held (or S while holding X) is a
        no-op grant.
        """
        holders = self._holders[obj]
        held = holders.get(txn)
        if held is LockMode.X or held is mode:
            return True
        if held is LockMode.S and mode is LockMode.X:
            others = [t for t in holders if t != txn]
            if not others:
                holders[txn] = LockMode.X
                self.upgrades += 1
                return True
            # Upgrade waits at the front of the queue.
            self._queue[obj].insert(0, _Waiter(txn, mode))
            self.waits += 1
            return False
        queue = self._queue[obj]
        compatible_with_holders = all(
            _compatible(m, mode) for t, m in holders.items() if t != txn
        )
        if compatible_with_holders and not queue:
            holders[txn] = mode
            self.grants += 1
            return True
        queue.append(_Waiter(txn, mode))
        self.waits += 1
        return False

    # -- release -----------------------------------------------------------

    def release_all(self, txn: str) -> list[tuple[str, str, LockMode]]:
        """Release every lock held by ``txn`` and drop its queued requests.

        Returns newly granted requests as ``(txn, obj, mode)`` triples,
        in grant order, so the scheduler can resume those transactions.
        """
        granted: list[tuple[str, str, LockMode]] = []
        for obj in list(self._holders):
            if txn in self._holders[obj]:
                del self._holders[obj][txn]
            queue = self._queue[obj]
            queue[:] = [w for w in queue if w.txn != txn]
            granted.extend(self._drain(obj))
        return granted

    def _drain(self, obj: str) -> list[tuple[str, str, LockMode]]:
        """Grant queued requests from the front while compatible."""
        granted: list[tuple[str, str, LockMode]] = []
        holders = self._holders[obj]
        queue = self._queue[obj]
        while queue:
            waiter = queue[0]
            held = holders.get(waiter.txn)
            if held is LockMode.X or held is waiter.mode:
                # Already covered (e.g. a queued S behind the same
                # transaction's now-granted X upgrade): never overwrite
                # a held X with a weaker mode.
                queue.pop(0)
                granted.append((waiter.txn, obj, held))
                continue
            if held is LockMode.S and waiter.mode is LockMode.X:
                others = [t for t in holders if t != waiter.txn]
                if others:
                    break
                holders[waiter.txn] = LockMode.X
                self.upgrades += 1
            else:
                compatible = all(
                    _compatible(m, waiter.mode)
                    for t, m in holders.items()
                    if t != waiter.txn
                )
                if not compatible:
                    break
                holders[waiter.txn] = waiter.mode
                self.grants += 1
            queue.pop(0)
            granted.append((waiter.txn, obj, waiter.mode))
        return granted

    # -- introspection (deadlock detection needs these) --------------------

    def holders_of(self, obj: str) -> dict[str, LockMode]:
        """Current holders of ``obj`` (copy)."""
        return dict(self._holders[obj])

    def queued_for(self, obj: str) -> list[tuple[str, LockMode]]:
        """Queued waiters for ``obj``, front first."""
        return [(w.txn, w.mode) for w in self._queue[obj]]

    def blockers_of(self, txn: str, obj: str, mode: LockMode) -> set[str]:
        """Transactions ``txn`` is waiting on for ``obj``.

        Includes conflicting holders and conflicting waiters queued
        ahead of ``txn`` (FIFO order can itself induce waiting).
        """
        blockers: set[str] = set()
        for holder, held in self._holders[obj].items():
            if holder != txn and not _compatible(held, mode):
                blockers.add(holder)
        for waiter in self._queue[obj]:
            if waiter.txn == txn:
                break
            if not (_compatible(waiter.mode, mode)):
                blockers.add(waiter.txn)
        return blockers

    def held_by(self, txn: str) -> list[tuple[str, LockMode]]:
        """All locks currently held by ``txn``."""
        return [
            (obj, holders[txn])
            for obj, holders in self._holders.items()
            if txn in holders
        ]
