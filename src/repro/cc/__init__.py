"""Local concurrency control substrate.

The paper assumes that "at every node in the system, a local
concurrency control mechanism is implemented" producing serializable
local schedules, with quasi-transactions applied atomically and in
per-sender order (Section 3.2).  This package supplies that mechanism:

* :mod:`repro.cc.locks` — a shared/exclusive lock table,
* :mod:`repro.cc.deadlock` — waits-for-graph deadlock detection,
* :mod:`repro.cc.scheduler` — a strict two-phase-locking scheduler that
  drives generator-style transaction bodies,
* :mod:`repro.cc.history` — committed-transaction records consumed by
  the serialization-graph builders in :mod:`repro.core.gsg`,
* :mod:`repro.cc.serializability` — conflict-graph serializability
  testing for single-site action histories.

Transaction bodies are generator functions that yield
:class:`~repro.cc.ops.Read` and :class:`~repro.cc.ops.Write` operations;
the scheduler feeds read values back in.  Writes are buffered and
applied atomically at commit (deferred update), which is what makes
quasi-transaction installation atomic — Property 2 of the paper.
"""

from repro.cc.history import (
    CommittedTxn,
    HistoryRecorder,
    InstallRecord,
    ReadObservation,
    WriteRecord,
)
from repro.cc.locks import LockMode, LockTable
from repro.cc.ops import Read, Write
from repro.cc.scheduler import LocalScheduler, TxnHandle, TxnOutcome
from repro.cc.serializability import (
    ActionRecord,
    conflict_graph,
    equivalent_serial_order,
    is_conflict_serializable,
)

__all__ = [
    "ActionRecord",
    "CommittedTxn",
    "HistoryRecorder",
    "InstallRecord",
    "LocalScheduler",
    "LockMode",
    "LockTable",
    "Read",
    "ReadObservation",
    "TxnHandle",
    "TxnOutcome",
    "Write",
    "WriteRecord",
    "conflict_graph",
    "equivalent_serial_order",
    "is_conflict_serializable",
]
