"""Operations yielded by transaction bodies.

A transaction body is a generator function of one argument (an opaque
context the workload may use for parameters) that yields these ops::

    def withdraw(ctx):
        balance = yield Read(f"balance:{ctx['account']}")
        if balance >= ctx['amount']:
            yield Write(f"balance:{ctx['account']}", balance - ctx['amount'])

The scheduler sends the read value back into the generator; ``Write``
yields resume with ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Read:
    """Request the current committed value of one object."""

    obj: str


@dataclass(frozen=True)
class Write:
    """Buffer a new value for one object (applied at commit)."""

    obj: str
    value: Any
