"""E18 — end-to-end event throughput of the flattened hot path.

Runs the same E15-class workload (one hot fragment, a mid-run
partition and heal, a convergence probe) twice in one process:

* **baseline** — per-call Dijkstra path queries
  (``topology.cache_paths = False``), the one pre-flattening
  configuration still reachable now that the legacy binary-heap
  scheduler has been removed;
* **flattened** — the shipping configuration: the versioned
  path-latency cache on.

(Earlier records also swapped the scheduler core between sides; since
the heap's removal both sides run the calendar-queue / event-wheel
scheduler, so the measured speedup isolates the path-cache win.)

Both sides must finish with **bit-identical** final-state hashes and
event counts — the throughput win is only admissible if the schedule is
provably unchanged.  Results are recorded in ``BENCH_scale.json`` at
the repo root; CI re-runs a reduced configuration and fails if the
*relative* speedup (which is machine-independent, unlike absolute
events/second) regresses more than ``tolerance`` against the committed
file.  Run it directly with ``python -m repro.cli scale-bench``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass

from repro.cc.ops import Read, Write
from repro.core.properties import check_mutual_consistency
from repro.core.system import FragmentedDatabase
from repro.runtime.api import wall_clock

#: Default full-run shape (the reduced CI smoke passes smaller values).
DEFAULT_NODES = 32
DEFAULT_UPDATES = 400

#: The committed benchmark record (repo root).
BENCH_FILE = "BENCH_scale.json"

#: CI regression tolerance on the relative speedup.
DEFAULT_TOLERANCE = 0.20


def state_hash(db: FragmentedDatabase) -> str:
    """Digest of every replica's store: (node, obj, value, writer, vno)."""
    digest = hashlib.sha256()
    for name in sorted(db.nodes):
        store = db.nodes[name].store
        for obj in sorted(store.names):
            version = store.read_version(obj)
            digest.update(
                f"{name}|{obj}|{version.value!r}|{version.writer}|"
                f"{version.version_no}\n".encode()
            )
    return digest.hexdigest()


@dataclass(frozen=True)
class SideResult:
    """One side (baseline or flattened) of the A/B throughput run."""

    path_cache: bool
    nodes: int
    updates: int
    committed: int
    events_fired: int
    messages_sent: int
    elapsed_s: float
    throughput_eps: float  # events fired per wall-clock second
    mutually_consistent: bool
    state: str


def run_side(
    nodes: int = DEFAULT_NODES,
    updates: int = DEFAULT_UPDATES,
    baseline: bool = False,
) -> SideResult:
    """Run the E18 workload once and time it.

    ``baseline=True`` disables the path-latency cache, reproducing the
    still-reachable part of the pre-flattening configuration in the
    same process so the comparison is apples-to-apples.
    """
    db = FragmentedDatabase([f"N{i}" for i in range(nodes)])
    db.topology.cache_paths = not baseline
    db.add_agent("ag", home_node="N0")
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()

    def bump(_ctx):
        value = yield Read("x")
        yield Write("x", value + 1)

    trackers = []
    # The E15 phase structure, scaled: updates spread over t=0..60,
    # half the mesh severed for t=10..80, convergence probed after.
    step = 60.0 / updates
    for i in range(updates):
        db.sim.schedule_at(
            i * step,
            lambda: trackers.append(db.submit_update("ag", bump, writes=["x"])),
        )
    names = [f"N{i}" for i in range(nodes)]
    half, other = names[: nodes // 2], names[nodes // 2 :]
    db.sim.schedule_at(10.0, lambda: db.partitions.partition_now([half, other]))
    heal_at = 80.0
    db.sim.schedule_at(heal_at, db.partitions.heal_now)

    def probe():
        if db.sim.pending:
            db.sim.schedule(0.25, probe)

    db.sim.schedule_at(heal_at, probe)

    # Wall time flows through the explicit Clock interface: the *only*
    # real-clock read in the simulator-backed analysis code, and it
    # never feeds back into scheduling — determinism audits grep for
    # wall_clock()/perf_counter and must find nothing else.
    wall = wall_clock()
    start = wall.now()
    db.quiesce()
    elapsed = wall.now() - start

    events = db.sim.events_fired
    return SideResult(
        path_cache=not baseline,
        nodes=nodes,
        updates=updates,
        committed=sum(1 for t in trackers if t.succeeded),
        events_fired=events,
        messages_sent=db.network.messages_sent,
        elapsed_s=round(elapsed, 4),
        throughput_eps=round(events / elapsed, 1) if elapsed > 0 else 0.0,
        mutually_consistent=check_mutual_consistency(
            db.nodes.values()
        ).consistent,
        state=state_hash(db),
    )


def run_scale_bench(
    nodes: int = DEFAULT_NODES,
    updates: int = DEFAULT_UPDATES,
    repeats: int = 1,
) -> dict:
    """The full E18 A/B comparison; returns the ``BENCH_scale.json`` dict.

    With ``repeats > 1`` each side runs that many times and the fastest
    wall-clock sample wins (standard benchmarking practice: the minimum
    is the least noise-contaminated estimate).  Determinism checks
    apply to every repeat, not just the fastest.
    """
    baselines = [
        run_side(nodes, updates, baseline=True) for _ in range(repeats)
    ]
    flattened = [
        run_side(nodes, updates, baseline=False) for _ in range(repeats)
    ]
    states = {side.state for side in baselines + flattened}
    events = {side.events_fired for side in baselines + flattened}
    best_base = min(baselines, key=lambda side: side.elapsed_s)
    best_flat = min(flattened, key=lambda side: side.elapsed_s)
    speedup = (
        best_flat.throughput_eps / best_base.throughput_eps
        if best_base.throughput_eps
        else 0.0
    )
    return {
        "benchmark": "E18-scale-bench",
        "nodes": nodes,
        "updates": updates,
        "repeats": repeats,
        "baseline": asdict(best_base),
        "flattened": asdict(best_flat),
        "speedup": round(speedup, 2),
        "state_match": len(states) == 1,
        "events_match": len(events) == 1,
    }


def check_regression(
    result: dict, committed: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[bool, str]:
    """Gate a fresh result against the committed record.

    Compares the *relative* speedup, not absolute events/second, so the
    gate holds across machines of different speeds.  Determinism
    failures (hash or event-count mismatch) always fail regardless of
    throughput.
    """
    if not result.get("state_match"):
        return False, "final-state hashes diverge between configurations"
    if not result.get("events_match"):
        return False, "event counts diverge between configurations"
    committed_speedup = committed.get("speedup", 0.0)
    floor = committed_speedup * (1.0 - tolerance)
    speedup = result.get("speedup", 0.0)
    if speedup < floor:
        return False, (
            f"speedup regressed: {speedup:.2f}x vs committed "
            f"{committed_speedup:.2f}x (floor {floor:.2f}x at "
            f"{tolerance:.0%} tolerance)"
        )
    return True, (
        f"speedup {speedup:.2f}x (committed {committed_speedup:.2f}x, "
        f"floor {floor:.2f}x)"
    )


def load_committed(path: str = BENCH_FILE) -> dict | None:
    """The committed benchmark record, or None if absent."""
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_result(result: dict, path: str = BENCH_FILE) -> None:
    """Write the benchmark record as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
