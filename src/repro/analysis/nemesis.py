"""The chaos harness ("nemesis"): composed fault schedules from one seed.

Generalizes :mod:`repro.analysis.torture` — where the torture harness
scripts its own partitions inline, the nemesis draws a complete
:class:`~repro.net.faults.FaultPlan` (steady message loss, duplication,
latency jitter, loss bursts, link flaps, node crashes, partitions) and
a randomized workload (update traffic + agent moves) from a *single*
integer seed, runs them against any movement protocol and pipeline
configuration, then checks the Section 4.4 guarantee table after
quiescence.

Two deliberate stream splits make the harness useful as an experiment:

* the **workload** stream and the **fault-plan** stream are separate
  forks of the seed, so the same seed produces the *identical* workload
  under different fault configurations — which is what lets E16 compare
  a faulty run's final state hash against the fault-free run of the
  same seed (reliable protocols must converge to the same state);
* episode counts are configuration, not chance: a config with
  ``n_crashes=0`` draws nothing from the crash dimension, leaving the
  other dimensions' draws untouched.

Safety rails mirroring the paper's scope: crashes carry
``unless_agent_home`` (the movement protocols handle home failure via
explicit moves, not by executing on a dead node — E14 covers home-node
failover separately), and scheduled moves are skipped if the
destination is down when the move fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.audit import audit_events
from repro.analysis.torture import GUARANTEES, PROTOCOLS, _try_move
from repro.obs.availability import account_events
from repro.availability import AvailabilityConfig
from repro.cc.ops import Read, Write
from repro.core.system import FragmentedDatabase
from repro.core.transaction import RequestStatus, scripted_body
from repro.net.faults import CrashEpisode, FaultPlan, LinkFlap, LossBurst
from repro.net.partition import PartitionSpec
from repro.net.reliable import ReliableConfig
from repro.recovery import RecoveryConfig
from repro.replication import PipelineConfig
from repro.sim.rng import SeededRng


@dataclass
class NemesisConfig:
    """Shape of one chaos run: workload size plus fault intensities.

    ``loss_rate``/``dup_rate``/``jitter`` are the steady message
    faults; the ``n_*`` knobs say how many scheduled episodes of each
    kind the plan draws.  Set every fault knob to zero for a fault-free
    baseline run of the same workload.  ``reliable`` forwards to
    :class:`FragmentedDatabase` (``None`` = auto-on when message faults
    are armed).  ``checkpoint_every`` arms the recovery subsystem
    (checkpoint every K installs, log compaction, delta catch-up);
    ``recovery_grace`` sets how long an unreachable replica may hold
    the compaction watermark before being excluded from it.
    """

    n_nodes: int = 4
    n_updates: int = 15
    n_moves: int = 3
    horizon: float = 200.0
    loss_rate: float = 0.1
    dup_rate: float = 0.05
    jitter: float = 2.0
    n_bursts: int = 0
    n_flaps: int = 0
    n_crashes: int = 0
    n_partitions: int = 1
    pipeline: PipelineConfig | None = None
    reliable: ReliableConfig | bool | None = None
    checkpoint_every: int | None = None
    recovery_grace: float | None = 60.0
    #: ``replication_factor`` < n_nodes restricts every fragment to a
    #: rendezvous-placed replica set of that size; ``n_quorum_reads``
    #: schedules that many read-only transactions at nodes *outside*
    #: the fragment's replica set, exercising the version-vote fallback
    #: under whatever faults the plan draws.  Both default off, leaving
    #: existing seeds' schedules untouched.
    replication_factor: int | None = None
    n_quorum_reads: int = 0
    #: ``n_agent_kills`` crash-stops the agent's *current home* (no
    #: ``unless_agent_home`` rail — this knob exists to kill the home)
    #: at drawn times; ``failover`` arms the availability supervisor so
    #: a killed home is detected and the agent fails over to a live
    #: replica.  Kill draws come after every other dimension's, guarded
    #: by the count, so zeroed knobs leave existing seeds' schedules
    #: bit-identical.
    n_agent_kills: int = 0
    failover: bool = False

    def message_faults_only(self) -> bool:
        """True when the plan perturbs messages but never connectivity.

        Connectivity episodes (crashes, partitions, flaps) feed the
        protocols' *decisions* (majority checks see a different quorum)
        and so legitimately change which transactions commit; pure
        message faults must not, which is exactly the E16 hash-match
        claim.  Bursts only raise the loss rate, so they are message
        faults too.
        """
        return not (
            self.n_flaps
            or self.n_crashes
            or self.n_partitions
            or self.n_agent_kills
        )


@dataclass
class NemesisResult:
    """Outcome of one chaos run, guarantee flags plus fault/overhead data."""

    seed: int
    protocol: str
    submitted: int
    committed: int
    moves_requested: int
    mutually_consistent: bool
    fragmentwise: bool
    drops: int
    dups: int
    retransmits: int
    dups_dropped: int
    exhausted: int
    messages_sent: int
    converge_time: float
    state_hash: str
    audit_ok: bool = True
    audit_violations: int = 0
    audit_first: str = ""
    checkpoints: int = 0
    archive_pruned: int = 0
    snapshots_shipped: int = 0
    delta_qts_shipped: int = 0
    quorum_reads: int = 0
    quorum_served: int = 0
    quorum_timeouts: int = 0
    quorum_retries: int = 0
    suspicions: int = 0
    failovers: int = 0
    epoch_cuts: int = 0
    demotions: int = 0
    updates_blocked: int = 0
    #: Accountant-attributed write availability: mean per-fragment
    #: fraction of the run each fragment accepted updates, and the
    #: longest single unavailability window (0.0 when none opened).
    write_availability: float = 1.0
    worst_window: float = 0.0
    unavailability_causes: dict[str, float] | None = None

    def respects_guarantees(self) -> bool:
        """True iff the run satisfied its protocol's promised matrix.

        Includes the offline lineage audit: a run whose final state
        hashes match can still have installed a transaction twice or
        out of stream order along the way, and only the trace knows.
        """
        required = GUARANTEES[self.protocol]
        if required["mc"] and not self.mutually_consistent:
            return False
        if required["fw"] and not self.fragmentwise:
            return False
        return self.audit_ok


def build_fault_plan(
    rng: SeededRng, nodes: list[str], config: NemesisConfig
) -> FaultPlan:
    """Draw one complete fault schedule from the plan stream.

    Dimension order (bursts, flaps, crashes, partitions) is fixed and
    each dimension draws only if its count is non-zero, so zeroing one
    knob leaves the other dimensions' schedules identical.
    """
    horizon = config.horizon
    bursts = []
    for _ in range(config.n_bursts):
        start = rng.uniform(0.0, horizon * 0.6)
        bursts.append(
            LossBurst(start, start + rng.uniform(5.0, 20.0),
                      rng.uniform(0.2, 0.5))
        )
    flaps = []
    for _ in range(config.n_flaps):
        a, b = rng.sample(nodes, 2)
        flaps.append(
            LinkFlap(rng.uniform(0.0, horizon * 0.7), a, b,
                     rng.uniform(2.0, 15.0))
        )
    crashes = []
    for _ in range(config.n_crashes):
        node = rng.choice(nodes)
        at = rng.uniform(0.0, horizon * 0.5)
        crashes.append(
            CrashEpisode(node, at, at + rng.uniform(10.0, 40.0),
                         unless_agent_home=True)
        )
    partitions = []
    for index in range(config.n_partitions):
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        cut_at = rng.randint(1, len(nodes) - 1)
        start = rng.uniform(0.0, horizon * 0.5)
        partitions.append(
            PartitionSpec(
                start,
                rng.uniform(start + 5.0, horizon * 0.9),
                [shuffled[:cut_at], shuffled[cut_at:]],
                label=f"nemesis-{index}",
            )
        )
    return FaultPlan(
        loss_rate=config.loss_rate,
        dup_rate=config.dup_rate,
        jitter=config.jitter,
        bursts=tuple(bursts),
        flaps=tuple(flaps),
        crashes=tuple(crashes),
        partitions=tuple(partitions),
    )


def run_nemesis(
    seed: int,
    protocol_name: str,
    config: NemesisConfig | None = None,
    trace_path: str | None = None,
) -> NemesisResult:
    """One seeded chaos run against one movement protocol.

    ``trace_path`` appends the run's structured trace events (fault
    drops, retransmissions, partitions, …) to that JSONL file with a
    ``run`` context of ``{protocol}@{seed}`` — the chaos CLI and the CI
    smoke job upload this file when a run breaks its guarantees.

    Tracing is always enabled (ring buffer at minimum): after
    quiescence the run's events are replayed through the offline
    lineage auditor (:mod:`repro.analysis.audit`), and the verdict
    lands in ``NemesisResult.audit_ok`` / ``respects_guarantees``.
    """
    config = config or NemesisConfig()
    root = SeededRng(seed)
    workload_rng = root.fork("workload")
    plan_rng = root.fork("plan")
    nodes = [f"N{i}" for i in range(config.n_nodes)]
    plan = build_fault_plan(plan_rng, nodes, config)
    # Agent-kill draws come from the same plan stream, strictly after
    # the FaultPlan's own dimensions and only when the knob is armed, so
    # a config with n_agent_kills=0 replays existing seeds unchanged.
    agent_kills: list[tuple[float, float]] = []
    if config.n_agent_kills:
        for _ in range(config.n_agent_kills):
            at = plan_rng.uniform(
                config.horizon * 0.15, config.horizon * 0.55
            )
            agent_kills.append((at, plan_rng.uniform(25.0, 45.0)))
    empty = not (
        plan.message_faults or plan.flaps or plan.crashes or plan.partitions
    )
    recovery = None
    if config.checkpoint_every is not None:
        recovery = RecoveryConfig(
            checkpoint_every=config.checkpoint_every,
            grace=config.recovery_grace,
        )
    db = FragmentedDatabase(
        nodes,
        movement=PROTOCOLS[protocol_name](),
        seed=seed,
        pipeline=config.pipeline,
        faults=None if empty else plan,
        reliable=config.reliable,
        recovery=recovery,
        replication_factor=config.replication_factor,
        availability=AvailabilityConfig() if config.failover else None,
    )
    db.enable_tracing(
        trace_path,
        append=True,
        context={"run": f"{protocol_name}@{seed}"},
    )
    db.add_agent("ag", home_node=nodes[0])
    objects = ["u", "v", "w"]
    db.add_fragment("F", agent="ag", objects=objects)
    db.load({obj: 0 for obj in objects})
    db.finalize()
    if config.failover:
        db.availability.start(until=config.horizon)

    def kill_home(down_for: float) -> None:
        # Kill whichever node is the agent's home *when the kill fires*
        # (a scheduled move may have relocated it since the draw).
        home = db.agents["ag"].home_node
        if db.nodes[home].down:
            return
        db.fail_node(home)
        db.sim.schedule(
            down_for,
            lambda name=home: (
                db.recover_node(name) if db.nodes[name].down else None
            ),
            label=f"nemesis agent-kill recovery {home}",
        )

    for at, down_for in agent_kills:
        db.sim.schedule_at(
            at, lambda d=down_for: kill_home(d), label="nemesis agent-kill"
        )

    trackers = []

    def submit(index: int) -> None:
        chosen = [obj for obj in objects if workload_rng.bernoulli(0.5)] or [
            workload_rng.choice(objects)
        ]
        value = workload_rng.randint(1, 10_000)

        def body(_ctx):
            total = 0
            for obj in chosen:
                observed = yield Read(obj)
                total += observed
            for obj in chosen:
                yield Write(obj, total + value)

        trackers.append(
            db.submit_update(
                "ag", body, reads=chosen, writes=chosen, txn_id=f"T{index}"
            )
        )

    for index in range(config.n_updates):
        db.sim.schedule_at(
            workload_rng.uniform(0.0, config.horizon * 0.7),
            lambda i=index: submit(i),
        )
    for _ in range(config.n_moves):
        destination = workload_rng.choice(nodes)
        db.sim.schedule_at(
            workload_rng.uniform(0.0, config.horizon * 0.7),
            lambda d=destination: _try_move(db, d),
        )

    read_trackers = []

    def submit_read(index: int) -> None:
        # Prefer a reader outside the replica set (the quorum-read
        # path); when the fragment is fully replicated every node is a
        # replica and the read stays local — still a valid probe.
        replicas = set(db.replica_set("F"))
        outside = [name for name in nodes if name not in replicas]
        pool = outside or nodes
        reader = pool[index % len(pool)]
        if db.nodes[reader].down:
            return  # a crashed reader cannot submit (rail, not a draw)
        obj = workload_rng.choice(objects)
        read_trackers.append(
            db.submit_readonly(
                "ag",
                scripted_body([("r", obj)]),
                at=reader,
                reads=[obj],
                txn_id=f"Q{index}",
            )
        )

    if config.n_quorum_reads:
        for index in range(config.n_quorum_reads):
            db.sim.schedule_at(
                workload_rng.uniform(
                    config.horizon * 0.1, config.horizon * 0.9
                ),
                lambda i=index: submit_read(i),
            )
    db.quiesce()
    events = [event.as_dict() for event in db.tracer]
    audit = audit_events(
        events, protocol=protocol_name, run=f"{protocol_name}@{seed}"
    )
    first = audit.first_violation()
    accountant = account_events(events, end_time=db.sim.now)
    causes: dict[str, float] = {}
    for fragment in accountant.fragment_agent:
        for cause, held in accountant.fragment_summary(fragment, "write")[
            "by_cause"
        ].items():
            causes[cause] = round(causes.get(cause, 0.0) + held, 6)
    if trace_path is not None:
        db.tracer.close()

    injector = db.injector
    transport = db.transport
    return NemesisResult(
        seed=seed,
        protocol=protocol_name,
        submitted=len(trackers),
        committed=sum(1 for t in trackers if t.succeeded),
        moves_requested=config.n_moves,
        mutually_consistent=db.mutual_consistency().consistent,
        fragmentwise=db.fragmentwise_serializability().ok,
        drops=injector.dropped if injector is not None else 0,
        dups=injector.duplicated if injector is not None else 0,
        retransmits=transport.retransmits if transport is not None else 0,
        dups_dropped=(
            transport.duplicates_dropped if transport is not None else 0
        ),
        exhausted=transport.exhausted if transport is not None else 0,
        messages_sent=db.network.messages_sent,
        converge_time=db.sim.now,
        state_hash=db.state_hash(),
        audit_ok=audit.ok,
        audit_violations=audit.violation_count,
        audit_first="" if first is None else first.message,
        checkpoints=int(db.metrics.value("recovery.checkpoints") or 0),
        archive_pruned=int(db.metrics.value("recovery.archive_pruned") or 0),
        snapshots_shipped=int(
            db.metrics.value("recovery.checkpoints_shipped") or 0
        ),
        delta_qts_shipped=int(
            db.metrics.value("recovery.delta_qts_shipped") or 0
        ),
        quorum_reads=len(read_trackers),
        quorum_served=sum(1 for t in read_trackers if t.succeeded),
        quorum_timeouts=sum(
            1 for t in read_trackers if t.status is RequestStatus.TIMED_OUT
        ),
        quorum_retries=int(db.metrics.value("quorum.retries") or 0),
        suspicions=int(db.metrics.value("avail.suspicions") or 0),
        failovers=int(db.metrics.value("avail.failovers") or 0),
        epoch_cuts=int(db.metrics.value("avail.epoch_cuts") or 0),
        demotions=int(db.metrics.value("avail.demotions") or 0),
        updates_blocked=int(db.metrics.value("avail.updates_blocked") or 0),
        write_availability=round(accountant.availability("write"), 6),
        worst_window=round(accountant.worst_window("write"), 6),
        unavailability_causes=causes,
    )
