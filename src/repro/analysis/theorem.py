"""Randomized validation of the Section 4.2 theorem (experiment E8).

The theorem: *if the read-access graph is elementarily acyclic (and all
local serialization graphs are acyclic, which strict 2PL guarantees),
then the global serialization graph is acyclic.*

:func:`random_system` builds a random fragments-and-agents database
whose declared read pattern is a random **forest** (hence elementarily
acyclic) or, for the control group, a random graph containing an
undirected cycle.  :func:`run_random_workload` drives random
transactions through it — with a random partition episode and action
delays so installs and reads genuinely race — and returns the measured
correctness flags.

Over thousands of seeded runs the theorem predicts: *zero* global
serializability violations in the acyclic group, while the cyclic group
exhibits some (Figure 4.3.1's counterexample generalized).  Both groups
must always keep fragmentwise serializability and mutual consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.ops import Read, Write
from repro.core.control.acyclic import AcyclicReadsStrategy
from repro.core.control.unrestricted import UnrestrictedReadsStrategy
from repro.core.system import FragmentedDatabase
from repro.sim.rng import SeededRng


@dataclass
class RandomRunResult:
    """Correctness flags of one randomized run."""

    seed: int
    acyclic_rag: bool
    transactions: int
    committed: int
    globally_serializable: bool
    fragmentwise: bool
    mutually_consistent: bool


def random_system(
    rng: SeededRng, acyclic: bool, n_nodes: int = 3, n_fragments: int = 4
) -> FragmentedDatabase:
    """A random database with a forest (or cyclic) read-access pattern."""
    nodes = [f"N{i}" for i in range(n_nodes)]
    strategy = (
        AcyclicReadsStrategy() if acyclic else UnrestrictedReadsStrategy()
    )
    db = FragmentedDatabase(
        nodes, strategy=strategy, seed=rng.randint(0, 2**31), action_delay=0.7
    )
    initial = {}
    for i in range(n_fragments):
        node = rng.choice(nodes)
        db.add_agent(f"A{i}", home_node=node)
        objects = [f"f{i}o{j}" for j in range(rng.randint(1, 3))]
        db.add_fragment(f"F{i}", agent=f"A{i}", objects=objects)
        for obj in objects:
            initial[obj] = 0
    db.load(initial)

    if acyclic:
        # Random forest with random edge orientations: for each fragment
        # beyond the first, link it to one earlier fragment.
        for i in range(1, n_fragments):
            if rng.bernoulli(0.2):
                continue  # leave some fragments isolated
            other = rng.randint(0, i - 1)
            if rng.bernoulli(0.5):
                db.rag.add_read_edge(f"F{i}", f"F{other}")
            else:
                db.rag.add_read_edge(f"F{other}", f"F{i}")
        db.finalize()
        assert db.rag.is_elementarily_acyclic()
    else:
        # Dense random pattern; force at least one undirected cycle.
        for i in range(n_fragments):
            for j in range(n_fragments):
                if i != j and rng.bernoulli(0.5):
                    db.rag.add_read_edge(f"F{i}", f"F{j}")
        db.rag.add_read_edge("F0", "F1")
        db.rag.add_read_edge("F1", "F0")
        db.finalize()
        assert not db.rag.is_elementarily_acyclic()
    return db


def run_random_workload(
    seed: int,
    acyclic: bool,
    n_transactions: int = 20,
    horizon: float = 100.0,
    n_nodes: int = 3,
    n_fragments: int = 4,
) -> RandomRunResult:
    """One seeded run: random transactions + a random partition."""
    rng = SeededRng(seed)
    db = random_system(rng, acyclic, n_nodes, n_fragments)
    fragments = db.catalog.names
    submitted = []

    def make_txn(index: int) -> None:
        fragment = rng.choice(fragments)
        agent = db.agent_of(fragment)
        own_objects = sorted(db.catalog.get(fragment).objects)
        readable = db.rag.reads_from(fragment)
        read_pool = list(own_objects)
        for other in readable:
            read_pool.extend(sorted(db.catalog.get(other).objects))
        reads = [obj for obj in read_pool if rng.bernoulli(0.6)]
        writes = [obj for obj in own_objects if rng.bernoulli(0.7)]
        if not writes:
            writes = [rng.choice(own_objects)]
        value = rng.randint(1, 1000)

        def body(_ctx):
            total = 0
            for obj in reads:
                observed = yield Read(obj)
                total += observed if isinstance(observed, int) else 0
            for obj in writes:
                yield Write(obj, total + value)

        tracker = db.submit_update(
            agent.name,
            body,
            reads=reads,
            writes=writes,
            txn_id=f"T{index}",
        )
        submitted.append(tracker)

    for index in range(n_transactions):
        db.sim.schedule_at(
            rng.uniform(0, horizon), lambda i=index: make_txn(i)
        )
    # A random partition episode covering part of the horizon.
    if len(db.nodes) >= 2 and rng.bernoulli(0.8):
        names = list(db.nodes)
        rng.shuffle(names)
        cut_at = rng.randint(1, len(names) - 1)
        groups = [names[:cut_at], names[cut_at:]]
        start = rng.uniform(0, horizon / 2)
        end = rng.uniform(start + 1, horizon)
        db.sim.schedule_at(
            start, lambda: db.partitions.partition_now(groups)
        )
        db.sim.schedule_at(end, db.partitions.heal_now)
    db.quiesce()

    gs = db.global_serializability()
    fw = db.fragmentwise_serializability()
    mutual = db.mutual_consistency()
    return RandomRunResult(
        seed=seed,
        acyclic_rag=acyclic,
        transactions=len(submitted),
        committed=sum(1 for t in submitted if t.succeeded),
        globally_serializable=gs.ok,
        fragmentwise=fw.ok,
        mutually_consistent=mutual.consistent,
    )
