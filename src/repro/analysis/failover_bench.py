"""E20 — write availability under agent-home crashes, with and without
the availability supervisor.

One seeded workload (multi-fragment, restricted replica sets, updates
spread across the run) is executed twice:

* **supervisor on** — every agent's home node is crash-stopped at a
  known time and recovered later.  The supervisor detects each crash
  via heartbeats, elects a successor from the fragment's live replica
  set, cuts a new stream epoch, and the recovered ex-home demotes.
  Clients resubmit rejected updates, so every logical update commits;
  the per-agent *write-unavailability window* (kill to first commit
  after the kill) is bounded by the detection + takeover time.
* **supervisor off** — the same kills, never recovered, no failover.
  Rejected updates stay rejected until the resubmission budget runs
  out, and the unavailability window stretches to the rest of the run.

Everything recorded is a deterministic function of the seed — commit
counts, unavailability windows, MTTR observations, audit verdicts,
state hashes — so the committed ``BENCH_availability.json`` compares
exactly in CI.  The gates additionally fail on an MTTR regression
beyond 20% of the committed record or on any state-hash divergence.
Run it directly with ``python -m repro.cli failover-bench``.
"""

from __future__ import annotations

import json
import os

from repro.analysis.audit import audit_events
from repro.availability import AvailabilityConfig
from repro.cc.ops import Write
from repro.core.system import FragmentedDatabase
from repro.core.transaction import RequestStatus
from repro.sim.rng import SeededRng

#: Default workload shape (the CI smoke passes smaller values).
DEFAULT_NODES = 6
DEFAULT_FRAGMENTS = 3
DEFAULT_UPDATES = 36
DEFAULT_FACTOR = 3
DEFAULT_HORIZON = 200.0

#: Client resubmission policy: a rejected update is retried after this
#: delay, up to the attempt budget.  With the supervisor on, failover
#: completes well inside the budget; with it off, the budget runs dry
#: and the update counts as blocked.
RESUBMIT_DELAY = 7.5
MAX_ATTEMPTS = 20

#: The committed benchmark record (repo root).
BENCH_FILE = "BENCH_availability.json"

#: Gate slack on MTTR regression against the committed record.
DEFAULT_TOLERANCE = 0.20


def run_mode(
    supervised: bool,
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    factor: int = DEFAULT_FACTOR,
    horizon: float = DEFAULT_HORIZON,
    seed: int = 20,
    db_sink: list | None = None,
    on_db=None,
) -> dict:
    """One mode of the E20 run: the seeded workload, homes killed.

    Both modes construct the database with an
    :class:`AvailabilityConfig` so the submission gate rejects loudly
    while a home is down (clients can react); only the supervised mode
    *starts* the supervisor, so only it detects crashes and fails over.
    The unsupervised mode also never recovers the killed homes — its
    unavailability window is the rest of the run by construction.

    ``db_sink`` receives the database (for post-run inspection);
    ``on_db`` is called with it before any event runs, so read-only
    instrumentation — E21 attaches a
    :class:`~repro.obs.timeline.TimelineSampler` — can observe the
    whole run without perturbing the workload's RNG streams.
    """
    rng = SeededRng(seed).fork("workload")
    names = [f"N{i}" for i in range(nodes)]
    db = FragmentedDatabase(
        names,
        seed=seed,
        replication_factor=factor,
        availability=AvailabilityConfig(),
    )
    if db_sink is not None:
        db_sink.append(db)
    if on_db is not None:
        on_db(db)
    db.enable_tracing(None)
    objects_of: dict[str, list[str]] = {}
    for index in range(fragments):
        agent = f"a{index}"
        fragment = f"F{index}"
        db.add_agent(agent, home_node=names[index % nodes])
        objs = [f"x{index}", f"y{index}"]
        objects_of[fragment] = objs
        db.add_fragment(fragment, agent=agent, objects=objs)
    db.load({obj: 0 for objs in objects_of.values() for obj in objs})
    db.finalize()
    if supervised:
        db.availability.start(until=horizon)

    # -- client: one logical update per slot, resubmitted on rejection --
    committed_at: dict[int, float] = {}
    attempts_made = {"n": 0}

    def write_body(objs, value):
        def body(_ctx):
            for obj in objs:
                yield Write(obj, value)

        return body

    def submit(slot: int, agent: str, objs, value: int, attempt: int) -> None:
        attempts_made["n"] += 1

        def on_done(tracker) -> None:
            if tracker.status is RequestStatus.COMMITTED:
                committed_at.setdefault(slot, db.sim.now)
            elif (
                tracker.status
                in (RequestStatus.REJECTED, RequestStatus.TIMED_OUT)
                and attempt + 1 < MAX_ATTEMPTS
            ):
                db.sim.schedule(
                    RESUBMIT_DELAY,
                    lambda: submit(slot, agent, objs, value, attempt + 1),
                    label=f"resubmit U{slot}",
                )

        db.submit_update(
            agent,
            write_body(objs, value),
            writes=objs,
            txn_id=f"U{slot}a{attempt}",
            on_done=on_done,
        )

    update_agent: dict[int, str] = {}
    for slot in range(updates):
        index = rng.randint(0, fragments - 1)
        agent = f"a{index}"
        update_agent[slot] = agent
        objs = objects_of[f"F{index}"]
        value = rng.randint(1, 10_000)
        db.sim.schedule_at(
            rng.uniform(0.0, horizon * 0.75),
            lambda s=slot, a=agent, o=objs, v=value: submit(s, a, o, v, 0),
        )

    # -- kill every agent's home, staggered; recover only when supervised --
    kill_time: dict[str, float] = {}

    def kill_home(agent: str) -> None:
        home = db.agents[agent].home_node
        kill_time[agent] = db.sim.now
        if db.nodes[home].down:
            return
        db.fail_node(home)
        if supervised:
            db.sim.schedule(
                50.0,
                lambda name=home: (
                    db.recover_node(name) if db.nodes[name].down else None
                ),
                label=f"bench recovery {home}",
            )

    for index in range(fragments):
        db.sim.schedule_at(
            60.0 + 15.0 * index,
            lambda a=f"a{index}": kill_home(a),
            label="bench agent-kill",
        )
    db.quiesce()

    audit = audit_events(
        (event.as_dict() for event in db.tracer), run="failover-bench"
    )
    converge = db.sim.now

    # Write-unavailability window per agent: kill to the first commit of
    # one of the agent's updates after the kill (end of run if none).
    windows: dict[str, float] = {}
    for agent, killed in sorted(kill_time.items()):
        after = [
            at
            for slot, at in committed_at.items()
            if update_agent[slot] == agent and at > killed
        ]
        windows[agent] = round((min(after) if after else converge) - killed, 4)

    mttr = db.metrics.value("avail.mttr")
    return {
        "supervised": supervised,
        "submitted": updates,
        "attempts": attempts_made["n"],
        "committed": len(committed_at),
        "blocked": updates - len(committed_at),
        "unavailability": windows,
        "max_unavailability": max(windows.values()) if windows else 0.0,
        "failovers": int(db.metrics.value("avail.failovers")),
        "failovers_aborted": int(
            db.metrics.value("avail.failovers_aborted")
        ),
        "suspicions": int(db.metrics.value("avail.suspicions")),
        "epoch_cuts": int(db.metrics.value("avail.epoch_cuts")),
        "demotions": int(db.metrics.value("avail.demotions")),
        "updates_blocked": int(db.metrics.value("avail.updates_blocked")),
        "updates_discarded": int(
            db.metrics.value("avail.updates_discarded")
        ),
        "mttr_count": mttr["count"],
        "mttr_mean": round(mttr["mean"], 4) if mttr["mean"] else 0.0,
        "mttr_max": round(mttr["max"], 4) if mttr["max"] else 0.0,
        "converge_time": round(converge, 4),
        "audit_ok": audit.ok,
        "audit_violations": audit.violation_count,
        "state_hash": db.state_hash(),
    }


def run_failover_bench(
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    factor: int = DEFAULT_FACTOR,
    horizon: float = DEFAULT_HORIZON,
    seed: int = 20,
) -> dict:
    """The full E20 run; returns the ``BENCH_availability.json`` dict."""
    on = run_mode(True, nodes, fragments, updates, factor, horizon, seed)
    off = run_mode(False, nodes, fragments, updates, factor, horizon, seed)
    return {
        "benchmark": "E20-availability-failover",
        "nodes": nodes,
        "fragments": fragments,
        "updates": updates,
        "replication_factor": factor,
        "horizon": horizon,
        "seed": seed,
        "supervised": on,
        "unsupervised": off,
    }


def check_gates(
    result: dict,
    committed: dict | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, list[str]]:
    """Verify the E20 claims on a fresh result.

    Intrinsic gates (no committed record needed):

    * with the supervisor on, no logical update is permanently blocked
      (every one commits, via resubmission where needed), failovers
      actually happened, and the lineage audit — including the
      epoch-fencing check — passes;
    * every supervised unavailability window is strictly smaller than
      the unsupervised window of the same agent, and bounded well below
      the run length (the MTTR claim);
    * without the supervisor, at least one update stays blocked — the
      contrast that makes the first claim non-vacuous.

    Against a committed record: state hashes must match exactly (the
    run is deterministic) and MTTR must not regress by more than
    ``tolerance`` (default 20%).
    """
    messages: list[str] = []
    on = result["supervised"]
    off = result["unsupervised"]
    horizon = result["horizon"]
    if on["blocked"]:
        messages.append(
            f"supervised: {on['blocked']} update(s) permanently blocked"
        )
    if not on["failovers"]:
        messages.append("supervised: no failover happened")
    for mode, tag in ((on, "supervised"), (off, "unsupervised")):
        if not mode["audit_ok"]:
            messages.append(
                f"{tag}: lineage audit found "
                f"{mode['audit_violations']} violation(s)"
            )
    if on["max_unavailability"] > horizon * 0.35:
        messages.append(
            f"supervised: max unavailability "
            f"{on['max_unavailability']} not bounded (> 35% of horizon)"
        )
    for agent, window in on["unavailability"].items():
        other = off["unavailability"].get(agent)
        if other is not None and window >= other:
            messages.append(
                f"agent {agent}: supervised window {window} not below "
                f"unsupervised window {other}"
            )
    if not off["blocked"]:
        messages.append(
            "unsupervised: every update still committed — the kill "
            "schedule no longer creates an outage"
        )
    if committed is not None:
        for tag in ("supervised", "unsupervised"):
            if result[tag]["state_hash"] != committed[tag]["state_hash"]:
                messages.append(
                    f"{tag}: state hash diverged from the committed "
                    "BENCH_availability.json"
                )
        ceiling = committed["supervised"]["mttr_max"] * (1.0 + tolerance)
        if on["mttr_max"] > ceiling:
            messages.append(
                f"supervised: MTTR max {on['mttr_max']} regressed beyond "
                f"{ceiling:.2f} (committed {committed['supervised']['mttr_max']}"
                f" + {tolerance:.0%})"
            )
        if committed != result:
            messages.append(
                "deterministic record diverges from the committed "
                "BENCH_availability.json (regenerate with `python -m "
                "repro.cli failover-bench --json BENCH_availability.json` "
                "if the change is intentional)"
            )
    return not messages, messages


def load_committed(path: str = BENCH_FILE) -> dict | None:
    """The committed benchmark record, or None if absent."""
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_result(result: dict, path: str = BENCH_FILE) -> None:
    """Write the benchmark record as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
