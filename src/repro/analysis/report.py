"""Fixed-width table and series rendering for bench output.

The benchmark harnesses print the same rows/series the paper's figures
describe; these helpers keep the output uniform and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned text table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(value.ljust(widths[index]) for index, value in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    title: str, pairs: Iterable[tuple[Any, Any]], x_label: str = "x",
    y_label: str = "y"
) -> str:
    """Render an (x, y) series as an aligned two-column block."""
    return format_table([x_label, y_label], pairs, title=title)


def format_metrics_snapshot(
    snapshot: dict[str, dict[str, Any]], title: str = "metrics snapshot"
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as aligned tables.

    Counters and gauges share one table; each histogram gets a row of
    its percentile summary.  Input is the plain-dict snapshot so this
    also formats snapshots loaded back from JSON.
    """
    blocks = []
    scalar_rows = [
        [name, "counter", value]
        for name, value in snapshot.get("counters", {}).items()
    ] + [
        [name, "gauge", value]
        for name, value in snapshot.get("gauges", {}).items()
    ]
    if scalar_rows:
        blocks.append(
            format_table(["metric", "kind", "value"], scalar_rows, title=title)
        )
    histograms = snapshot.get("histograms", {})
    if histograms:
        hist_rows = [
            [
                name,
                summary.get("count", 0),
                summary.get("mean"),
                summary.get("p50"),
                summary.get("p90"),
                summary.get("p99"),
                summary.get("max"),
            ]
            for name, summary in histograms.items()
        ]
        blocks.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                hist_rows,
                title="" if not blocks else "histograms",
            )
        )
    return "\n\n".join(blocks) if blocks else "(no metrics recorded)"


def pipeline_latency_rows(
    snapshot: dict[str, dict[str, Any]], prefix: str = "pipeline."
) -> list[list[Any]]:
    """``[stage, count, p50, p90, max]`` rows for pipeline histograms.

    Filters a :meth:`MetricsRegistry.snapshot` to the per-stage
    queue-wait and propagation-latency histograms, skipping empty ones —
    the benches append these under their guarantee tables so the
    latency cost of each stage is visible next to the semantics it buys.
    """
    rows = []
    for name, summary in snapshot.get("histograms", {}).items():
        if name.startswith(prefix) and summary.get("count"):
            rows.append(
                [
                    name,
                    summary["count"],
                    summary["p50"],
                    summary["p90"],
                    summary["max"],
                ]
            )
    return rows


def format_trace_summary(summary: Any, title: str = "trace summary") -> str:
    """Render a :class:`~repro.obs.summary.TraceSummary`."""
    lines = [title]
    if summary.time_span is None:
        lines.append(f"events={summary.total}")
    else:
        start, end = summary.time_span
        lines.append(f"events={summary.total}  span={start}..{end}")
    if summary.by_type:
        lines.append(
            format_table(
                ["event type", "count"],
                sorted(summary.by_type.items()),
            )
        )
    if summary.by_run:
        lines.append(
            format_table(
                ["run", "events"],
                [
                    (run, sum(tally.values()))
                    for run, tally in sorted(summary.by_run.items())
                ],
            )
        )
    if summary.message_kinds:
        lines.append(
            format_table(
                ["message kind", "count"],
                sorted(summary.message_kinds.items()),
            )
        )
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
