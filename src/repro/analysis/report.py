"""Fixed-width table and series rendering for bench output.

The benchmark harnesses print the same rows/series the paper's figures
describe; these helpers keep the output uniform and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned text table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(value.ljust(widths[index]) for index, value in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    title: str, pairs: Iterable[tuple[Any, Any]], x_label: str = "x",
    y_label: str = "y"
) -> str:
    """Render an (x, y) series as an aligned two-column block."""
    return format_table([x_label, y_label], pairs, title=title)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
