"""Experiment analysis: correctness summaries, the spectrum driver,
fixed-width report rendering."""

from repro.analysis.metrics import CorrectnessSummary, correctness_summary
from repro.analysis.report import format_series, format_table
from repro.analysis.spectrum import (
    SpectrumConfig,
    SpectrumRow,
    run_spectrum,
)

__all__ = [
    "CorrectnessSummary",
    "SpectrumConfig",
    "SpectrumRow",
    "correctness_summary",
    "format_series",
    "format_table",
    "run_spectrum",
]
