"""E19 — message volume and storage footprint under partial replication.

Runs one seeded multi-fragment workload repeatedly, sweeping the
replication factor ``k`` from small replica sets up to full
replication (``k = N``), and records for each point:

* **quasi-transaction messages** — with per-fragment replica sets the
  pipeline multicasts each batch to exactly the fragment's ``k``
  replicas instead of broadcasting to all ``N`` nodes, so the wire
  volume must scale with ``k - 1`` sends per batch, not ``N - 1``;
* **per-node storage** — a node stores only the fragments in whose
  replica sets it appears, so the populated fraction of the global
  object space must track ``k / N``;
* **quorum reads** — reads submitted at non-replicating nodes go
  through the version-vote fallback and must all be served;
* **guarantees** — mutual consistency over common objects plus the
  offline lineage audit (exactly-once / FIFO / agreement / replication
  discipline, per replica set).

Everything recorded is a deterministic function of the seed — message
counts, storage ratios, audit verdicts; no wall-clock timings — so the
committed ``BENCH_partial.json`` can be compared *exactly* by CI, and
the scaling gate (multicast volume at factor ``k`` stays within 10% of
``k/N`` times the full-broadcast volume) holds on any machine.  Run it
directly with ``python -m repro.cli partial-bench``.
"""

from __future__ import annotations

import json
import os

from repro.analysis.audit import audit_events
from repro.cc.ops import Write
from repro.core.system import FragmentedDatabase
from repro.core.transaction import scripted_body
from repro.sim.rng import SeededRng

#: Default workload shape (the reduced CI smoke passes smaller values).
DEFAULT_NODES = 12
DEFAULT_FRAGMENTS = 8
DEFAULT_UPDATES = 160
DEFAULT_FACTORS = (2, 3, 5)

#: The committed benchmark record (repo root).
BENCH_FILE = "BENCH_partial.json"

#: Gate slack on the multicast-vs-broadcast volume ratio.
DEFAULT_TOLERANCE = 0.10


def run_point(
    k: int | None,
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    seed: int = 19,
) -> dict:
    """One sweep point: the seeded workload at replication factor ``k``.

    ``k=None`` is the full-replication baseline (every fragment on
    every node, classic broadcast propagation).
    """
    rng = SeededRng(seed)
    names = [f"N{i}" for i in range(nodes)]
    db = FragmentedDatabase(names, seed=seed, replication_factor=k)
    db.enable_tracing(None)
    objects_of: dict[str, list[str]] = {}
    for index in range(fragments):
        agent = f"a{index}"
        fragment = f"F{index}"
        db.add_agent(agent, home_node=names[index % nodes])
        objs = [f"x{index}", f"y{index}"]
        objects_of[fragment] = objs
        db.add_fragment(fragment, agent=agent, objects=objs)
    db.load({obj: 0 for objs in objects_of.values() for obj in objs})
    db.finalize()

    def write_body(objs, value):
        def body(_ctx):
            for obj in objs:
                yield Write(obj, value)

        return body

    trackers = []
    for index in range(updates):
        fragment = f"F{rng.randint(0, fragments - 1)}"
        agent = f"a{fragment[1:]}"
        value = rng.randint(1, 10_000)
        objs = objects_of[fragment]

        def fire(agent=agent, objs=objs, value=value):
            trackers.append(
                db.submit_update(agent, write_body(objs, value), writes=objs)
            )

        db.sim.schedule_at(rng.uniform(0.0, 100.0), fire)
    db.sim.run(until=140.0)

    # Quorum-read probe: for every fragment with a restricted replica
    # set, read one object at a node outside the set.
    read_trackers = []
    observed: list[tuple[str, object]] = []
    for index in range(fragments):
        fragment = f"F{index}"
        replicas = set(db.replica_set(fragment))
        outside = [name for name in names if name not in replicas]
        if not outside:
            continue
        obj = objects_of[fragment][0]
        read_trackers.append(
            db.submit_readonly(
                f"a{index}",
                scripted_body([("r", obj)], collect=observed),
                at=outside[0],
                reads=[obj],
            )
        )
    db.quiesce()

    audit = audit_events(
        (event.as_dict() for event in db.tracer),
        run=f"partial-bench@k={k}",
    )
    stored = sum(
        len(db.nodes[name].store.names) for name in names
    )
    total_objects = sum(len(objs) for objs in objects_of.values())
    effective_k = nodes if k is None else min(k, nodes)
    return {
        "k": effective_k,
        "full_replication": k is None or k >= nodes,
        "committed": sum(1 for t in trackers if t.succeeded),
        "qt_messages": db.network.messages_by_kind.get("qt", 0),
        "messages_sent": db.network.messages_sent,
        "storage_ratio": round(stored / (nodes * total_objects), 4),
        "expected_storage_ratio": round(effective_k / nodes, 4),
        "quorum_reads": len(read_trackers),
        "quorum_served": sum(1 for t in read_trackers if t.succeeded),
        "mutually_consistent": db.mutual_consistency().consistent,
        "audit_ok": audit.ok,
        "audit_violations": audit.violation_count,
        "state_hash": db.state_hash(),
    }


def run_partial_bench(
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    factors: tuple[int, ...] = DEFAULT_FACTORS,
    seed: int = 19,
) -> dict:
    """The full E19 sweep; returns the ``BENCH_partial.json`` dict."""
    points = [
        run_point(k, nodes, fragments, updates, seed) for k in factors
    ]
    baseline = run_point(None, nodes, fragments, updates, seed)
    return {
        "benchmark": "E19-partial-replication",
        "nodes": nodes,
        "fragments": fragments,
        "updates": updates,
        "seed": seed,
        "baseline": baseline,
        "points": points,
    }


def check_gates(
    result: dict,
    committed: dict | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, list[str]]:
    """Verify the E19 claims on a fresh result (and, optionally, that
    the deterministic record matches the committed one exactly).

    Gates, per sweep point at factor ``k`` against the ``k = N``
    baseline:

    * multicast volume: ``qt_messages(k) <= (k/N) * qt_messages(N)``
      within ``tolerance`` — message volume scales with the replica-set
      size, not the cluster size;
    * storage: populated fraction of the object space within
      ``tolerance`` of ``k/N``;
    * every quorum read served; mutual consistency holds; the lineage
      audit (including the replication-discipline check) passes.
    """
    messages: list[str] = []
    nodes = result["nodes"]
    baseline = result["baseline"]
    if not baseline["audit_ok"] or not baseline["mutually_consistent"]:
        messages.append("baseline run broke its guarantees")
    for point in result["points"]:
        k = point["k"]
        tag = f"k={k}"
        ceiling = (k / nodes) * baseline["qt_messages"] * (1.0 + tolerance)
        if point["qt_messages"] > ceiling:
            messages.append(
                f"{tag}: qt volume {point['qt_messages']} exceeds "
                f"(k/N)*broadcast ceiling {ceiling:.0f}"
            )
        expected = point["expected_storage_ratio"]
        if abs(point["storage_ratio"] - expected) > tolerance * expected:
            messages.append(
                f"{tag}: storage ratio {point['storage_ratio']} not within "
                f"{tolerance:.0%} of k/N = {expected}"
            )
        if point["quorum_served"] != point["quorum_reads"]:
            messages.append(
                f"{tag}: {point['quorum_served']}/{point['quorum_reads']} "
                "quorum reads served"
            )
        if not point["mutually_consistent"]:
            messages.append(f"{tag}: mutual consistency violated")
        if not point["audit_ok"]:
            messages.append(
                f"{tag}: lineage audit found "
                f"{point['audit_violations']} violation(s)"
            )
    if committed is not None:
        if committed != result:
            messages.append(
                "deterministic record diverges from the committed "
                "BENCH_partial.json (regenerate with "
                "`python -m repro.cli partial-bench --json BENCH_partial.json`"
                " if the change is intentional)"
            )
    return not messages, messages


def load_committed(path: str = BENCH_FILE) -> dict | None:
    """The committed benchmark record, or None if absent."""
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_result(result: dict, path: str = BENCH_FILE) -> None:
    """Write the benchmark record as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
