"""Offline lineage auditor: replay a trace, verify the paper's invariants.

The lineage events threaded through the update pipeline
(:mod:`repro.obs.lineage`) let an *offline* checker reconstruct the
happens-before order of every update from a JSONL trace — the
Jepsen-style counterpart of the in-process consistency checkers, with
no access to simulator state.  :func:`audit_events` replays one run's
events in emission order (the simulator is single-threaded, so file
order is causal order) and verifies:

* **exactly-once** — each transaction installs at most once per node
  (``lineage.commit`` is the install at the origin; ``qt.install`` is
  an install anywhere else);
* **fifo-order** — per node and fragment, installs occur in strictly
  increasing ``(epoch, stream_seq)`` order, i.e. each replica processes
  one fragment's stream in the order it was generated (Section 3.2);
* **initiation** — every commit is minted by the fragment's agent, at
  the agent's current home node, writing only objects that belong to
  the fragment (Section 3.1's initiation requirement), against the
  schema recorded by the ``system.catalog`` event;
* **token-uniqueness** — the move events describe a token that is in
  exactly one place at a time: departures only from the current home,
  arrivals only for an in-flight move, and no commits minted while the
  token is on the road;
* **agreement** — the fragment's replica set agrees on its install
  order: a stream slot ``(fragment, epoch, seq)`` holds the same
  transaction everywhere, and any two transactions installed by two
  nodes appear in the same relative order at both (under partial
  replication only replica-set members install, so the pairwise
  comparison is per replica set by construction);
* **replication** — installs land only at replica-set members: the
  ``system.catalog`` event records each fragment's replica set, and an
  install of the fragment at any other node is a propagation-scoping
  bug (a multicast that leaked outside the set).  The replica set is
  the one *in force at install time*: ``system.reconfig`` events move
  it forward mid-trace, so an online join/leave re-scopes the check
  from that point on.  Skipped for traces predating the catalog's
  ``replicas`` field, never silently assumed;
* **epoch-fencing** — stream epochs fence minting rights (the
  availability supervisor's failover safety argument): commits are
  never minted in an epoch older than the newest one opened for the
  fragment (a fenced-out ex-home kept writing), no two nodes mint in
  the same ``(fragment, epoch)`` without a token arrival between them
  (split brain), and membership epochs on ``system.reconfig`` events
  strictly increase per fragment;
* **availability** — the accountant's books balance against the trace:
  every blocked submission (a ``txn.reject`` whose reason is a downed
  agent home or a token in transit) falls inside an unavailability
  window that the :class:`~repro.obs.availability.AvailabilityAccountant`
  derived from the same events — a reject with no accounted cause means
  either the submission gate fired spuriously or the accountant lost a
  window.

Not every protocol promises every invariant.  The instant-move
baseline (``none``) exists to *demonstrate* stream-order divergence,
and the corrective protocol (Section 4.4.3) trades stream order away
by design — both relax the FIFO and agreement checks (see
:data:`RELAXED_CHECKS`), so the audit documents what each protocol
actually promises rather than failing by design, mirroring the
guarantee matrix in :mod:`repro.analysis.torture`.  The identity
checks — exactly-once, initiation, token uniqueness — hold for every
protocol.

The report names the first violating event verbatim, so a failure in a
10,000-event chaos trace points at one line of JSONL instead of a
boolean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs import taxonomy
from repro.obs.availability import AvailabilityAccountant
from repro.obs.summary import read_trace

#: Check names, in report order.
ALL_CHECKS = (
    "exactly_once",
    "fifo_order",
    "initiation",
    "token_uniqueness",
    "agreement",
    "replication",
    "epoch_fencing",
    "availability",
)

#: Checks a protocol deliberately does not promise (Section 4.4 matrix).
#: ``none`` installs blindly in arrival order — stream-order divergence
#: is the bug it exists to demonstrate.  ``corrective`` forfeits
#: fragmentwise serializability: its M0 catch-up backfills missed
#: old-epoch transactions *after* a node has advanced into a newer
#: epoch, so cross-epoch install order (and hence cross-node order
#: agreement) is exactly what it trades away for availability.  The
#: identity checks (exactly-once, initiation, token-uniqueness) are
#: never relaxed — every protocol promises those.
RELAXED_CHECKS: dict[str, frozenset[str]] = {
    "none": frozenset({"fifo_order", "agreement"}),
    "corrective": frozenset({"fifo_order", "agreement"}),
}

#: Stored violations per check; further ones are counted, not kept.
MAX_VIOLATIONS_KEPT = 25

_INSTALL_TYPES = (taxonomy.LINEAGE_COMMIT, taxonomy.QT_INSTALL)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the event that revealed it."""

    check: str
    message: str
    event: dict[str, Any]

    def as_dict(self) -> dict[str, Any]:
        return {"check": self.check, "message": self.message,
                "event": self.event}


@dataclass
class CheckResult:
    """Outcome of one invariant check over one run."""

    name: str
    checked: bool = True
    reason: str | None = None  # why skipped, when not checked
    violations: list[Violation] = field(default_factory=list)
    violation_count: int = 0  # includes violations beyond the kept cap

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def add(self, message: str, event: dict[str, Any]) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_VIOLATIONS_KEPT:
            self.violations.append(Violation(self.name, message, event))

    def as_dict(self) -> dict[str, Any]:
        return {
            "checked": self.checked,
            "ok": self.ok,
            "reason": self.reason,
            "violations": [v.as_dict() for v in self.violations],
            "violation_count": self.violation_count,
        }


@dataclass
class AuditReport:
    """Structured audit verdict for one run's event stream."""

    run: str
    protocol: str | None
    events: int = 0
    installs: int = 0
    #: Informational recovery-activity counters (no invariant attached):
    #: how many durable checkpoints the run took and how many whole
    #: checkpoints catch-up donors shipped to below-horizon rejoiners.
    checkpoints: int = 0
    snapshots_shipped: int = 0
    epoch_cuts: int = 0
    reconfigurations: int = 0
    checks: dict[str, CheckResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks.values())

    @property
    def violation_count(self) -> int:
        return sum(check.violation_count for check in self.checks.values())

    def first_violation(self) -> Violation | None:
        """The earliest-reported violation, or None when clean."""
        for name in ALL_CHECKS:
            check = self.checks.get(name)
            if check is not None and check.violations:
                return check.violations[0]
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "run": self.run,
            "protocol": self.protocol,
            "ok": self.ok,
            "events": self.events,
            "installs": self.installs,
            "checkpoints": self.checkpoints,
            "snapshots_shipped": self.snapshots_shipped,
            "epoch_cuts": self.epoch_cuts,
            "reconfigurations": self.reconfigurations,
            "violation_count": self.violation_count,
            "checks": {
                name: self.checks[name].as_dict()
                for name in ALL_CHECKS
                if name in self.checks
            },
        }


class _Auditor:
    """Single-pass state machine over one run's events."""

    def __init__(self, run: str, protocol: str | None) -> None:
        relaxed = RELAXED_CHECKS.get(protocol or "", frozenset())
        self.report = AuditReport(run=run, protocol=protocol)
        for name in ALL_CHECKS:
            result = CheckResult(name)
            if name in relaxed:
                result.checked = False
                result.reason = f"not promised by protocol {protocol!r}"
            self.report.checks[name] = result
        # Schema, from the system.catalog event.
        self.catalog_seen = False
        self.fragment_agent: dict[str, str] = {}
        self.fragment_objects: dict[str, set[str]] = {}
        self.fragment_prefixes: dict[str, tuple[str, ...]] = {}
        # fragment -> replica set; None for traces whose catalog predates
        # the ``replicas`` field (the check is then skipped, see finish()).
        self.fragment_replicas: dict[str, set[str] | None] = {}
        self.replicas_known = False
        # Epoch fencing: membership epoch in force (catalog + reconfig
        # events), newest stream epoch opened per fragment, and which
        # node holds minting rights per (fragment, stream epoch).  A
        # token arrival hands minting rights on within an epoch, so
        # arrivals clear the entries for the moved fragments.
        self.membership_epoch: dict[str, int] = {}
        self.max_epoch: dict[str, int] = {}
        self.epoch_minter: dict[tuple[str, int], str] = {}
        # Token state machine: agent -> home node / in-flight move.
        self.agent_home: dict[str, str] = {}
        self.in_transit: dict[str, tuple[str, str]] = {}  # agent -> (src, dst)
        # Install bookkeeping.
        self.installed: set[tuple[str, str]] = set()  # (txn, node)
        self.last_slot: dict[tuple[str, str], tuple[int, int]] = {}
        self.slot_owner: dict[tuple[str, int, int], str] = {}
        self.slot_event: dict[tuple[str, int, int], dict[str, Any]] = {}
        # fragment -> node -> install order (txn ids).
        self.order: dict[str, dict[str, list[str]]] = {}
        self.install_event: dict[tuple[str, str, str], dict[str, Any]] = {}
        # Embedded availability accountant: fed every event, queried at
        # each blocked submission (file order is causal order, so the
        # crash/departure that justifies the reject precedes it).
        self.accountant = AvailabilityAccountant()

    # -- event dispatch ---------------------------------------------------

    def feed(self, event: dict[str, Any]) -> None:
        self.report.events += 1
        self.accountant.feed(event)
        etype = event.get("type")
        if etype == taxonomy.TXN_REJECT:
            self._on_reject(event)
        elif etype == taxonomy.SYSTEM_CATALOG:
            self._on_catalog(event)
        elif etype in _INSTALL_TYPES:
            self._on_install(event)
        elif etype == taxonomy.TOKEN_MOVE_DEPART:
            self._on_depart(event)
        elif etype == taxonomy.TOKEN_MOVE_ARRIVE:
            self._on_arrive(event)
        elif etype == taxonomy.SYSTEM_RECONFIG:
            self._on_reconfig(event)
        elif etype == taxonomy.AVAIL_EPOCH_CUT:
            self._on_epoch_cut(event)
        elif etype == taxonomy.RECOVERY_CHECKPOINT:
            self.report.checkpoints += 1
        elif etype == taxonomy.RECOVERY_CATCHUP_SNAPSHOT:
            self.report.snapshots_shipped += 1

    def _on_reject(self, event: dict[str, Any]) -> None:
        """A blocked submission must fall inside an accounted window."""
        check = self.report.checks["availability"]
        if not check.checked:
            return
        reason = str(event.get("reason") or "")
        blocked = (
            reason.startswith("agent home") and reason.endswith("is down")
        ) or (reason.startswith("token for") and "in transit" in reason)
        if not blocked:
            return  # ordinary reject (validation, duplicate, ...)
        if not self.accountant.catalog_seen:
            check.checked = False
            check.reason = "no system.catalog event in trace"
            return
        agent = event.get("agent")
        fragments = self.accountant.agent_fragments.get(agent, ())
        if not any(
            self.accountant.unavailable(fragment, "write")
            for fragment in fragments
        ):
            check.add(
                f"submission {event.get('txn')} blocked ({reason}) but the "
                f"accountant has no open write-unavailability window for "
                f"any fragment of agent {agent}",
                event,
            )

    def _on_catalog(self, event: dict[str, Any]) -> None:
        self.catalog_seen = True
        for name, spec in (event.get("fragments") or {}).items():
            self.fragment_agent[name] = spec.get("agent")
            self.fragment_objects[name] = set(spec.get("objects") or ())
            self.fragment_prefixes[name] = tuple(spec.get("prefixes") or ())
            replicas = spec.get("replicas")
            if replicas is None:
                self.fragment_replicas.setdefault(name, None)
            else:
                self.fragment_replicas[name] = set(replicas)
                self.replicas_known = True
            epoch = spec.get("epoch")
            if epoch is not None:
                self.membership_epoch[name] = int(epoch)
        for agent, home in (event.get("agents") or {}).items():
            self.agent_home.setdefault(agent, home)

    def _on_reconfig(self, event: dict[str, Any]) -> None:
        """An online replica-set change: re-scope replication, fence epochs."""
        self.report.reconfigurations += 1
        fragment = event.get("fragment")
        if fragment is None:
            return
        replicas = event.get("replicas")
        if replicas is not None:
            self.fragment_replicas[fragment] = set(replicas)
            self.replicas_known = True
        epoch = event.get("epoch")
        check = self.report.checks["epoch_fencing"]
        if epoch is not None:
            previous = self.membership_epoch.get(fragment)
            if (
                check.checked
                and previous is not None
                and int(epoch) <= previous
            ):
                check.add(
                    f"reconfiguration of fragment {fragment} carries "
                    f"membership epoch {epoch}, not above the previous "
                    f"epoch {previous}",
                    event,
                )
            self.membership_epoch[fragment] = int(epoch)

    def _on_epoch_cut(self, event: dict[str, Any]) -> None:
        """A failover opened a new stream epoch at the successor."""
        self.report.epoch_cuts += 1
        fragment = event.get("fragment")
        epoch = event.get("epoch")
        node = event.get("node")
        if fragment is None or epoch is None:
            return
        epoch = int(epoch)
        check = self.report.checks["epoch_fencing"]
        if check.checked and epoch <= self.max_epoch.get(fragment, -1):
            check.add(
                f"epoch cut opened epoch {epoch} for fragment {fragment} "
                f"at or below an already-open epoch "
                f"{self.max_epoch[fragment]}",
                event,
            )
        self.max_epoch[fragment] = max(
            self.max_epoch.get(fragment, 0), epoch
        )
        if node is not None:
            self.epoch_minter[(fragment, epoch)] = node

    # -- installs ---------------------------------------------------------

    def _on_install(self, event: dict[str, Any]) -> None:
        checks = self.report.checks
        txn = event.get("txn") or event.get("source_txn")
        node = event.get("node")
        fragment = event.get("fragment")
        epoch = event.get("epoch", 0)
        seq = event.get("stream_seq")
        if txn is None or node is None or fragment is None or seq is None:
            checks["exactly_once"].add(
                "install event missing lineage fields", event
            )
            return
        self.report.installs += 1

        # Replica-set membership: the install must land inside the
        # fragment's replica set recorded by the catalog.
        if checks["replication"].checked:
            replicas = self.fragment_replicas.get(fragment)
            if replicas is not None and node not in replicas:
                checks["replication"].add(
                    f"transaction {txn} of fragment {fragment} installed "
                    f"at node {node}, outside its replica set "
                    f"{sorted(replicas)}",
                    event,
                )

        # Exactly-once per (txn, node).
        key = (txn, node)
        if key in self.installed:
            checks["exactly_once"].add(
                f"transaction {txn} installed twice at node {node}", event
            )
        self.installed.add(key)

        # Per-node, per-fragment stream order.
        slot = (int(epoch), int(seq))
        if checks["fifo_order"].checked:
            last = self.last_slot.get((node, fragment))
            if last is not None and slot <= last:
                checks["fifo_order"].add(
                    f"node {node} installed {fragment} stream slot "
                    f"(epoch {slot[0]}, seq {slot[1]}) after "
                    f"(epoch {last[0]}, seq {last[1]})",
                    event,
                )
        previous = self.last_slot.get((node, fragment))
        if previous is None or slot > previous:
            self.last_slot[(node, fragment)] = slot

        # Cross-node slot ownership + install order, settled after the
        # pass (agreement is a whole-trace property).
        if checks["agreement"].checked:
            owner = self.slot_owner.setdefault((fragment, *slot), txn)
            if owner == txn:
                self.slot_event.setdefault((fragment, *slot), event)
            else:
                checks["agreement"].add(
                    f"stream slot (fragment {fragment}, epoch {slot[0]}, "
                    f"seq {slot[1]}) holds {owner} at one node but {txn} "
                    f"at node {node}",
                    event,
                )
            sequence = self.order.setdefault(fragment, {}).setdefault(
                node, []
            )
            if (fragment, node, txn) not in self.install_event:
                sequence.append(txn)
                self.install_event[(fragment, node, txn)] = event

        if event.get("type") == taxonomy.LINEAGE_COMMIT:
            self._on_commit(event, txn, node, fragment)

    def _on_commit(
        self, event: dict[str, Any], txn: str, node: str, fragment: str
    ) -> None:
        checks = self.report.checks
        agent = event.get("agent")
        epoch = int(event.get("epoch", 0))
        fencing = checks["epoch_fencing"]
        if fencing.checked:
            newest = self.max_epoch.get(fragment, 0)
            if epoch < newest:
                fencing.add(
                    f"commit {txn} minted at node {node} in stale epoch "
                    f"{epoch} of fragment {fragment}, after epoch "
                    f"{newest} was opened",
                    event,
                )
            minter = self.epoch_minter.setdefault((fragment, epoch), node)
            if minter != node:
                fencing.add(
                    f"commit {txn} minted at node {node} in epoch {epoch} "
                    f"of fragment {fragment}, already minted at {minter} "
                    f"with no token arrival in between",
                    event,
                )
        self.max_epoch[fragment] = max(self.max_epoch.get(fragment, 0), epoch)
        if checks["token_uniqueness"].checked and agent in self.in_transit:
            src, dst = self.in_transit[agent]
            checks["token_uniqueness"].add(
                f"commit {txn} minted by agent {agent} while its token "
                f"was in transit {src}->{dst}",
                event,
            )
        if not checks["initiation"].checked:
            return
        if not self.catalog_seen:
            checks["initiation"].checked = False
            checks["initiation"].reason = "no system.catalog event in trace"
            return
        expected_agent = self.fragment_agent.get(fragment)
        if expected_agent is not None and agent != expected_agent:
            checks["initiation"].add(
                f"commit {txn} on fragment {fragment} minted by agent "
                f"{agent}, whose catalog agent is {expected_agent}",
                event,
            )
        home = self.agent_home.get(agent)
        if home is not None and node != home and agent not in self.in_transit:
            checks["initiation"].add(
                f"commit {txn} minted at node {node} but agent {agent}'s "
                f"home is {home}",
                event,
            )
        objects = event.get("objects") or ()
        prefixes = self.fragment_prefixes.get(fragment, ())
        members = self.fragment_objects.get(fragment, set())
        for obj in objects:
            if obj in members or any(obj.startswith(p) for p in prefixes):
                continue
            checks["initiation"].add(
                f"commit {txn} wrote object {obj}, which is not in "
                f"fragment {fragment}",
                event,
            )

    # -- token movement ---------------------------------------------------

    def _on_depart(self, event: dict[str, Any]) -> None:
        check = self.report.checks["token_uniqueness"]
        agent = event.get("agent")
        src, dst = event.get("src"), event.get("dst")
        if check.checked:
            if agent in self.in_transit:
                check.add(
                    f"agent {agent} departed {src}->{dst} while already "
                    f"in transit {self.in_transit[agent][0]}->"
                    f"{self.in_transit[agent][1]}",
                    event,
                )
            home = self.agent_home.get(agent)
            if home is not None and src != home:
                check.add(
                    f"agent {agent} departed from {src} but its token "
                    f"was at {home}",
                    event,
                )
        self.in_transit[agent] = (src, dst)

    def _on_arrive(self, event: dict[str, Any]) -> None:
        check = self.report.checks["token_uniqueness"]
        agent = event.get("agent")
        dst = event.get("dst")
        flight = self.in_transit.pop(agent, None)
        if check.checked:
            if flight is None:
                check.add(
                    f"agent {agent} arrived at {dst} without a matching "
                    f"departure",
                    event,
                )
            elif flight[1] != dst:
                check.add(
                    f"agent {agent} arrived at {dst} but departed "
                    f"toward {flight[1]}",
                    event,
                )
        self.agent_home[agent] = dst
        # A legitimate arrival hands minting rights on: the new home may
        # mint in the fragments' current epochs without tripping the
        # two-minters fence.
        fragments = event.get("fragments") or ()
        if fragments:
            moved = set(fragments)
            for key in [k for k in self.epoch_minter if k[0] in moved]:
                del self.epoch_minter[key]

    # -- whole-trace checks ------------------------------------------------

    def finish(self) -> AuditReport:
        check = self.report.checks["agreement"]
        if check.checked:
            for fragment, by_node in sorted(self.order.items()):
                self._check_agreement(fragment, by_node)
        replication = self.report.checks["replication"]
        if replication.checked and not self.replicas_known:
            replication.checked = False
            replication.reason = (
                "no replica-set info in the system.catalog event"
                if self.catalog_seen
                else "no system.catalog event in trace"
            )
        availability = self.report.checks["availability"]
        if availability.checked and not self.catalog_seen:
            availability.checked = False
            availability.reason = "no system.catalog event in trace"
        self.accountant.finish()
        return self.report

    def _check_agreement(
        self, fragment: str, by_node: dict[str, list[str]]
    ) -> None:
        """Pairwise common-order consistency of one fragment's installs."""
        check = self.report.checks["agreement"]
        nodes = sorted(by_node)
        index = {
            node: {txn: i for i, txn in enumerate(by_node[node])}
            for node in nodes
        }
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                common = [
                    txn for txn in by_node[left] if txn in index[right]
                ]
                positions = [index[right][txn] for txn in common]
                for j in range(1, len(positions)):
                    if positions[j] < positions[j - 1]:
                        later = common[j - 1]
                        earlier = common[j]
                        check.add(
                            f"nodes {left} and {right} disagree on "
                            f"fragment {fragment} install order: "
                            f"{later} before {earlier} at {left}, "
                            f"after it at {right}",
                            self.install_event[(fragment, right, later)],
                        )
                        break


def infer_protocol(run: str) -> str | None:
    """Movement protocol named by a ``{protocol}@{seed}`` run label."""
    name = run.split("@", 1)[0]
    return name if name in RELAXED_CHECKS or name in _KNOWN_PROTOCOLS else None


#: Protocol names the guarantee matrix knows (kept in sync with
#: :data:`repro.analysis.torture.PROTOCOLS` without importing it — the
#: auditor must stay runnable on a bare trace file).
_KNOWN_PROTOCOLS = frozenset(
    {"none", "majority", "with-data", "with-seqno", "corrective"}
)


def audit_events(
    events: Iterable[dict[str, Any]],
    protocol: str | None = None,
    run: str = "",
) -> AuditReport:
    """Audit one run's event dicts (emission order) against the invariants."""
    auditor = _Auditor(run, protocol)
    for event in events:
        auditor.feed(event)
    return auditor.finish()


def audit_trace(
    path: str, protocol: str | None = None
) -> dict[str, AuditReport]:
    """Audit a JSONL trace file, one report per ``run`` context value.

    Events with no ``run`` field group under ``""``.  When ``protocol``
    is not forced, each run's protocol is inferred from a
    ``{protocol}@{seed}`` label (the chaos harness convention); unknown
    labels audit at full strictness.
    """
    grouped: dict[str, list[dict[str, Any]]] = {}
    for record in read_trace(path):
        grouped.setdefault(str(record.get("run", "")), []).append(record)
    return {
        run: audit_events(
            events, protocol=protocol or infer_protocol(run), run=run
        )
        for run, events in sorted(grouped.items())
    }


def write_report(path: str, reports: dict[str, AuditReport]) -> None:
    """Write audit reports as a JSON document (one entry per run)."""
    payload = {
        "ok": all(report.ok for report in reports.values()),
        "runs": {run: report.as_dict() for run, report in reports.items()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- timeline reconstruction ---------------------------------------------


def _event_txns(event: dict[str, Any]) -> list[str]:
    """Transaction ids an event mentions (singular fields + batch lists)."""
    out = []
    for key in ("txn", "source_txn"):
        value = event.get(key)
        if value:
            out.append(str(value))
    txns = event.get("txns")
    if isinstance(txns, list):
        out.extend(str(t) for t in txns)
    return out


def related_txns(events: Iterable[dict[str, Any]], txn_id: str) -> set[str]:
    """``txn_id`` plus its lineage relatives via ``parent`` links.

    Walks both directions to a fixpoint: ancestors (the original a
    repackaged ``rp:T`` came from) and descendants (repackagings of the
    asked-for transaction).
    """
    parents: dict[str, str] = {}
    for event in events:
        parent = event.get("parent")
        if parent:
            for txn in _event_txns(event):
                parents[txn] = str(parent)
    related = {txn_id}
    changed = True
    while changed:
        changed = False
        for child, parent in parents.items():
            if child in related and parent not in related:
                related.add(parent)
                changed = True
            if parent in related and child not in related:
                related.add(child)
                changed = True
    return related


def build_timeline(
    events: Iterable[dict[str, Any]], txn_id: str
) -> list[dict[str, Any]]:
    """Events touching ``txn_id`` (or its lineage relatives), in order.

    The returned dicts are the trace records verbatim — ``repro
    timeline`` renders them, tests assert on them.
    """
    materialized = list(events)
    wanted = related_txns(materialized, txn_id)
    return [
        event
        for event in materialized
        if any(txn in wanted for txn in _event_txns(event))
    ]


def timeline_from_trace(
    path: str, txn_id: str, run: str | None = None
) -> list[dict[str, Any]]:
    """Load a JSONL trace and build one transaction's timeline."""
    events = [
        record
        for record in read_trace(path)
        if run is None or str(record.get("run", "")) == run
    ]
    return build_timeline(events, txn_id)
