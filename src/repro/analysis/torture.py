"""Randomized torture testing of the Section 4.4 movement protocols.

Each run drives a single-fragment system with random update traffic
while the agent hops between random nodes and random partitions come
and go.  After quiescence the per-protocol guarantees are checked:

===========  ===================  ==============================
protocol     mutual consistency   fragmentwise serializability
===========  ===================  ==============================
with-data    must hold            must hold
with-seqno   must hold            must hold
majority     must hold            must hold
corrective   must hold            may fail (knowingly sacrificed)
none         may fail             may fail
===========  ===================  ==============================

The harness is shared by the hypothesis test-suite (small sizes) and
the E13 benchmark (seed sweeps with violation counts): the paper's
protocol table emerges from the aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.ops import Read, Write
from repro.core.movement.base import MovementProtocol
from repro.core.movement.corrective import CorrectiveMoveProtocol
from repro.core.movement.majority import MajorityCommitProtocol
from repro.core.movement.none_protocol import InstantMoveProtocol
from repro.core.movement.with_data import MoveWithDataProtocol
from repro.core.movement.with_seqno import MoveWithSeqnoProtocol
from repro.core.system import FragmentedDatabase
from repro.net.faults import FaultPlan
from repro.replication import PipelineConfig
from repro.sim.rng import SeededRng

PROTOCOLS: dict[str, type[MovementProtocol]] = {
    "none": InstantMoveProtocol,
    "majority": MajorityCommitProtocol,
    "with-data": MoveWithDataProtocol,
    "with-seqno": MoveWithSeqnoProtocol,
    "corrective": CorrectiveMoveProtocol,
}

# Which guarantee each protocol must uphold in every run.
GUARANTEES = {
    "none": {"mc": False, "fw": False},
    "majority": {"mc": True, "fw": True},
    "with-data": {"mc": True, "fw": True},
    "with-seqno": {"mc": True, "fw": True},
    "corrective": {"mc": True, "fw": False},
}


@dataclass
class TortureResult:
    """Outcome flags of one randomized movement run."""

    seed: int
    protocol: str
    submitted: int
    committed: int
    moves: int
    mutually_consistent: bool
    fragmentwise: bool

    def respects_guarantees(self) -> bool:
        """True iff the run satisfied its protocol's promised matrix."""
        required = GUARANTEES[self.protocol]
        if required["mc"] and not self.mutually_consistent:
            return False
        if required["fw"] and not self.fragmentwise:
            return False
        return True


def run_movement_torture(
    seed: int,
    protocol_name: str,
    n_nodes: int = 4,
    n_updates: int = 15,
    n_moves: int = 3,
    horizon: float = 200.0,
    pipeline: PipelineConfig | None = None,
    faults: FaultPlan | None = None,
    db_sink: list | None = None,
) -> TortureResult:
    """One seeded run: random traffic, random moves, random partitions.

    ``faults`` layers a seeded fault plan (message loss, duplication,
    jitter, …) under the run; the chaos harness in
    :mod:`repro.analysis.nemesis` composes full fault schedules on top
    of this same workload shape.  ``db_sink``, when given, receives the
    quiesced :class:`FragmentedDatabase` so callers can read its
    metrics (the E13b bench prints the pipeline latency histograms).
    """
    rng = SeededRng(seed)
    nodes = [f"N{i}" for i in range(n_nodes)]
    protocol = PROTOCOLS[protocol_name]()
    db = FragmentedDatabase(
        nodes, movement=protocol, seed=seed, pipeline=pipeline, faults=faults
    )
    db.add_agent("ag", home_node=nodes[0])
    objects = ["u", "v", "w"]
    db.add_fragment("F", agent="ag", objects=objects)
    db.load({obj: 0 for obj in objects})
    db.finalize()

    trackers = []

    def submit(index: int) -> None:
        chosen = [obj for obj in objects if rng.bernoulli(0.5)] or [
            rng.choice(objects)
        ]
        value = rng.randint(1, 10_000)

        def body(_ctx):
            total = 0
            for obj in chosen:
                observed = yield Read(obj)
                total += observed
            for obj in chosen:
                yield Write(obj, total + value)

        trackers.append(
            db.submit_update(
                "ag", body, reads=chosen, writes=chosen, txn_id=f"T{index}"
            )
        )

    for index in range(n_updates):
        db.sim.schedule_at(
            rng.uniform(0, horizon * 0.7), lambda i=index: submit(i)
        )
    moves = 0
    for _ in range(n_moves):
        destination = rng.choice(nodes)
        db.sim.schedule_at(
            rng.uniform(0, horizon * 0.7),
            lambda d=destination: _try_move(db, d),
        )
        moves += 1
    # One or two partition episodes inside the horizon.
    for _ in range(rng.randint(1, 2)):
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        cut_at = rng.randint(1, n_nodes - 1)
        groups = [shuffled[:cut_at], shuffled[cut_at:]]
        start = rng.uniform(0, horizon * 0.5)
        end = rng.uniform(start + 5, horizon * 0.9)
        db.sim.schedule_at(start, lambda g=groups: _repartition(db, g))
        db.sim.schedule_at(end, db.partitions.heal_now)
    db.quiesce()

    if db_sink is not None:
        db_sink.append(db)
    return TortureResult(
        seed=seed,
        protocol=protocol_name,
        submitted=len(trackers),
        committed=sum(1 for t in trackers if t.succeeded),
        moves=moves,
        mutually_consistent=db.mutual_consistency().consistent,
        fragmentwise=db.fragmentwise_serializability().ok,
    )


def _try_move(db: FragmentedDatabase, destination: str) -> None:
    agent = db.agents["ag"]
    token = agent.token_for("F")
    if token.in_transit or agent.home_node == destination:
        return
    if db.nodes[destination].down:
        return  # never move the agent onto a crashed node
    if any(
        not db.replicates(destination, fragment)
        for fragment in agent.fragments
    ):
        return  # the agent only runs where its fragments are replicated
    db.move_agent("ag", destination, transport_delay=2.0)


def _repartition(db: FragmentedDatabase, groups) -> None:
    # Heal any previous cut first so groups apply cleanly.
    db.partitions.heal_now()
    db.partitions.partition_now(groups)
