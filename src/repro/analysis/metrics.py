"""Correctness summaries shared by the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import FragmentedDatabase


@dataclass
class CorrectnessSummary:
    """All correctness checks of one finished run, in one record."""

    globally_serializable: bool
    fragmentwise_serializable: bool
    property1: bool
    property2: bool
    mutually_consistent: bool
    single_fragment_violations: int
    multi_fragment_violations: int

    def as_flags(self) -> str:
        """Compact ``GS/FW/MC`` flag string for tables."""
        flag = lambda ok: "yes" if ok else "NO"  # noqa: E731 - tiny local fmt
        return (
            f"GS={flag(self.globally_serializable)} "
            f"FW={flag(self.fragmentwise_serializable)} "
            f"MC={flag(self.mutually_consistent)}"
        )


def correctness_summary(db: FragmentedDatabase) -> CorrectnessSummary:
    """Run every checker against a quiesced system."""
    gs = db.global_serializability()
    fw = db.fragmentwise_serializability()
    mutual = db.mutual_consistency()
    violations = db.predicates.evaluate_all(
        node.store for node in db.nodes.values()
    )
    return CorrectnessSummary(
        globally_serializable=gs.ok,
        fragmentwise_serializable=fw.ok,
        property1=fw.property1.ok,
        property2=fw.property2.ok,
        mutually_consistent=mutual.consistent,
        single_fragment_violations=violations.single,
        multi_fragment_violations=violations.multi,
    )
