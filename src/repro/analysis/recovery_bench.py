"""E17: checkpoint-recovery benchmark (full replay vs delta vs snapshot).

One scenario, three recovery configurations: a replica crashes a
quarter of the way through a seeded update workload and rejoins after
the traffic ends.  What differs is how the cluster prepared for the
rejoin:

* ``full`` — recovery subsystem disarmed: no checkpoints, nothing
  pruned.  The rejoiner replays its *entire* WAL and the donor ships
  the whole missed range from an archive that also never shrinks.
* ``checkpoint`` — periodic checkpoints with ``grace=None``: the downed
  replica keeps pinning the compaction watermark, so the donor retains
  exactly the tail the rejoiner is missing and ships only that delta;
  the rejoiner restores checkpoint + WAL suffix locally.
* ``snapshot`` — periodic checkpoints with a finite grace: the downed
  replica stops pinning the watermark, the cluster compacts past its
  cursor, and rejoin needs a shipped checkpoint plus retained tail —
  the §4.4 long-partition case.

The point of the numbers: bytes shipped and WAL replayed must scale
with the *gap* (or the fragment size, for snapshots), not with run
history — that is the bounded-logs claim the subsystem makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.audit import audit_events
from repro.cc.ops import Read, Write
from repro.core.system import FragmentedDatabase
from repro.obs import taxonomy
from repro.recovery import RecoveryConfig
from repro.sim.rng import SeededRng

#: Recognized benchmark modes, in report order.
MODES = ("full", "checkpoint", "snapshot")

# Shipped-size estimate weights — kept identical to the recovery
# manager's retained-bytes gauge weights so "bytes shipped" and "bytes
# retained" are comparable quantities.
_QT_BYTES = 48
_WRITE_BYTES = 32
_CKPT_OBJECT_BYTES = 40


@dataclass(frozen=True)
class RejoinResult:
    """Measured cost of one crash/rejoin under one recovery mode."""

    mode: str
    seed: int
    committed: int
    stream_length: int  # total quasi-transactions in the fragment stream
    wal_replayed: int  # rejoiner's WAL records at the moment of recovery
    checkpoints: int
    archive_pruned: int
    delta_qts_shipped: int
    delta_objects_shipped: int
    checkpoints_shipped: int
    snapshot_objects_shipped: int
    bytes_shipped: int
    retained_bytes: int
    rejoin_ticks: float  # sim time from node.recover to catch-up done
    consistent: bool
    audit_ok: bool

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "committed": self.committed,
            "stream_length": self.stream_length,
            "wal_replayed": self.wal_replayed,
            "checkpoints": self.checkpoints,
            "archive_pruned": self.archive_pruned,
            "delta_qts_shipped": self.delta_qts_shipped,
            "delta_objects_shipped": self.delta_objects_shipped,
            "checkpoints_shipped": self.checkpoints_shipped,
            "snapshot_objects_shipped": self.snapshot_objects_shipped,
            "bytes_shipped": self.bytes_shipped,
            "retained_bytes": self.retained_bytes,
            "rejoin_ticks": round(self.rejoin_ticks, 3),
            "consistent": self.consistent,
            "audit_ok": self.audit_ok,
        }


def _recovery_for(
    mode: str, checkpoint_every: int, grace: float
) -> RecoveryConfig | None:
    if mode == "full":
        return None
    if mode == "checkpoint":
        return RecoveryConfig(checkpoint_every=checkpoint_every, grace=None)
    if mode == "snapshot":
        return RecoveryConfig(checkpoint_every=checkpoint_every, grace=grace)
    raise ValueError(f"unknown rejoin mode {mode!r}; expected one of {MODES}")


def run_rejoin(
    mode: str,
    seed: int = 7,
    n_nodes: int = 3,
    n_updates: int = 60,
    horizon: float = 300.0,
    checkpoint_every: int = 8,
    grace: float = 60.0,
    crash_node: str | None = None,
) -> RejoinResult:
    """One crash/rejoin measurement under one recovery mode.

    The workload stream is independent of the mode (same seed → same
    updates), so the three modes of one seed are directly comparable.
    The crashed replica is never the agent's home; it goes down at
    ``0.3 * horizon`` and recovers 20 ticks after the horizon, when
    every surviving update has long been installed — the measured
    catch-up is purely the rejoin cost.
    """
    rng = SeededRng(seed)
    nodes = [f"N{i}" for i in range(n_nodes)]
    victim = crash_node or nodes[-1]
    db = FragmentedDatabase(
        nodes, seed=seed, recovery=_recovery_for(mode, checkpoint_every, grace)
    )
    db.enable_tracing(None)
    db.add_agent("ag", home_node=nodes[0])
    objects = ["u", "v", "w"]
    db.add_fragment("F", agent="ag", objects=objects)
    db.load({obj: 0 for obj in objects})
    db.finalize()

    trackers = []

    def submit(index: int) -> None:
        chosen = [obj for obj in objects if rng.bernoulli(0.5)] or [
            rng.choice(objects)
        ]
        value = rng.randint(1, 10_000)

        def body(_ctx):
            total = 0
            for obj in chosen:
                observed = yield Read(obj)
                total += observed
            for obj in chosen:
                yield Write(obj, total + value)

        trackers.append(
            db.submit_update(
                "ag", body, reads=chosen, writes=chosen, txn_id=f"T{index}"
            )
        )

    for index in range(n_updates):
        db.sim.schedule_at(
            rng.uniform(0.0, horizon * 0.7), lambda i=index: submit(i)
        )

    wal_at_recovery = [0]

    def recover() -> None:
        wal_at_recovery[0] = len(db.nodes[victim].wal)
        db.recover_node(victim)

    db.sim.schedule_at(horizon * 0.3, lambda: db.fail_node(victim))
    db.sim.schedule_at(horizon + 20.0, recover)
    db.quiesce()

    events = [event.as_dict() for event in db.tracer]
    audit = audit_events(events, protocol=None, run=f"{mode}@{seed}")
    recovered_at = done_at = None
    for event in events:
        if event.get("node") != victim:
            continue
        if event["type"] == taxonomy.NODE_RECOVER and recovered_at is None:
            recovered_at = event["t"]
        elif event["type"] == taxonomy.RECOVERY_CATCHUP_DONE:
            done_at = event["t"]
    rejoin_ticks = (
        0.0
        if recovered_at is None or done_at is None
        else max(0.0, done_at - recovered_at)
    )

    value = db.metrics.value
    delta_qts = int(value("recovery.delta_qts_shipped") or 0)
    delta_objects = int(value("recovery.delta_objects_shipped") or 0)
    snapshot_objects = int(value("recovery.snapshot_objects_shipped") or 0)
    return RejoinResult(
        mode=mode,
        seed=seed,
        committed=sum(1 for t in trackers if t.succeeded),
        stream_length=int(db.nodes[nodes[0]].streams.next_expected["F"]),
        wal_replayed=wal_at_recovery[0],
        checkpoints=int(value("recovery.checkpoints") or 0),
        archive_pruned=int(value("recovery.archive_pruned") or 0),
        delta_qts_shipped=delta_qts,
        delta_objects_shipped=delta_objects,
        checkpoints_shipped=int(value("recovery.checkpoints_shipped") or 0),
        snapshot_objects_shipped=snapshot_objects,
        bytes_shipped=(
            delta_qts * _QT_BYTES
            + delta_objects * _WRITE_BYTES
            + snapshot_objects * _CKPT_OBJECT_BYTES
        ),
        retained_bytes=int(value("recovery.retained_bytes") or 0),
        rejoin_ticks=rejoin_ticks,
        consistent=db.mutual_consistency().consistent,
        audit_ok=audit.ok,
    )


def run_rejoin_comparison(
    seed: int = 7,
    n_updates: int = 60,
    horizon: float = 300.0,
    checkpoint_every: int = 8,
    grace: float = 60.0,
) -> dict[str, RejoinResult]:
    """All three modes of one seed, keyed by mode (the E17 table)."""
    return {
        mode: run_rejoin(
            mode,
            seed=seed,
            n_updates=n_updates,
            horizon=horizon,
            checkpoint_every=checkpoint_every,
            grace=grace,
        )
        for mode in MODES
    }
