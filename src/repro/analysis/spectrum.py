"""The Figure 1.1 spectrum, measured (experiments E1 and E9).

One scripted banking scenario — same accounts, same operation stream,
same partition episode — is replayed against six systems spanning the
paper's correctness-availability spectrum:

======================  =============================================
``mutual-exclusion``    Section 1 conservative baseline [8]
``fa-read-locks``       fragments & agents, Section 4.1
``fa-acyclic``          fragments & agents, Section 4.2 (write-only
                        customer ops so the RAG stays a star)
``fa-unrestricted``     fragments & agents, Section 4.3
``optimistic``          free-for-all + validation/backout [4]
``log-transform``       free-for-all + log merge [2]
======================  =============================================

Each run yields one :class:`SpectrumRow`: customer-facing availability,
which correctness properties held, how many multi-fragment invariants
ended up violated, how many corrective actions were needed, and the
message cost.  The paper's Figure 1.1 is qualitative; these rows are
its quantitative rendering — availability must increase down the table
while the guaranteed correctness weakens.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.baselines.log_transform import LogTransformSystem, Operation
from repro.baselines.mutual_exclusion import MutualExclusionSystem
from repro.baselines.optimistic import OptimisticSystem
from repro.cc.ops import Read, Write
from repro.core.control.acyclic import AcyclicReadsStrategy
from repro.core.control.base import ControlStrategy
from repro.core.control.read_locks import ReadLocksStrategy
from repro.core.control.unrestricted import UnrestrictedReadsStrategy
from repro.core.system import FragmentedDatabase
from repro.net.faults import FaultPlan
from repro.replication import PipelineConfig
from repro.sim.rng import SeededRng
from repro.workloads.banking import BankingWorkload
from repro.workloads.generator import BankingDriver, OpEvent, generate_script


@dataclass
class SpectrumConfig:
    """Shared scenario parameters for every compared system."""

    nodes: Sequence[str] = ("A", "B", "C", "D")
    n_accounts: int = 8
    owners_per_account: int = 2
    initial_balance: float = 200.0
    partition_start: float = 100.0
    partition_end: float = 400.0
    partition_groups: Sequence[Sequence[str]] = (("A",), ("B", "C", "D"))
    horizon: float = 600.0
    mean_interarrival: float = 4.0
    withdraw_fraction: float = 0.6
    amount_range: tuple[float, float] = (20.0, 150.0)
    account_skew: float = 0.9
    seed: int = 7
    overdraft_fine: float = 25.0
    lock_timeout: float = 60.0
    #: Replication-pipeline group commit (1 / 0.0 = one message per
    #: quasi-transaction, the paper's baseline propagation).
    batch_size: int = 1
    batch_window: float = 0.0
    #: Message-level fault injection (0.0 = the default reliable
    #: substrate).  Applies to the fragments-and-agents runs only — the
    #: pre-observability baselines run their own network stacks.
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    jitter: float = 0.0

    def pipeline_config(self) -> PipelineConfig | None:
        """Pipeline settings for the fragments-and-agents runs."""
        if self.batch_size == 1 and self.batch_window == 0.0:
            return None
        return PipelineConfig(
            batch_size=self.batch_size, batch_window=self.batch_window
        )

    def fault_plan(self) -> FaultPlan | None:
        """Message-fault plan for the fragments-and-agents runs."""
        if not (self.loss_rate or self.dup_rate or self.jitter):
            return None
        return FaultPlan(
            loss_rate=self.loss_rate,
            dup_rate=self.dup_rate,
            jitter=self.jitter,
        )

    @property
    def accounts(self) -> list[str]:
        """Account ids."""
        return [f"acct{i}" for i in range(self.n_accounts)]

    def account_owners(self, account: str) -> list[tuple[str, str]]:
        """(owner id, home node) pairs, spread round-robin over nodes.

        Joint owners of one account land on *different* nodes — during
        the scripted partition they typically end up in different
        groups, which is what recreates the paper's "same account,
        withdrawals at two locations" scenarios at scale.
        """
        index = self.accounts.index(account)
        nodes = list(self.nodes)
        return [
            (f"{account}-o{j}", nodes[(index + j) % len(nodes)])
            for j in range(self.owners_per_account)
        ]

    def owner_home(self, account: str, owner: int) -> str:
        """The node where the given owner issues transactions."""
        return self.account_owners(account)[owner][1]


@dataclass
class SpectrumRow:
    """One system's measured position on the spectrum."""

    system: str
    submitted: int
    committed: int
    denied: int  # rejected + timed out (availability losses)
    availability: float
    globally_serializable: bool
    fragmentwise_serializable: bool
    mutually_consistent: bool
    multi_violations: int
    corrective_actions: int
    messages: int
    notes: str = ""

    def as_tuple(self) -> tuple:
        """Row for the report table."""
        return (
            self.system,
            self.submitted,
            self.committed,
            self.denied,
            round(self.availability, 3),
            self.globally_serializable,
            self.fragmentwise_serializable,
            self.mutually_consistent,
            self.multi_violations,
            self.corrective_actions,
            self.messages,
        )


SPECTRUM_HEADERS = [
    "system",
    "subm",
    "ok",
    "denied",
    "avail",
    "GS",
    "FW",
    "MC",
    "multiviol",
    "corrective",
    "msgs",
]


def scenario_script(config: SpectrumConfig) -> list[OpEvent]:
    """The shared deterministic operation stream."""
    rng = SeededRng(config.seed)
    return generate_script(
        rng,
        config.accounts,
        config.horizon,
        mean_interarrival=config.mean_interarrival,
        withdraw_fraction=config.withdraw_fraction,
        amount_range=config.amount_range,
        account_skew=config.account_skew,
        owners_per_account=config.owners_per_account,
    )


# -- fragments-and-agents runs ----------------------------------------------


def run_fragments_agents(
    config: SpectrumConfig,
    strategy: ControlStrategy,
    label: str,
    view_mode: str = "own",
    trace_path: str | None = None,
    db_sink: list | None = None,
    on_db=None,
) -> SpectrumRow:
    """Run the scripted scenario on a fragments-and-agents system.

    With ``trace_path``, structured trace events are appended to that
    JSONL file with a ``run`` context field set to ``label`` — several
    spectrum runs can share one trace file and still be told apart by
    :func:`repro.obs.summary.summarize_trace`.  ``db_sink`` (a list the
    database is appended to) lets callers inspect the finished system —
    e.g. the ``repro metrics`` subcommand printing ``db.snapshot()``.
    ``on_db`` is called with the database *before* the run starts, so
    callers can attach instrumentation that must see the whole run
    (``repro metrics --watch`` arms a
    :class:`~repro.obs.timeline.TimelineSampler` here).
    """
    db = FragmentedDatabase(
        list(config.nodes),
        strategy=strategy,
        seed=config.seed,
        pipeline=config.pipeline_config(),
        faults=config.fault_plan(),
    )
    if db_sink is not None:
        db_sink.append(db)
    if on_db is not None:
        on_db(db)
    if trace_path is not None:
        db.enable_tracing(trace_path, append=True, context={"run": label})
    workload = BankingWorkload(
        db,
        {account: config.initial_balance for account in config.accounts},
        central_node=list(config.nodes)[0],
        owners={
            account: config.account_owners(account)
            for account in config.accounts
        },
        overdraft_fine=config.overdraft_fine,
        view_mode=view_mode,
    )
    driver = BankingDriver(db, workload)
    driver.schedule(scenario_script(config))
    db.sim.schedule_at(
        config.partition_start,
        lambda: db.partitions.partition_now(
            [list(g) for g in config.partition_groups]
        ),
        label="partition",
    )
    db.sim.schedule_at(
        config.partition_end, db.partitions.heal_now, label="heal"
    )
    db.quiesce()
    if trace_path is not None:
        db.tracer.close()

    outcomes = driver.stats.trackers
    committed = sum(1 for t in outcomes if t.succeeded)
    denied = sum(1 for t in outcomes if not t.succeeded)
    gs = db.global_serializability()
    fw = db.fragmentwise_serializability()
    mutual = db.mutual_consistency()
    # After quiescence the replicas agree; count violations once, at
    # the reference replica.
    violations = db.predicates.evaluate(
        db.nodes[list(config.nodes)[0]].store
    )
    return SpectrumRow(
        system=label,
        submitted=len(outcomes),
        committed=committed,
        denied=denied,
        availability=committed / len(outcomes) if outcomes else 1.0,
        globally_serializable=gs.ok,
        fragmentwise_serializable=fw.ok,
        mutually_consistent=mutual.consistent,
        multi_violations=violations.multi,
        corrective_actions=len(workload.stats.letters),
        # Sourced from the metrics registry; identical to the network's
        # plain attribute by the message-reconciliation invariant.
        messages=int(db.metrics.value("net.messages_sent")),
    )


# -- baseline runs ---------------------------------------------------------------


def run_mutual_exclusion(config: SpectrumConfig) -> SpectrumRow:
    """Section 1's conservative comparator on the same script."""
    system = MutualExclusionSystem(
        list(config.nodes), token_node=list(config.nodes)[0]
    )
    system.load(
        {f"bal:{account}": config.initial_balance for account in config.accounts}
    )
    script = scenario_script(config)
    for event in script:
        system.sim.schedule_at(
            event.time,
            lambda e=event: system.submit(
                config.owner_home(e.account, e.owner), _mutex_body(e),
                txn_id=None,
            ),
            label=f"{event.kind} {event.account}",
        )
    system.sim.schedule_at(
        config.partition_start,
        lambda: system.partitions.partition_now(
            [list(g) for g in config.partition_groups]
        ),
    )
    system.sim.schedule_at(config.partition_end, system.partitions.heal_now)
    system.quiesce()

    committed = sum(1 for t in system.trackers if t.committed)
    negative = 0  # mutual exclusion never overdraws
    return SpectrumRow(
        system="mutual-exclusion",
        submitted=len(system.trackers),
        committed=committed,
        denied=len(system.trackers) - committed,
        availability=system.availability,
        globally_serializable=True,  # single ordered writer group
        fragmentwise_serializable=True,
        mutually_consistent=system.mutual_consistency().consistent,
        multi_violations=negative,
        corrective_actions=0,
        messages=system.network.messages_sent,
    )


def _mutex_body(event: OpEvent):
    obj = f"bal:{event.account}"

    def body(_ctx: Any) -> Generator[Any, Any, Any]:
        balance = yield Read(obj)
        if event.kind == "deposit":
            yield Write(obj, balance + event.amount)
            return ("deposited", event.amount)
        if balance >= event.amount:
            yield Write(obj, balance - event.amount)
            return ("granted", event.amount)
        return ("refused", balance)

    return body


def _banking_apply(state: dict[str, Any], op: Operation) -> None:
    """Semantic re-execution for the free-for-all baselines."""
    key = f"bal:{op.params['account']}"
    if op.kind == "deposit":
        state[key] = state.get(key, 0.0) + op.params["amount"]
    elif op.kind == "withdraw":
        if op.params["granted"]:
            state[key] = state.get(key, 0.0) - op.params["amount"]
    elif op.kind == "fine":
        state[key] = state.get(key, 0.0) - op.params["amount"]


def run_log_transform(config: SpectrumConfig) -> SpectrumRow:
    """Section 1's free-for-all comparator on the same script."""

    def correct(state: dict[str, Any], _ops: list[Operation]) -> list[Operation]:
        corrections = []
        for account in config.accounts:
            if state.get(f"bal:{account}", 0.0) < 0:
                corrections.append(
                    Operation(
                        op_id=f"fine:{account}",
                        kind="fine",
                        params={
                            "account": account,
                            "amount": config.overdraft_fine,
                        },
                        timestamp=float("inf"),
                        node="reconciler",
                    )
                )
        return corrections

    system = LogTransformSystem(
        list(config.nodes), _banking_apply, correct_fn=correct
    )
    system.load(
        {f"bal:{account}": config.initial_balance for account in config.accounts}
    )
    _drive_semantic(system, config)
    system.quiesce()
    report = system.reconcile()
    system.quiesce()

    multi = sum(
        1
        for account in config.accounts
        if any(
            system.states[node].get(f"bal:{account}", 0.0) < 0
            for node in config.nodes
        )
    )
    return SpectrumRow(
        system="log-transform",
        submitted=system.accepted,
        committed=system.accepted,
        denied=0,
        availability=1.0,
        globally_serializable=not report.corrective_ops,
        fragmentwise_serializable=not report.corrective_ops,
        mutually_consistent=system.mutual_consistency().consistent,
        multi_violations=multi,
        corrective_actions=len(report.corrective_ops),
        messages=system.network.messages_sent + report.messages,
        notes=f"replayed={report.ops_replayed}",
    )


def run_optimistic(config: SpectrumConfig) -> SpectrumRow:
    """Davidson's optimistic comparator on the same script."""

    def read_write(op: Operation) -> tuple[set[str], set[str]]:
        key = f"bal:{op.params['account']}"
        return {key}, {key}

    system = OptimisticSystem(
        list(config.nodes), _banking_apply, read_write
    )
    system.load(
        {f"bal:{account}": config.initial_balance for account in config.accounts}
    )
    _drive_semantic(system, config)
    system.run()
    report = system.validate_and_merge()

    return SpectrumRow(
        system="optimistic",
        submitted=system.accepted,
        committed=system.accepted - report.backout_count,
        denied=report.backout_count,
        availability=system.effective_availability,
        globally_serializable=True,  # enforced by backout
        fragmentwise_serializable=True,
        mutually_consistent=system.mutual_consistency().consistent,
        multi_violations=0,
        corrective_actions=report.backout_count,
        messages=system.network.messages_sent,
        notes=f"backed_out={report.backout_count}",
    )


def _drive_semantic(system, config: SpectrumConfig) -> None:
    """Schedule the shared script on a semantic (op-based) baseline."""
    script = scenario_script(config)

    def fire(event: OpEvent) -> None:
        node = config.owner_home(event.account, event.owner)
        state = system.states[node]
        params: dict[str, Any] = {
            "account": event.account,
            "amount": event.amount,
        }
        if event.kind == "withdraw":
            balance = state.get(f"bal:{event.account}", 0.0)
            params["granted"] = balance >= event.amount
        system.submit(node, event.kind, params)

    for event in script:
        system.sim.schedule_at(
            event.time, lambda e=event: fire(e), label=f"{event.kind}"
        )
    system.sim.schedule_at(
        config.partition_start,
        lambda: system.partitions.partition_now(
            [list(g) for g in config.partition_groups]
        ),
    )
    system.sim.schedule_at(config.partition_end, system.partitions.heal_now)


# -- the full spectrum ------------------------------------------------------------


def run_spectrum(
    config: SpectrumConfig | None = None, trace_path: str | None = None
) -> list[SpectrumRow]:
    """All six systems, conservative to free-for-all (Figure 1.1 order).

    ``trace_path`` streams the fragments-and-agents runs' trace events
    to one shared JSONL file (the baselines predate the observability
    layer and contribute no events); the file is truncated first.
    """
    config = config or SpectrumConfig()
    if trace_path is not None:
        open(trace_path, "w", encoding="utf-8").close()  # truncate
    rows = [
        run_mutual_exclusion(config),
        run_fragments_agents(
            config,
            ReadLocksStrategy(
                lock_timeout=config.lock_timeout, retry_interval=2.0
            ),
            "fa-read-locks",
            view_mode="own",
            trace_path=trace_path,
        ),
        run_fragments_agents(
            config,
            AcyclicReadsStrategy(),
            "fa-acyclic",
            view_mode="none",
            trace_path=trace_path,
        ),
        run_fragments_agents(
            config,
            UnrestrictedReadsStrategy(),
            "fa-unrestricted",
            view_mode="own",
            trace_path=trace_path,
        ),
        run_optimistic(config),
        run_log_transform(config),
    ]
    return rows
