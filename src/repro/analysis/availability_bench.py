"""E21 — the availability accountant's books, checked against E20.

E20 (:mod:`repro.analysis.failover_bench`) measures write
unavailability *behaviorally*: a client resubmits rejected updates and
the window is "kill to the first commit after the kill".  E21 runs the
**same seeded workload** with the :class:`~repro.obs.timeline.
TimelineSampler` armed and the :class:`~repro.obs.availability.
AvailabilityAccountant` replaying the trace, then proves the
accounting layer against the measured ground truth:

* **determinism** — the supervised mode runs twice; the timeline dump
  and the accountant summary must hash identically (sampling rides the
  simulator's event queue, so both are pure functions of the seed);
* **agreement** — per agent, the accountant's crash window opens at
  the kill instant and closes no later than the behaviorally measured
  window (the accountant sees the token arrive at the successor; the
  client's first commit necessarily follows it);
* **contrast** — the supervised accountant's worst window and
  availability beat the unsupervised run's, mirroring E20's headline;
* against the committed ``BENCH_obs.json``, the whole record must
  match exactly (and availability must not regress beyond tolerance,
  for partially regenerated records).

Run it with ``python -m repro.cli availability-accounting-bench``.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.analysis.failover_bench import (
    DEFAULT_FACTOR,
    DEFAULT_FRAGMENTS,
    DEFAULT_HORIZON,
    DEFAULT_NODES,
    DEFAULT_UPDATES,
    run_mode,
)
from repro.obs.availability import account_events
from repro.obs.timeline import TimelineSampler

#: Sampling interval for the armed timeline (coarser than the default:
#: the bench hashes every record, and 5-tick resolution is plenty to
#: catch the kill/failover shape on a 200-tick horizon).
SAMPLE_TICK = 5.0

#: The committed benchmark record (repo root).
BENCH_FILE = "BENCH_obs.json"

#: Gate slack on supervised write-availability regression.
DEFAULT_TOLERANCE = 0.05

#: Kills fire at 60 + 15*i in the E20 workload (see failover_bench).
KILL_BASE = 60.0
KILL_STEP = 15.0

#: Window-boundary comparison slack (floats rounded through dicts).
EPS = 1e-6


def _run_accounted_mode(
    supervised: bool,
    nodes: int,
    fragments: int,
    updates: int,
    factor: int,
    horizon: float,
    seed: int,
) -> dict:
    """One E20 mode with the sampler armed and the accountant replayed."""
    box: list = []

    def attach(db) -> None:
        sampler = TimelineSampler(db.metrics, tick=SAMPLE_TICK)
        sampler.start(db.sim, until=horizon)

    measured = run_mode(
        supervised,
        nodes=nodes,
        fragments=fragments,
        updates=updates,
        factor=factor,
        horizon=horizon,
        seed=seed,
        db_sink=box,
        on_db=attach,
    )
    db = box[0]
    events = [event.as_dict() for event in db.tracer]
    accountant = account_events(events, end_time=db.sim.now)

    digest = hashlib.sha256()
    timeline_records = 0
    for record in db.metrics.timeline.records():
        digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        digest.update(b"\n")
        timeline_records += 1

    agent_windows: dict[str, dict] = {}
    for index in range(fragments):
        agent = f"a{index}"
        fragment_names = accountant.agent_fragments.get(agent, [])
        kill_at = KILL_BASE + KILL_STEP * index
        window = None
        for candidate in accountant.windows:
            if (
                candidate.fragment in fragment_names
                and candidate.dimension == "write"
                and candidate.start <= kill_at + EPS
                and (candidate.end is None or candidate.end >= kill_at)
            ):
                window = candidate
                break
        if window is not None:
            agent_windows[agent] = {
                "start": round(window.start, 4),
                "end": round(
                    window.end if window.end is not None else db.sim.now, 4
                ),
                "causes": sorted(window.causes),
                "kill_at": kill_at,
            }

    summary = accountant.summary()
    return {
        "measured": measured,
        "timeline_hash": digest.hexdigest(),
        "timeline_records": timeline_records,
        "timeline_samples": db.metrics.timeline.samples_taken,
        "write_availability": round(accountant.availability("write"), 6),
        "read_availability": round(accountant.availability("read"), 6),
        "worst_window": round(accountant.worst_window("write"), 4),
        "windows": len(accountant.windows),
        "agent_windows": agent_windows,
        "mttd_mean": summary["mttd_mean"],
        "mttr_mean": summary["mttr_mean"],
        "incidents": len(summary["incidents"]),
    }


def run_availability_accounting_bench(
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    factor: int = DEFAULT_FACTOR,
    horizon: float = DEFAULT_HORIZON,
    seed: int = 20,
) -> dict:
    """The full E21 run; returns the ``BENCH_obs.json`` dict.

    The supervised mode runs twice — the ``rerun_*`` fields carry the
    second pass's hashes so the determinism gate can compare without
    re-executing anything.
    """
    args = (nodes, fragments, updates, factor, horizon, seed)
    on = _run_accounted_mode(True, *args)
    rerun = _run_accounted_mode(True, *args)
    off = _run_accounted_mode(False, *args)
    return {
        "benchmark": "E21-availability-accounting",
        "nodes": nodes,
        "fragments": fragments,
        "updates": updates,
        "replication_factor": factor,
        "horizon": horizon,
        "seed": seed,
        "supervised": on,
        "unsupervised": off,
        "rerun_timeline_hash": rerun["timeline_hash"],
        "rerun_worst_window": rerun["worst_window"],
        "rerun_write_availability": rerun["write_availability"],
    }


def check_gates(
    result: dict,
    committed: dict | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, list[str]]:
    """Verify the E21 claims on a fresh result (see module docstring)."""
    messages: list[str] = []
    on = result["supervised"]
    off = result["unsupervised"]

    # Determinism: identical seed, identical books.
    if result["rerun_timeline_hash"] != on["timeline_hash"]:
        messages.append(
            "supervised: timeline dump differs between two runs of the "
            "same seed — sampling is not deterministic"
        )
    if result["rerun_worst_window"] != on["worst_window"] or (
        result["rerun_write_availability"] != on["write_availability"]
    ):
        messages.append(
            "supervised: accountant numbers differ between two runs of "
            "the same seed"
        )
    if not on["timeline_records"]:
        messages.append("supervised: the timeline sampler recorded nothing")

    # Agreement with E20's behaviorally measured windows.
    for mode, tag in ((on, "supervised"), (off, "unsupervised")):
        measured = mode["measured"]["unavailability"]
        for agent, window in mode["agent_windows"].items():
            kill_at = window["kill_at"]
            if abs(window["start"] - kill_at) > 1e-3:
                messages.append(
                    f"{tag}: accountant window for {agent} opens at "
                    f"{window['start']}, not at the kill ({kill_at})"
                )
            measured_end = kill_at + measured.get(agent, 0.0)
            if window["end"] > measured_end + 1e-3:
                messages.append(
                    f"{tag}: accountant window for {agent} closes at "
                    f"{window['end']}, after the measured first-commit "
                    f"window ({measured_end:.4f})"
                )
        missing = sorted(set(measured) - set(mode["agent_windows"]))
        if missing:
            messages.append(
                f"{tag}: no accountant window covers the kill of "
                f"agent(s) {missing}"
            )

    # The supervised/unsupervised contrast (E20's headline, re-derived
    # from the accountant instead of the client).
    if on["worst_window"] >= off["worst_window"]:
        messages.append(
            f"supervised worst window {on['worst_window']} not below "
            f"unsupervised {off['worst_window']}"
        )
    if on["write_availability"] <= off["write_availability"]:
        messages.append(
            f"supervised availability {on['write_availability']} not "
            f"above unsupervised {off['write_availability']}"
        )
    if not on["incidents"]:
        messages.append(
            "supervised: the accountant recorded no MTTD/MTTR incidents"
        )

    if committed is not None:
        floor = committed["supervised"]["write_availability"] * (
            1.0 - tolerance
        )
        if on["write_availability"] < floor:
            messages.append(
                f"supervised availability {on['write_availability']} "
                f"regressed below {floor:.4f} (committed "
                f"{committed['supervised']['write_availability']} - "
                f"{tolerance:.0%})"
            )
        if committed != result:
            messages.append(
                "deterministic record diverges from the committed "
                "BENCH_obs.json (regenerate with `python -m repro.cli "
                "availability-accounting-bench --json BENCH_obs.json` "
                "if the change is intentional)"
            )
    return not messages, messages


def load_committed(path: str = BENCH_FILE) -> dict | None:
    """The committed benchmark record, or None if absent."""
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_result(result: dict, path: str = BENCH_FILE) -> None:
    """Write the benchmark record as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
