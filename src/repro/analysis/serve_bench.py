"""E22 — HTTP-path throughput and latency over the asyncio backend.

Everything before this experiment measured the protocols inside the
discrete-event simulator.  E22 measures the *served system*: the same
protocol stack running on the asyncio runtime (real TCP between
nodes), fronted by the HTTP :class:`~repro.serve.app.FrontDoor`, and
driven by concurrent HTTP clients.  Recorded per run:

* **throughput** — committed updates per wall-clock second through
  the full client → HTTP → catalog route → submit → replicate path;
* **latency** — per-request wall p50/p99 (milliseconds);
* **availability under a kill** — with ``kill=True`` one agent's home
  node is hard-killed (socket blackhole + crash) mid-workload; every
  client write must still commit via the front door's queue-and-retry
  riding the supervisor's failover;
* **audit** — the §4.4 guarantee checks run over the trace captured
  from the live system, exactly as they run over simulator traces.

Unlike E18/E20 the numbers here come from real clocks and real
sockets, so the committed ``BENCH_serve.json`` is gated on *schema
and sanity* (all commits land, throughput positive, p50 ≤ p99, audit
clean) — never on exact hashes or absolute rates.  Run it directly
with ``python -m repro.cli serve-bench``.

:func:`run_live_chaos` is the same machinery pointed at fault
injection: ``repro chaos --backend=asyncio`` arms per-node fault
proxies (seeded drop/delay on real frames), hard-kills agent homes
mid-run, and asserts the guarantees on the captured trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from typing import Any

from repro.analysis.audit import audit_events
from repro.availability import AvailabilityConfig
from repro.core.system import FragmentedDatabase
from repro.serve import FrontDoor

#: Default workload shape (the CI smoke passes smaller values).
DEFAULT_NODES = 5
DEFAULT_FRAGMENTS = 2
DEFAULT_UPDATES = 40
DEFAULT_FACTOR = 3
DEFAULT_CLIENTS = 4
DEFAULT_TICK = 0.01

#: The committed benchmark record (repo root).
BENCH_FILE = "BENCH_serve.json"


def build_system(
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    factor: int = DEFAULT_FACTOR,
    tick: float = DEFAULT_TICK,
    fault_profile: dict[str, Any] | None = None,
    trace_path: str | None = None,
    trace_append: bool = False,
    trace_run: str | None = None,
) -> FragmentedDatabase:
    """One asyncio-backed database, supervisor armed, tracing on."""
    names = [f"N{i}" for i in range(nodes)]
    db = FragmentedDatabase(
        names,
        runtime="asyncio",
        tick=tick,
        replication_factor=factor,
        availability=AvailabilityConfig(),
        fault_profile=fault_profile,
    )
    for i in range(fragments):
        home = names[i % nodes]
        db.add_agent(f"ag{i}", home_node=home)
        db.add_fragment(f"F{i}", agent=f"ag{i}", objects=[f"x{i}"])
    db.load({f"x{i}": 0 for i in range(fragments)})
    db.finalize()
    db.enable_tracing(
        path=trace_path,
        append=trace_append,
        context={"run": trace_run} if trace_run else None,
    )
    return db


def _post(
    base: str, path: str, payload: dict, timeout: float = 60.0
) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _drive_workload(
    db: FragmentedDatabase,
    door: FrontDoor,
    updates: int,
    fragments: int,
    clients: int,
    kill: bool,
) -> dict[str, Any]:
    """Fire ``updates`` HTTP writes from ``clients`` threads.

    With ``kill`` set, agent 0's home node is hard-killed (socket
    blackhole + crash, topology untouched) once a third of the updates
    have committed, and revived after two thirds — the middle third
    must ride the supervisor's failover via front-door retries.
    """
    base = door.url
    latencies: list[float] = []
    outcomes: list[tuple[int, dict]] = []
    record_lock = threading.Lock()
    committed_so_far = threading.Semaphore(0)

    def client(worker: int) -> None:
        for i in range(worker, updates, clients):
            obj = f"x{i % fragments}"
            start = time.perf_counter()
            code, body = _post(
                base, "/updates", {"object": obj, "delta": 1}
            )
            elapsed = time.perf_counter() - start
            with record_lock:
                latencies.append(elapsed)
                outcomes.append((code, body))
            if code == 200:
                committed_so_far.release()

    def killer() -> None:
        victim = db.agents["ag0"].home_node
        for _ in range(updates // 3):
            committed_so_far.acquire()
        db.call_on_runtime(lambda: db.hard_kill_node(victim))
        # Hold the victim down until the supervisor actually re-homes
        # the agent — reviving earlier would let recovery race the
        # failover and the run would never exercise it.
        deadline = time.monotonic() + 60.0
        while (
            db.agents["ag0"].home_node == victim
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        for _ in range(updates // 3):
            committed_so_far.acquire()
        db.call_on_runtime(lambda: db.hard_revive_node(victim))

    threads = [
        threading.Thread(target=client, args=(w,), daemon=True)
        for w in range(clients)
    ]
    if kill:
        threads.append(threading.Thread(target=killer, daemon=True))
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    elapsed = time.perf_counter() - wall_start

    committed = sum(1 for code, _ in outcomes if code == 200)
    failures = [
        body for code, body in outcomes if code != 200
    ]
    ordered = sorted(latencies)

    def pct(p: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return round(ordered[index] * 1000.0, 2)

    return {
        "submitted": updates,
        "committed": committed,
        "failures": failures[:5],  # first few, for the report
        "failure_count": len(failures),
        "elapsed_s": round(elapsed, 3),
        "throughput_ups": round(committed / elapsed, 1) if elapsed else 0.0,
        "p50_ms": pct(50.0),
        "p99_ms": pct(99.0),
        "retries": db.metrics.value("http.updates_retried"),
    }


def run_serve_bench(
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    factor: int = DEFAULT_FACTOR,
    clients: int = DEFAULT_CLIENTS,
    tick: float = DEFAULT_TICK,
    kill: bool = True,
    trace_path: str | None = None,
) -> dict:
    """The full E22 run; returns the ``BENCH_serve.json`` dict."""
    db = build_system(
        nodes, fragments, factor, tick=tick, trace_path=trace_path
    )
    db.start_runtime()
    try:
        db.call_on_runtime(lambda: db.availability.start(until=10_000_000.0))
        with FrontDoor(db, retry_interval=0.2, deadline=60.0) as door:
            workload = _drive_workload(
                db, door, updates, fragments, clients, kill
            )
        # Let in-flight replication/acks drain before auditing.
        db.wait_until(
            lambda: db.network.metrics.value("tcp.outbox_now") == 0,
            timeout=30.0,
        )
        time.sleep(0.5)
        report = audit_events(e.as_dict() for e in db.tracer.events())
        failovers = db.metrics.value("avail.failovers")
    finally:
        db.tracer.close()
        db.stop_runtime()
    db.sim.check()
    return {
        "benchmark": "E22-serve-bench",
        "backend": "asyncio",
        "nodes": nodes,
        "fragments": fragments,
        "factor": factor,
        "clients": clients,
        "tick": tick,
        "kill": kill,
        "failovers": failovers,
        "audit_ok": report.ok,
        "audit_violations": report.violation_count,
        **workload,
    }


def run_live_chaos(
    seed: int = 0,
    drop: float = 0.05,
    delay: float = 0.002,
    nodes: int = DEFAULT_NODES,
    fragments: int = DEFAULT_FRAGMENTS,
    updates: int = DEFAULT_UPDATES,
    factor: int = DEFAULT_FACTOR,
    clients: int = DEFAULT_CLIENTS,
    tick: float = DEFAULT_TICK,
    trace_path: str | None = None,
    trace_append: bool = False,
) -> dict:
    """Chaos on the real backend: seeded frame drops + a hard kill.

    Every node's traffic flows through a frame-aware fault proxy that
    drops ``drop`` of frames and delays the rest by ``delay`` seconds;
    one agent home is hard-killed and revived mid-run.  The guarantee
    bar is the same as the simulator nemesis: every client update
    commits, and the §4.4 audit over the captured trace is clean.
    """
    db = build_system(
        nodes,
        fragments,
        factor,
        tick=tick,
        fault_profile={"drop": drop, "delay": delay, "seed": seed},
        trace_path=trace_path,
        trace_append=trace_append,
        trace_run=f"live@{seed}",
    )
    db.start_runtime()
    try:
        db.call_on_runtime(lambda: db.availability.start(until=10_000_000.0))
        with FrontDoor(db, retry_interval=0.2, deadline=90.0) as door:
            workload = _drive_workload(
                db, door, updates, fragments, clients, kill=True
            )
        db.wait_until(
            lambda: db.network.metrics.value("tcp.outbox_now") == 0,
            timeout=30.0,
        )
        time.sleep(0.5)
        report = audit_events(e.as_dict() for e in db.tracer.events())
        proxies = db.network.proxies.values()
        stats = {
            "frames_dropped": sum(p.frames_dropped for p in proxies),
            "frames_blackholed": sum(p.frames_blackholed for p in proxies),
            "retransmits": db.metrics.value("retrans.resent"),
            "failovers": db.metrics.value("avail.failovers"),
        }
    finally:
        db.tracer.close()
        db.stop_runtime()
    db.sim.check()
    return {
        "backend": "asyncio",
        "seed": seed,
        "drop": drop,
        "delay": delay,
        "audit_ok": report.ok,
        "audit_violations": report.violation_count,
        "respects_guarantees": (
            workload["committed"] == workload["submitted"] and report.ok
        ),
        **stats,
        **workload,
    }


def check_gates(result: dict, committed: dict | None) -> tuple[bool, str]:
    """Sanity-and-schema gate for a fresh E22 run.

    Real clocks mean absolute rates are machine-dependent, so the gate
    asserts only what must hold everywhere: the recorded schema is
    stable, every submitted update committed, throughput is positive,
    the latency distribution is ordered, and the audit is clean.
    """
    problems = []
    if result.get("committed") != result.get("submitted"):
        problems.append(
            f"only {result.get('committed')}/{result.get('submitted')} "
            "updates committed"
        )
    if result.get("failure_count"):
        problems.append(f"{result['failure_count']} non-200 responses")
    if not result.get("throughput_ups", 0) > 0:
        problems.append("throughput not positive")
    if result.get("p50_ms", 0) > result.get("p99_ms", 0):
        problems.append(
            f"p50 {result.get('p50_ms')}ms > p99 {result.get('p99_ms')}ms"
        )
    if not result.get("audit_ok"):
        problems.append(
            f"audit failed with {result.get('audit_violations')} violations"
        )
    if committed is not None:
        missing = set(committed) - set(result)
        extra = set(result) - set(committed)
        if missing or extra:
            problems.append(
                f"schema drift vs {BENCH_FILE}: missing={sorted(missing)} "
                f"extra={sorted(extra)} (regenerate with `python -m "
                f"repro.cli serve-bench --json {BENCH_FILE}`)"
            )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"{result['committed']}/{result['submitted']} committed at "
        f"{result['throughput_ups']} updates/s (p50 {result['p50_ms']}ms, "
        f"p99 {result['p99_ms']}ms), audit clean"
    )


def load_committed(path: str = BENCH_FILE) -> dict | None:
    """The committed benchmark record, or None if absent."""
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_result(result: dict, path: str = BENCH_FILE) -> None:
    """Write the benchmark record as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
