"""Checkable correctness properties.

Every experiment ends by running these checkers against the recorded
history and the final replica states, turning the paper's claims into
assertions:

* **global serializability** — acyclic g.s.g. (Definition 8.2);
* **Property 1** — for every fragment, the schedule restricted to
  ``U(F_i)`` is serializable: the fragment's update stream is a single
  uninterrupted sequence and every replica installs a subsequence of it
  in order;
* **Property 2** — no transaction ever observes a partial effect of an
  update transaction (atomic quasi-transaction installation);
* **fragmentwise serializability** — Properties 1 and 2 together;
* **mutual consistency** — after quiescence, all replicas identical.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.cc.history import HistoryRecorder
from repro.core.gsg import is_globally_serializable
from repro.core.node import DatabaseNode


@dataclass
class MutualConsistencyReport:
    """Pairwise replica comparison result."""

    consistent: bool
    diffs: dict[tuple[str, str], list[str]] = field(default_factory=dict)

    def __str__(self) -> str:
        if self.consistent:
            return "mutually consistent"
        parts = [
            f"{a} vs {b}: {objs}" for (a, b), objs in self.diffs.items()
        ]
        return "DIVERGED: " + "; ".join(parts)


@dataclass
class PropertyReport:
    """Outcome of one property check with human-readable evidence."""

    ok: bool
    violations: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        if self.ok:
            return "holds"
        return "VIOLATED: " + "; ".join(self.violations[:5]) + (
            f" (+{len(self.violations) - 5} more)"
            if len(self.violations) > 5
            else ""
        )


@dataclass
class FragmentwiseReport:
    """Property 1 + Property 2 = fragmentwise serializability."""

    property1: PropertyReport
    property2: PropertyReport

    @property
    def ok(self) -> bool:
        """True iff both constituent properties hold."""
        return self.property1.ok and self.property2.ok


def check_mutual_consistency(
    nodes: Iterable[DatabaseNode],
    common_only: bool = False,
) -> MutualConsistencyReport:
    """Compare every replica against the first one, value by value.

    With ``common_only`` (partial replication) only objects present at
    *both* stores of a pair are compared; a replica lacking a fragment
    it does not replicate is not divergent.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        return MutualConsistencyReport(consistent=True)
    reference = nodes[0]
    diffs: dict[tuple[str, str], list[str]] = {}
    for other in nodes[1:]:
        if common_only:
            mismatched = reference.store.diff_common(other.store)
        else:
            mismatched = reference.store.diff(other.store)
        if mismatched:
            diffs[(reference.name, other.name)] = mismatched
    return MutualConsistencyReport(consistent=not diffs, diffs=diffs)


def check_global_serializability(recorder: HistoryRecorder) -> PropertyReport:
    """Acyclicity of the global serialization graph."""
    ok, cycle = is_globally_serializable(recorder)
    if ok:
        return PropertyReport(ok=True)
    return PropertyReport(
        ok=False, violations=[f"g.s.g. cycle: {' -> '.join(cycle)}"]
    )


def check_property1(recorder: HistoryRecorder) -> PropertyReport:
    """Each fragment's update schedule is a single serializable stream.

    Two failure modes, both observable with the "none" move protocol:
    duplicate stream positions (two diverged streams minted the same
    sequence number) and replicas installing a fragment's updates out
    of stream order.
    """
    violations: list[str] = []
    # 1. Unique stream positions per fragment (per epoch).  Failover
    # orphans are excluded: an epoch cut rewinds the sequence space, so
    # the successor legitimately re-mints a discarded slot.
    seen: dict[tuple[str, int], str] = {}
    fragments: set[str] = set()
    for txn in recorder.surviving:
        if not txn.is_update or txn.fragment is None:
            continue
        fragments.add(txn.fragment)
        key = (txn.fragment, txn.stream_seq)
        if key in seen and seen[key] != txn.txn_id:
            violations.append(
                f"fragment {txn.fragment!r}: transactions {seen[key]!r} and "
                f"{txn.txn_id!r} share stream position {txn.stream_seq}"
            )
        seen[key] = txn.txn_id

    # 2. Per node, installs of one fragment happen in stream order.
    per_node_fragment: dict[tuple[str, str], list[int]] = defaultdict(list)
    for record in recorder.installs:
        if record.txn_id in recorder.orphaned:
            continue  # installed, then discarded by the demotion
        per_node_fragment[(record.node, record.fragment)].append(
            record.stream_seq
        )
    for (node, fragment), seqs in per_node_fragment.items():
        deduped = [s for i, s in enumerate(seqs) if s not in seqs[:i]]
        if deduped != sorted(deduped):
            violations.append(
                f"node {node!r} installed fragment {fragment!r} updates out "
                f"of stream order: {seqs}"
            )
    return PropertyReport(ok=not violations, violations=violations)


def check_property2(recorder: HistoryRecorder) -> PropertyReport:
    """No reader observes a partial effect of any update transaction.

    For every update transaction S writing two or more objects that a
    reader T also read: T must be entirely before S (all read versions
    older than S's) or entirely after (all at-or-newer).  A mixed
    observation is a torn read — exactly what atomic quasi-transaction
    installation forbids.
    """
    writes_by_txn: dict[str, dict[str, int]] = defaultdict(dict)
    for txn in recorder.surviving:
        for write in txn.writes:
            writes_by_txn[txn.txn_id][write.obj] = write.version_no

    violations: list[str] = []
    for reader in recorder.surviving:
        if recorder.observed_orphan(reader):
            continue  # its observations belong to the cut-off branch
        read_versions = {read.obj: read.version_no for read in reader.reads}
        for source, source_writes in writes_by_txn.items():
            if source == reader.txn_id:
                continue
            shared = [obj for obj in source_writes if obj in read_versions]
            if len(shared) < 2:
                continue
            states = {
                read_versions[obj] >= source_writes[obj] for obj in shared
            }
            if len(states) > 1:
                violations.append(
                    f"{reader.txn_id!r} saw a partial effect of {source!r} "
                    f"on objects {shared}"
                )
    return PropertyReport(ok=not violations, violations=violations)


def check_fragmentwise_serializability(
    recorder: HistoryRecorder,
) -> FragmentwiseReport:
    """Properties 1 and 2 combined."""
    return FragmentwiseReport(
        property1=check_property1(recorder),
        property2=check_property2(recorder),
    )
