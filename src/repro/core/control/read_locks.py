"""Section 4.1: fixed agents, remote read locks.

The most conservative option: before executing, a transaction acquires
a shared lock on every object it intends to read outside the fragment
it updates.  "For each data object, it is clearly sufficient to acquire
the lock on it from the home node of the agent in charge of the
fragment containing that object, for that is the only node at which the
object can be updated."

Protocol (per transaction):

1. group the declared read set by fragment, drop the written fragment;
2. acquire fragment groups one at a time in sorted fragment order (the
   global ordering rules out distributed deadlock);
3. a lock site grants all-or-nothing; on "busy" the requester retries
   after ``retry_interval``;
4. an unreachable lock site simply never answers — the request times
   out after ``lock_timeout`` and the transaction is reported
   ``TIMED_OUT``.  This is precisely the availability loss the paper
   attributes to this option during partitions;
5. after local execution (commit or abort), every granted lock is
   released with an ``rlock-rel`` message (held across partitions, so
   locks on the far side of a partition are released at heal — the
   price of conservatism, also measurable).

The granted S locks live in the *remote* node's lock table, so they
genuinely block that node's agent from writing the locked objects
until release: this is what buys global serializability.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.core.control.base import ControlStrategy
from repro.core.transaction import RequestStatus, RequestTracker, TransactionSpec
from repro.net.message import Message
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase

KIND_REQ = "rlock-req"
KIND_GRANT = "rlock-grant"
KIND_REL = "rlock-rel"


class _Acquisition:
    """State machine for one transaction's remote lock acquisition."""

    def __init__(
        self,
        spec: TransactionSpec,
        tracker: RequestTracker,
        node: "DatabaseNode",
        fragment: str | None,
        plan: list[tuple[str, str, list[str]]],  # (fragment, lock_node, objs)
    ) -> None:
        self.spec = spec
        self.tracker = tracker
        self.node = node
        self.fragment = fragment
        self.plan = plan
        self.index = 0
        self.granted: list[tuple[str, list[str]]] = []  # (lock_node, objs)
        self.versions: dict = {}  # obj -> Version pinned at the lock site
        self.done = False
        self.timeout_handle: EventHandle | None = None
        self.request_sent_at = 0.0  # when the in-flight group was requested
        self.lease_deadlines: list[float] = []  # conservative, per grant
        self.restarts = 0

    @property
    def owner(self) -> str:
        """The lock-table owner id used at remote sites."""
        return f"rl:{self.spec.txn_id}"


class ReadLocksStrategy(ControlStrategy):
    """Remote read locks ahead of execution; global serializability."""

    name = "read-locks"

    def __init__(
        self,
        lock_timeout: float = 100.0,
        retry_interval: float = 5.0,
        lock_lease: float | None = None,
    ) -> None:
        self.lock_timeout = lock_timeout
        self.retry_interval = retry_interval
        # A granted remote lock expires at the lock site after this long
        # unless released earlier.  Without a lease, a grant message
        # severed by a partition leaves a ghost lock held until the heal
        # delivers the requester's give-up release — freezing the
        # agent's own updates for the whole partition.  The lease bounds
        # that damage; it outlives the requester's timeout, so a live
        # transaction never loses a lock it still needs.
        self.lock_lease = (
            lock_lease if lock_lease is not None else lock_timeout + 10.0
        )
        self._pending: dict[str, _Acquisition] = {}
        self.lock_requests_sent = 0
        self.lock_timeouts = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        for node in system.nodes.values():
            node.register_unicast(KIND_REQ, self._make_req_handler(system, node))
            node.register_unicast(KIND_GRANT, self._make_grant_handler(system))
            node.register_unicast(KIND_REL, self._make_rel_handler(node))

    # -- submission path -----------------------------------------------------

    def begin_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> None:
        self._begin(system, node, spec, tracker, fragment)

    def begin_readonly(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
    ) -> None:
        self._begin(system, node, spec, tracker, None)

    def after_local(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
    ) -> None:
        acq = self._pending.pop(spec.txn_id, None)
        if acq is None:
            return
        acq.done = True
        if acq.timeout_handle is not None:
            acq.timeout_handle.cancel()
        self._release_all(system, acq)

    # -- acquisition machinery ------------------------------------------------

    def _begin(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str | None,
    ) -> None:
        plan = self._plan(system, node, spec, fragment)
        if not plan:
            self._execute(system, node, spec, tracker, fragment)
            return
        acq = _Acquisition(spec, tracker, node, fragment, plan)
        self._pending[spec.txn_id] = acq
        acq.timeout_handle = system.sim.schedule(
            self.lock_timeout,
            lambda: self._on_timeout(system, acq),
            label=f"rlock timeout {spec.txn_id}",
        )
        self._request_next(system, acq)

    def _plan(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        fragment: str | None,
    ) -> list[tuple[str, str, list[str]]]:
        by_fragment: dict[str, list[str]] = defaultdict(list)
        for obj in spec.reads:
            read_fragment = system.catalog.fragment_of(obj)
            if read_fragment == fragment:
                continue  # intra-fragment read: the agent locks locally
            by_fragment[read_fragment].append(obj)
        plan = []
        for read_fragment in sorted(by_fragment):
            lock_node = system.agent_of(read_fragment).home_node
            if lock_node == node.name:
                # The transaction executes at the lock site itself: its
                # body's reads take regular local S locks under strict
                # 2PL, which is exactly the lock this plan would take.
                # Taking it under a separate external owner id would
                # alias one transaction as two lock owners and create
                # deadlocks the waits-for graph cannot see.
                continue
            plan.append((read_fragment, lock_node, by_fragment[read_fragment]))
        return plan

    def _request_next(self, system: "FragmentedDatabase", acq: _Acquisition) -> None:
        if acq.done:
            return
        if acq.index >= len(acq.plan):
            self._pending_execute(system, acq)
            return
        _fragment, lock_node, objs = acq.plan[acq.index]
        if lock_node == acq.node.name:
            ok = acq.node.scheduler.try_lock_external(acq.owner, objs)
            self._after_reply(system, acq, lock_node, objs, ok)
            return
        self.lock_requests_sent += 1
        acq.request_sent_at = system.sim.now
        system.network.send(
            acq.node.name,
            lock_node,
            KIND_REQ,
            {"owner": acq.owner, "objs": objs, "requester": acq.node.name,
             "txn": acq.spec.txn_id},
        )

    def _after_reply(
        self,
        system: "FragmentedDatabase",
        acq: _Acquisition,
        lock_node: str,
        objs: list[str],
        ok: bool,
        versions: dict | None = None,
    ) -> None:
        if acq.done:
            if ok:
                # Granted after we gave up: release immediately.
                self._release_one(system, acq, lock_node)
            return
        if ok:
            acq.granted.append((lock_node, objs))
            if versions:
                acq.versions.update(versions)
            # Conservative lease deadline: the lease started no earlier
            # than the moment we sent the request.
            acq.lease_deadlines.append(acq.request_sent_at + self.lock_lease)
            acq.index += 1
            self._request_next(system, acq)
        else:
            system.sim.schedule(
                self.retry_interval,
                lambda: self._request_next(system, acq),
                label=f"rlock retry {acq.spec.txn_id}",
            )

    def _pending_execute(self, system: "FragmentedDatabase", acq: _Acquisition) -> None:
        margin = self.retry_interval + 2.0
        if acq.lease_deadlines and (
            system.sim.now > min(acq.lease_deadlines) - margin
        ):
            # An early lock's lease may already have expired at its lock
            # site (acquiring the later groups took too long) — its
            # pinned version can be stale, which would silently break
            # global serializability.  Release everything and start the
            # acquisition over with fresh locks and fresh pins; the
            # overall transaction timeout still bounds the total wait.
            acq.restarts += 1
            self._release_all(system, acq)
            acq.versions.clear()
            acq.lease_deadlines.clear()
            acq.index = 0
            self._request_next(system, acq)
            return
        if acq.timeout_handle is not None:
            acq.timeout_handle.cancel()
        if acq.versions:
            acq.spec.meta["remote_versions"] = dict(acq.versions)
        if acq.lease_deadlines:
            # Commit-time guard: if local lock waits delay the commit
            # past this point, a lease may have expired mid-flight and
            # the pinned versions can no longer be trusted — the commit
            # is vetoed (see validate_actual_reads).
            acq.spec.meta["rlock_deadline"] = min(acq.lease_deadlines) - margin
        self._execute(system, acq.node, acq.spec, acq.tracker, acq.fragment)

    def _execute(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str | None,
    ) -> None:
        if fragment is None:
            node.execute_readonly(spec, tracker)
        else:
            node.execute_update(spec, tracker, fragment)

    def _on_timeout(self, system: "FragmentedDatabase", acq: _Acquisition) -> None:
        if acq.done:
            return
        acq.done = True
        self.lock_timeouts += 1
        self._pending.pop(acq.spec.txn_id, None)
        self._release_all(system, acq)
        system.recorder.record_rejection(
            acq.spec.txn_id, "remote read locks unavailable"
        )
        acq.tracker.finish(
            RequestStatus.TIMED_OUT,
            system.sim.now,
            reason="remote read locks unavailable within timeout",
        )

    # -- commit-time soundness guard ------------------------------------------

    def validate_actual_reads(self, system, node, handle, fragment) -> None:
        """Veto commits that outlived their remote-lock leases.

        A transaction pins remote versions at grant time; strict 2PL at
        the lock site keeps them current only while the lease lives.
        If local lock queues delayed this commit past the earliest
        conservative lease deadline, serializability can no longer be
        guaranteed — abort (callers retry with fresh locks).
        """
        from repro.errors import TransactionAborted

        spec = handle.meta.get("spec")
        if spec is None:
            return
        deadline = spec.meta.get("rlock_deadline")
        if deadline is not None and system.sim.now > deadline:
            raise TransactionAborted(
                handle.txn_id,
                "remote read-lock lease expired before commit",
            )

    # -- release ----------------------------------------------------------

    def _release_all(self, system: "FragmentedDatabase", acq: _Acquisition) -> None:
        for lock_node, _objs in acq.granted:
            self._release_one(system, acq, lock_node)
        acq.granted = []

    def _release_one(
        self, system: "FragmentedDatabase", acq: _Acquisition, lock_node: str
    ) -> None:
        if lock_node == acq.node.name:
            acq.node.scheduler.release_external(acq.owner)
        else:
            system.network.send(
                acq.node.name, lock_node, KIND_REL, {"owner": acq.owner}
            )

    # -- remote-side handlers -----------------------------------------------

    def _make_req_handler(self, system: "FragmentedDatabase", node: "DatabaseNode"):
        def handle(message: Message) -> None:
            body = message.payload
            ok = node.scheduler.try_lock_external(body["owner"], body["objs"])
            versions = {}
            if ok:
                # The grant pins the objects' *current* versions: the
                # requester's own replica may lag the fragment's stream,
                # and reading stale values under a lock would defeat the
                # global serializability this strategy pays for.
                versions = {
                    obj: node.store.read_version(obj) for obj in body["objs"]
                }
                system.sim.schedule(
                    self.lock_lease,
                    lambda: node.scheduler.release_external(body["owner"]),
                    label=f"rlock lease expiry {body['owner']}",
                )
            system.network.send(
                node.name,
                body["requester"],
                KIND_GRANT,
                {"owner": body["owner"], "objs": body["objs"], "ok": ok,
                 "lock_node": node.name, "txn": body["txn"],
                 "versions": versions},
            )

        return handle

    def _make_grant_handler(self, system: "FragmentedDatabase"):
        def handle(message: Message) -> None:
            body = message.payload
            acq = self._pending.get(body["txn"])
            if acq is None:
                # Transaction already finished; release a late grant.
                if body["ok"]:
                    system.network.send(
                        message.dst,
                        body["lock_node"],
                        KIND_REL,
                        {"owner": body["owner"]},
                    )
                return
            self._after_reply(
                system, acq, body["lock_node"], body["objs"], body["ok"],
                body.get("versions"),
            )

        return handle

    @staticmethod
    def _make_rel_handler(node: "DatabaseNode"):
        def handle(message: Message) -> None:
            node.scheduler.release_external(message.payload["owner"])

        return handle
