"""Control strategies: the paper's Section 4 family.

Three fixed-agent options, in decreasing order of restriction and
increasing order of availability:

* :class:`~repro.core.control.read_locks.ReadLocksStrategy` — §4.1,
  remote read locks, global serializability, lowest availability;
* :class:`~repro.core.control.acyclic.AcyclicReadsStrategy` — §4.2,
  no read synchronization, global serializability *if* the read-access
  graph is elementarily acyclic (validated at design time);
* :class:`~repro.core.control.unrestricted.UnrestrictedReadsStrategy`
  — §4.3, no read restrictions, fragmentwise serializability.

Agent movement is orthogonal and lives in
:mod:`repro.core.movement`.
"""

from repro.core.control.acyclic import AcyclicReadsStrategy
from repro.core.control.base import ControlStrategy
from repro.core.control.combined import CombinedStrategy
from repro.core.control.read_locks import ReadLocksStrategy
from repro.core.control.unrestricted import UnrestrictedReadsStrategy

__all__ = [
    "AcyclicReadsStrategy",
    "CombinedStrategy",
    "ControlStrategy",
    "ReadLocksStrategy",
    "UnrestrictedReadsStrategy",
]
