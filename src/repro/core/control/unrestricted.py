"""Section 4.3: fixed agents, no read access restrictions.

Maximum availability among the fixed-agent options: any transaction can
read anything locally, updates are gated only by the initiation
requirement.  Global serializability may be lost (Figure 4.3.2's cycle)
but fragmentwise serializability — Properties 1 and 2 — and mutual
consistency are guaranteed; the property checkers in
:mod:`repro.core.properties` verify both on every experiment run.
"""

from __future__ import annotations

from repro.core.control.base import ControlStrategy


class UnrestrictedReadsStrategy(ControlStrategy):
    """Reads are always local and never synchronized."""

    name = "unrestricted"
