"""Per-fragment strategy combination (the paper's conclusion).

"It is also possible to combine several of our strategies in a single
system.  Since all of our strategies are based on the same framework,
this combination is not difficult.  Hence it is possible to guarantee
mutual consistency for some fragments ..., fragmentwise serializability
for a set of other fragments ..., and conventional serializability
within another group ...  This gives us even greater flexibility in
tailoring a system to the correctness and availability requirements of
the users."

:class:`CombinedStrategy` routes each update transaction to the
strategy assigned to its fragment; read-only transactions route through
the initiating agent's fragment (falling back to the default).

Design-time soundness rule for Section 4.2 sub-strategies: a fragment
assigned the acyclic strategy must live in a weakly connected component
of the read-access graph that is elementarily acyclic *as a whole* —
reads cannot leave a weakly connected component, so a forest component
is globally serializable among its own transactions regardless of what
the rest of the database does.

Wiring caveat: strategies that register network handlers (currently
:class:`~repro.core.control.read_locks.ReadLocksStrategy`) must appear
at most once across the combination — one instance can serve any number
of fragments, but two instances would fight over the handler slots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.cc.scheduler import TxnHandle
from repro.core.control.acyclic import AcyclicReadsStrategy
from repro.core.control.base import ControlStrategy
from repro.core.transaction import RequestTracker, TransactionSpec
from repro.errors import DesignError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class CombinedStrategy(ControlStrategy):
    """Route control decisions to per-fragment sub-strategies."""

    name = "combined"

    def __init__(
        self,
        default: ControlStrategy,
        per_fragment: Mapping[str, ControlStrategy] | None = None,
    ) -> None:
        self.default = default
        self.per_fragment = dict(per_fragment or {})
        self._began: dict[str, ControlStrategy] = {}  # txn id -> strategy
        distinct = {id(s): s for s in self._all_strategies()}
        handler_owners = [
            s for s in distinct.values() if hasattr(s, "attach")
            and type(s).attach is not ControlStrategy.attach
        ]
        names = [type(s).__name__ for s in handler_owners]
        if len(names) != len(set(names)):
            raise DesignError(
                "two sub-strategy instances of the same handler-registering "
                "class; share one instance across fragments instead"
            )

    def _all_strategies(self) -> list[ControlStrategy]:
        return [self.default, *self.per_fragment.values()]

    def _for_fragment(self, fragment: str | None) -> ControlStrategy:
        if fragment is None:
            return self.default
        return self.per_fragment.get(fragment, self.default)

    def _for_readonly(
        self, system: "FragmentedDatabase", spec: TransactionSpec
    ) -> ControlStrategy:
        fragment = system.agent_fragments.get(spec.agent)
        return self._for_fragment(fragment)

    # -- lifecycle -----------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        seen: set[int] = set()
        for strategy in self._all_strategies():
            if id(strategy) not in seen:
                seen.add(id(strategy))
                strategy.attach(system)

    def validate_design(self, system: "FragmentedDatabase") -> None:
        for fragment, strategy in self.per_fragment.items():
            if fragment not in system.catalog:
                raise DesignError(
                    f"combined strategy assigns unknown fragment {fragment!r}"
                )
            if isinstance(strategy, AcyclicReadsStrategy):
                if not system.rag.component_is_elementarily_acyclic(fragment):
                    raise DesignError(
                        f"fragment {fragment!r} is assigned the Section 4.2 "
                        f"strategy but its read-access component "
                        f"{sorted(system.rag.component_of(fragment))} is not "
                        f"elementarily acyclic"
                    )
        if isinstance(self.default, AcyclicReadsStrategy):
            self.default.validate_design(system)

    # -- routing -----------------------------------------------------------------

    def begin_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> None:
        strategy = self._for_fragment(fragment)
        self._began[spec.txn_id] = strategy
        strategy.begin_update(system, node, spec, tracker, fragment)

    def begin_readonly(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
    ) -> None:
        strategy = self._for_readonly(system, spec)
        self._began[spec.txn_id] = strategy
        strategy.begin_readonly(system, node, spec, tracker)

    def validate_actual_reads(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        handle: TxnHandle,
        fragment: str | None,
    ) -> None:
        spec = handle.meta.get("spec")
        strategy = self._began.get(spec.txn_id) if spec else None
        if strategy is None:
            strategy = self._for_fragment(fragment)
        strategy.validate_actual_reads(system, node, handle, fragment)

    def after_local(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
    ) -> None:
        strategy = self._began.pop(spec.txn_id, self.default)
        strategy.after_local(system, node, spec, tracker)
