"""Control strategy interface."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cc.scheduler import TxnHandle
from repro.core.transaction import RequestTracker, TransactionSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class ControlStrategy:
    """Hooks a control option plugs into the submission path.

    The default implementations are the Section 4.3 behaviour: no read
    restrictions, execute locally, propagate at commit.
    """

    name = "base"

    def attach(self, system: "FragmentedDatabase") -> None:
        """One-time wiring (register unicast handlers, etc.)."""

    def validate_design(self, system: "FragmentedDatabase") -> None:
        """Design-time validation, called by ``system.finalize()``."""

    def begin_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> None:
        """Start an update transaction (after initiation checks pass)."""
        node.execute_update(spec, tracker, fragment)

    def begin_readonly(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
    ) -> None:
        """Start a read-only transaction."""
        node.execute_readonly(spec, tracker)

    def validate_actual_reads(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        handle: TxnHandle,
        fragment: str | None,
    ) -> None:
        """Commit-time check of the reads the body actually performed.

        May raise :class:`~repro.errors.TransactionAborted` to veto the
        commit (nothing has been installed yet at that point).
        """

    def after_local(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
    ) -> None:
        """Cleanup after local execution finished (commit or abort)."""
