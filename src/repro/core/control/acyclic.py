"""Section 4.2: fixed agents, elementarily acyclic read-access pattern.

No read locks and no run-time synchronization at all — but the database
*design* must keep the read-access graph elementarily acyclic, and then
the Section 4.2 theorem guarantees global serializability.  Enforcement
is therefore in two places:

* :meth:`validate_design` — the whole declared graph must be
  elementarily acyclic (raises :class:`~repro.errors.DesignError`);
* :meth:`validate_actual_reads` — at commit time, the reads an *update*
  transaction actually performed must stay within the declared edges
  (raises :class:`~repro.errors.TransactionAborted`, vetoing the
  commit).

Read-only transactions may optionally be exempted
(``allow_readonly_violations``), reflecting the paper's observation
that a non-serializable read-only transaction "will not leave any trace
on the database itself" — e.g. one warehouse peeking at another's
inventory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cc.scheduler import TxnHandle
from repro.core.control.base import ControlStrategy
from repro.errors import TransactionAborted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class AcyclicReadsStrategy(ControlStrategy):
    """Design-time acyclicity validation, zero run-time synchronization."""

    name = "acyclic"

    def __init__(self, allow_readonly_violations: bool = True) -> None:
        self.allow_readonly_violations = allow_readonly_violations
        self.readonly_violations_observed = 0

    def validate_design(self, system: "FragmentedDatabase") -> None:
        system.rag.assert_elementarily_acyclic()

    def validate_actual_reads(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        handle: TxnHandle,
        fragment: str | None,
    ) -> None:
        if fragment is None:
            if self.allow_readonly_violations:
                self._count_readonly_violations(system, handle)
                return
            home = self._readonly_home_fragment(system, handle)
            self._check(system, handle, home, readonly=True)
            return
        self._check(system, handle, fragment, readonly=False)

    # -- internals ----------------------------------------------------------

    def _check(
        self,
        system: "FragmentedDatabase",
        handle: TxnHandle,
        home_fragment: str | None,
        readonly: bool,
    ) -> None:
        for obj, _version in handle.reads:
            read_fragment = system.catalog.fragment_of(obj)
            if home_fragment is None:
                continue
            if not system.rag.allows(home_fragment, read_fragment):
                raise TransactionAborted(
                    handle.txn_id,
                    f"read of {obj!r} (fragment {read_fragment!r}) not "
                    f"declared in the read-access graph for "
                    f"{home_fragment!r}",
                )

    def _count_readonly_violations(
        self, system: "FragmentedDatabase", handle: TxnHandle
    ) -> None:
        home = self._readonly_home_fragment(system, handle)
        if home is None:
            return
        for obj, _version in handle.reads:
            read_fragment = system.catalog.fragment_of(obj)
            if not system.rag.allows(home, read_fragment):
                self.readonly_violations_observed += 1
                return

    @staticmethod
    def _readonly_home_fragment(
        system: "FragmentedDatabase", handle: TxnHandle
    ) -> str | None:
        """The fragment whose agent initiated a read-only transaction.

        Agents controlling several fragments have no unique home
        fragment; those read-only transactions are only checked against
        the union of their fragments' edges (None = unchecked).
        """
        spec = handle.meta.get("spec")
        if spec is None:
            return None
        agent = system.agents.get(spec.agent)
        if agent is None or len(agent.fragments) != 1:
            return None
        return agent.fragments[0]
