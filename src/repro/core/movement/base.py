"""Movement protocol interface and the fixed-agents default."""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.transaction import (
    QuasiTransaction,
    RequestTracker,
    TransactionSpec,
)
from repro.errors import TokenError
from repro.obs import taxonomy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class MovementProtocol:
    """Hooks the Section 4.4 protocols plug into the system.

    The base class implements the behaviour shared by all faithful
    protocols: per-fragment sequence-ordered quasi-transaction
    admission (buffer gaps, drop duplicates) and plain reliable
    broadcast for propagation.  Subclasses override the pieces their
    section of the paper changes.
    """

    name = "base"

    def attach(self, system: "FragmentedDatabase") -> None:
        """One-time wiring (register message handlers)."""
        self.system = system

    # -- propagation -------------------------------------------------------

    def propagate(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Send a freshly committed quasi-transaction to all replicas."""
        node.system.broadcast.broadcast(
            node.name, {"type": "qt", "qt": quasi}, kind="qt"
        )

    # -- admission -----------------------------------------------------------

    def admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Decide what to do with an arriving quasi-transaction.

        Default: install in per-fragment ``(epoch, stream_seq)`` order —
        gaps are buffered, duplicates dropped.  This is the paper's
        "processed at all other nodes in the same order as they were
        sent" requirement, keyed by fragment stream rather than sender
        so it stays correct when a later protocol moves the stream to a
        new sender node.
        """
        self._ordered_admit(node, quasi)

    def _ordered_admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        fragment = quasi.fragment
        key = (quasi.epoch, quasi.stream_seq)
        expected = (node.epoch[fragment], node.next_expected[fragment])
        if key < expected:
            return  # duplicate / already superseded
        if key > expected:
            node.qt_buffer[fragment][key] = quasi
            return
        node.next_expected[fragment] = quasi.stream_seq + 1
        node.enqueue_install(quasi)
        self._drain_buffer(node, fragment)

    def _drain_buffer(self, node: "DatabaseNode", fragment: str) -> None:
        buffer = node.qt_buffer[fragment]
        while True:
            key = (node.epoch[fragment], node.next_expected[fragment])
            quasi = buffer.pop(key, None)
            if quasi is None:
                return
            node.next_expected[fragment] = quasi.stream_seq + 1
            node.enqueue_install(quasi)

    def after_install(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Called after a quasi-transaction finished installing locally."""

    # -- update gating ---------------------------------------------------------

    def before_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> bool:
        """Gate an update submission.

        Return True to proceed to the control strategy; return False if
        the protocol took ownership of the request (queued it or
        finished the tracker itself).
        """
        return True

    # -- moving ----------------------------------------------------------------

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """Move an agent (with all its tokens) to a new home node."""
        raise TokenError(
            f"protocol {self.name!r} does not allow agents to move"
        )

    # -- shared move machinery -----------------------------------------------

    def _transport(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float,
        arrive: Callable[[], None],
    ) -> None:
        """Common physical-token transport: mark in transit, then arrive.

        While a token is in transit, update submissions for its
        fragment are rejected (the agent is on the road; see
        ``FragmentedDatabase.submit``).
        """
        agent = system.agents[agent_name]
        from_node = agent.home_node
        for fragment in agent.fragments:
            agent.token_for(fragment).begin_move(to_node)
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.TOKEN_MOVE_DEPART,
                agent=agent_name,
                src=from_node,
                dst=to_node,
                fragments=sorted(agent.fragments),
            )

        def complete() -> None:
            for fragment in agent.fragments:
                agent.token_for(fragment).complete_move()
            agent.home_node = to_node
            system.metrics.inc("token.moves_completed")
            if system.tracer.enabled:
                system.tracer.emit(
                    taxonomy.TOKEN_MOVE_ARRIVE,
                    agent=agent_name,
                    src=from_node,
                    dst=to_node,
                )
            arrive()

        system.sim.schedule(
            transport_delay, complete, label=f"token arrival {agent_name}"
        )


class FixedAgentsProtocol(MovementProtocol):
    """Agents never move — Sections 4.1-4.3 operation."""

    name = "fixed-agents"
