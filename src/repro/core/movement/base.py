"""Movement protocol interface and the fixed-agents default."""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.transaction import (
    QuasiTransaction,
    RequestTracker,
    TransactionSpec,
)
from repro.errors import TokenError
from repro.obs import taxonomy
from repro.replication.admission import AdmissionPolicy, OrderedAdmission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class MovementProtocol:
    """Hooks the Section 4.4 protocols plug into the system.

    Propagation and installation are owned by the shared replication
    pipeline (:mod:`repro.replication`); a movement protocol is, from
    the pipeline's point of view, an *admission policy* (its
    ``admission`` attribute) plus move/gating hooks.  The base class
    supplies the faithful defaults — ordered admission and direct
    pipeline submission at commit — and subclasses override only the
    pieces their section of the paper changes.
    """

    name = "base"

    #: Admission stage of the pipeline.  Policies are stateless, so a
    #: class-level default instance is shared by all protocols using it.
    admission: AdmissionPolicy = OrderedAdmission()

    def attach(self, system: "FragmentedDatabase") -> None:
        """One-time wiring (register message handlers)."""
        self.system = system

    # -- propagation -------------------------------------------------------

    def propagate(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Hand a freshly committed quasi-transaction to the pipeline."""
        node.system.pipeline.submit(node, quasi)

    # -- admission -----------------------------------------------------------

    def admit(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Decide what to do with an arriving quasi-transaction.

        Default (:class:`OrderedAdmission`): install in per-fragment
        ``(epoch, stream_seq)`` order — gaps are buffered, duplicates
        dropped.
        """
        self.admission.admit(node, quasi)

    def after_install(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        """Called after a quasi-transaction finished installing locally."""

    # -- update gating ---------------------------------------------------------

    def before_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> bool:
        """Gate an update submission.

        Return True to proceed to the control strategy; return False if
        the protocol took ownership of the request (queued it or
        finished the tracker itself).
        """
        return True

    # -- moving ----------------------------------------------------------------

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """Move an agent (with all its tokens) to a new home node."""
        raise TokenError(
            f"protocol {self.name!r} does not allow agents to move"
        )

    # -- shared move machinery -----------------------------------------------

    def _transport(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float,
        arrive: Callable[[], None],
    ) -> None:
        """Common physical-token transport: mark in transit, then arrive.

        While a token is in transit, update submissions for its
        fragment are rejected (the agent is on the road; see
        ``FragmentedDatabase.submit``).
        """
        agent = system.agents[agent_name]
        from_node = agent.home_node
        for fragment in agent.fragments:
            agent.token_for(fragment).begin_move(to_node)
        if system.tracer.enabled:
            system.tracer.emit(
                taxonomy.TOKEN_MOVE_DEPART,
                agent=agent_name,
                src=from_node,
                dst=to_node,
                fragments=sorted(agent.fragments),
            )

        def complete() -> None:
            for fragment in agent.fragments:
                agent.token_for(fragment).complete_move()
            agent.home_node = to_node
            system.metrics.inc("token.moves_completed")
            if system.tracer.enabled:
                system.tracer.emit(
                    taxonomy.TOKEN_MOVE_ARRIVE,
                    agent=agent_name,
                    src=from_node,
                    dst=to_node,
                    fragments=sorted(agent.fragments),
                )
            arrive()

        system.sim.schedule(
            transport_delay, complete, label=f"token arrival {agent_name}"
        )


class FixedAgentsProtocol(MovementProtocol):
    """Agents never move — Sections 4.1-4.3 operation."""

    name = "fixed-agents"
