"""Section 4.4.2A: moving with data.

"We require that A transport (by any means available) a copy of the
fragment stored at X to store it in place of the copy of the fragment
at site Y before resuming processing.  In addition, all other sites are
requested not to install updates from transaction T2 until those from
T1 have been installed."

The token's payload is the tape / magnetic strip: it carries a full
snapshot of the fragment's objects plus the stream position.  On
arrival the snapshot replaces Y's copy, Y's install bookkeeping jumps
to the carried position, and the agent resumes immediately — no
waiting, no majority.  Third nodes need no special treatment: the
stream's sequence numbering continues unbroken across the move, so the
default ordered admission already refuses to install T2 before T1.

Guarantees preserved: mutual consistency *and* fragmentwise
serializability.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.movement.base import MovementProtocol
from repro.replication.admission import drain_buffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FragmentedDatabase


class MoveWithDataProtocol(MovementProtocol):
    """The token carries the fragment: arrive up to date, resume at once."""

    name = "with-data"

    def __init__(self) -> None:
        self.snapshots_carried = 0
        self.objects_carried = 0

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        agent = system.agents[agent_name]
        origin = system.nodes[agent.home_node]
        fragments = list(agent.fragments)
        # Dump the fragment to the "tape" at departure time.
        for fragment in fragments:
            token = agent.token_for(fragment)
            snapshot = {
                obj: origin.store.read_version(obj)
                for obj in system.fragment_objects(fragment, origin.store)
            }
            token.payload["snapshot"] = snapshot
            token.payload["sources"] = set(origin.qt_archive[fragment])
            self.snapshots_carried += 1
            self.objects_carried += len(snapshot)

        def arrive() -> None:
            destination = system.nodes[to_node]
            for fragment in fragments:
                token = agent.token_for(fragment)
                snapshot = token.payload.pop("snapshot", {})
                for obj, version in snapshot.items():
                    destination.store.install(obj, version)
                carried_seqs = token.payload.pop("sources", set())
                # The destination's replica of this fragment is now exactly
                # the origin's: fast-forward its install bookkeeping so
                # late-arriving pre-move quasi-transactions are duplicates.
                next_seq = token.payload.get("next_seq", 0)
                streams = destination.streams
                streams.next_expected[fragment] = max(
                    streams.next_expected[fragment], next_seq
                )
                streams.epoch[fragment] = token.payload.get("epoch", 0)
                for seq in carried_seqs:
                    archived = origin.streams.archive[fragment].get(seq)
                    if archived is not None:
                        streams.record(archived)
                drain_buffer(destination, fragment)
            if on_done is not None:
                on_done()

        self._transport(system, agent_name, to_node, transport_delay, arrive)
