"""Section 4.4.2A: moving with data.

"We require that A transport (by any means available) a copy of the
fragment stored at X to store it in place of the copy of the fragment
at site Y before resuming processing.  In addition, all other sites are
requested not to install updates from transaction T2 until those from
T1 have been installed."

The token's payload is the tape / magnetic strip: it carries a
:class:`~repro.recovery.checkpoint.FragmentCheckpoint` — the versioned
fragment snapshot plus the stream cursor it is current through.  On
arrival the checkpoint installs over Y's copy, Y's install bookkeeping
fast-forwards to the carried cursor, and the agent resumes immediately
— no waiting, no majority.  The checkpoint is persisted on Y's durable
shelf, so a crash at the new home recovers the carried state instead of
replaying from nothing, and Y can serve the same checkpoint onward to a
catch-up requester below its compaction horizon.  Third nodes need no
special treatment: the stream's sequence numbering continues unbroken
across the move, so the default ordered admission already refuses to
install T2 before T1.

Guarantees preserved: mutual consistency *and* fragmentwise
serializability.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.movement.base import MovementProtocol
from repro.recovery.checkpoint import apply_checkpoint, build_checkpoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FragmentedDatabase


class MoveWithDataProtocol(MovementProtocol):
    """The token carries the fragment: arrive up to date, resume at once."""

    name = "with-data"

    def __init__(self) -> None:
        self.snapshots_carried = 0
        self.objects_carried = 0

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        agent = system.agents[agent_name]
        origin = system.nodes[agent.home_node]
        fragments = list(agent.fragments)
        # Dump the fragment to the "tape" at departure time.
        for fragment in fragments:
            token = agent.token_for(fragment)
            ckpt = build_checkpoint(system, origin, fragment)
            token.payload["checkpoint"] = ckpt
            self.snapshots_carried += 1
            self.objects_carried += len(ckpt.snapshot)

        def arrive() -> None:
            destination = system.nodes[to_node]
            for fragment in fragments:
                token = agent.token_for(fragment)
                ckpt = token.payload.pop("checkpoint", None)
                if ckpt is None:
                    continue
                # The destination's replica of this fragment is now exactly
                # the origin's: the checkpoint install fast-forwards its
                # cursor so late-arriving pre-move quasi-transactions are
                # duplicates, and the persisted copy makes the carried
                # state crash-durable at the new home.
                apply_checkpoint(destination, ckpt, persist=True)
            if on_done is not None:
                on_done()

        self._transport(system, agent_name, to_node, transport_delay, arrive)
