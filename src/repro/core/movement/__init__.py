"""Agent movement protocols (Section 4.4).

Moving an agent from node X to node Y risks *missing transactions*:
Y (or a third node Z) may see the agent's first post-move transaction
T2 before X's last pre-move transaction T1 — violating fragmentwise
serializability and, without care, even mutual consistency
(Figure 4.4.1).  The paper's three protocol families are all here, plus
the no-protection baseline that exhibits the problem:

* :class:`~repro.core.movement.base.FixedAgentsProtocol` — agents never
  move; per-fragment sequence-ordered installation (Sections 4.1-4.3);
* :class:`~repro.core.movement.none_protocol.InstantMoveProtocol` —
  "none": the token just moves; demonstrates divergence;
* :class:`~repro.core.movement.majority.MajorityCommitProtocol` —
  §4.4.1: permanent majority-commit; moves resync from a majority;
* :class:`~repro.core.movement.with_data.MoveWithDataProtocol` —
  §4.4.2A: the token carries a fragment snapshot;
* :class:`~repro.core.movement.with_seqno.MoveWithSeqnoProtocol` —
  §4.4.2B: the token carries the last sequence number; the new home
  waits until it has caught up;
* :class:`~repro.core.movement.corrective.CorrectiveMoveProtocol` —
  §4.4.3: no preparation; the M0 announcement, orphan forwarding,
  timestamp-based stripping, repackaging, and corrective-action hooks.
"""

from repro.core.movement.base import FixedAgentsProtocol, MovementProtocol
from repro.core.movement.corrective import CorrectiveMoveProtocol
from repro.core.movement.majority import MajorityCommitProtocol
from repro.core.movement.none_protocol import InstantMoveProtocol
from repro.core.movement.with_data import MoveWithDataProtocol
from repro.core.movement.with_seqno import MoveWithSeqnoProtocol

__all__ = [
    "CorrectiveMoveProtocol",
    "FixedAgentsProtocol",
    "InstantMoveProtocol",
    "MajorityCommitProtocol",
    "MovementProtocol",
    "MoveWithDataProtocol",
    "MoveWithSeqnoProtocol",
]
