"""Section 4.4.1: permanent preparatory actions (majority commit).

"Before a transaction can commit at the agent's home node, the
corresponding quasi-transaction is sent out to the rest of the nodes,
and acknowledgments are requested.  The transaction commits only after
acknowledgments have been received from a majority of the nodes. ...
[On a move] the agent must then contact a majority of nodes and request
an identifier for all previously executed quasi-transactions on the
fragment.  If the new home node had missed any of these, it requests
them from the nodes that have them and runs them."

Availability cost, exactly as the paper says: "update transactions can
only be processed with the cooperation of a majority group of nodes."
An update submitted in a minority partition is rejected immediately;
the rejection count is the E7/E9 availability metric.  The extra
prepare/ack round per commit is the E10 overhead metric.

Simulation note (documented in DESIGN.md): the majority-reachability
check gates execution *before* the transaction runs, and the
prepare/ack/commit rounds then complete unconditionally (the network
guarantees eventual delivery).  A partition forming mid-round delays,
but does not lose, the commit broadcast — matching the paper's eventual
semantics while keeping local state clean.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.movement.base import MovementProtocol
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase

KIND_PREP = "maj-prep"
KIND_ACK = "maj-ack"
KIND_MOVE_REQ = "maj-move-req"
KIND_MOVE_REP = "maj-move-rep"


class MajorityCommitProtocol(MovementProtocol):
    """Majority-commit updates; majority-resync moves."""

    name = "majority"

    def __init__(self, move_retry_interval: float = 10.0) -> None:
        self.move_retry_interval = move_retry_interval
        self._acks: dict[str, set[str]] = defaultdict(set)
        self._pending_qt: dict[str, QuasiTransaction] = {}
        self._move_state: dict[str, "_MoveResync"] = {}  # agent -> resync
        # Prepared-but-not-yet-committed quasi-transactions, per node and
        # fragment by stream seq.  The paper's resync correctness rests on
        # "each old transaction was seen by a majority of nodes" — and a
        # transaction is *seen* at prepare time, before its commit
        # broadcast, so the move resync must be able to serve these.
        self._prepared: dict[str, dict[str, dict[int, QuasiTransaction]]] = (
            defaultdict(lambda: defaultdict(dict))
        )
        # Updates submitted while the agent's post-move resync is still
        # in progress are queued: "This procedure ensures that the home
        # node has seen all transactions previously executed on the
        # fragment ...  *Now* the agent is ready to execute new update
        # transactions."
        self._resync_queue: dict[str, list] = {}
        self.minority_rejections = 0
        self.prepare_rounds = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        super().attach(system)
        for node in system.nodes.values():
            node.register_unicast(KIND_PREP, self._make_prep_handler(system, node))
            node.register_unicast(KIND_ACK, self._make_ack_handler(system))
            node.register_unicast(
                KIND_MOVE_REQ, self._make_move_req_handler(system, node)
            )
            node.register_unicast(
                KIND_MOVE_REP, self._make_move_rep_handler(system)
            )

    # -- update gating ----------------------------------------------------

    def before_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> bool:
        if spec.agent in self._resync_queue:
            self._resync_queue[spec.agent].append((spec, tracker))
            return False
        if self._in_majority(system, node.name):
            return True
        self.minority_rejections += 1
        system.recorder.record_rejection(
            spec.txn_id, "majority of nodes unreachable"
        )
        tracker.finish(
            RequestStatus.REJECTED,
            system.sim.now,
            reason="update requires cooperation of a majority group",
        )
        return False

    # -- propagation: prepare / ack / commit ------------------------------------

    def propagate(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        system = node.system
        self.prepare_rounds += 1
        self._acks[quasi.source_txn] = {node.name}
        self._pending_qt[quasi.source_txn] = quasi
        for other in system.nodes:
            if other != node.name:
                system.network.send(
                    node.name, other, KIND_PREP,
                    {"txn": quasi.source_txn, "origin": node.name,
                     "qt": quasi},
                )
        self._check_majority(system, quasi.source_txn, node.name)

    def _check_majority(
        self, system: "FragmentedDatabase", txn: str, origin: str
    ) -> None:
        quasi = self._pending_qt.get(txn)
        if quasi is None:
            return
        needed = len(system.nodes) // 2 + 1
        if len(self._acks[txn]) >= needed:
            del self._pending_qt[txn]
            # The ack round gates the *commit broadcast*; the broadcast
            # itself rides the shared pipeline like everyone else's.
            system.pipeline.submit(system.nodes[origin], quasi)

    # -- moving: resync from a majority -------------------------------------

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        def arrive() -> None:
            self._resync_queue.setdefault(agent_name, [])
            self._start_resync(system, agent_name, to_node, on_done)

        self._transport(system, agent_name, to_node, transport_delay, arrive)

    def _start_resync(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        on_done: Callable[[], None] | None,
    ) -> None:
        if not self._in_majority(system, to_node):
            # The paper requires majority cooperation; poll until the
            # partition heals enough.
            system.sim.schedule(
                self.move_retry_interval,
                lambda: self._start_resync(system, agent_name, to_node, on_done),
                label=f"majority move retry {agent_name}",
            )
            return
        agent = system.agents[agent_name]
        resync = _MoveResync(agent_name, to_node, list(agent.fragments), on_done)
        self._move_state[agent_name] = resync
        for other in system.nodes:
            if other != to_node:
                system.network.send(
                    to_node, other, KIND_MOVE_REQ,
                    {"agent": agent_name, "fragments": resync.fragments,
                     "requester": to_node},
                )
        self._maybe_finish_resync(system, resync)

    def _maybe_finish_resync(
        self, system: "FragmentedDatabase", resync: "_MoveResync"
    ) -> None:
        needed = len(system.nodes) // 2 + 1
        if resync.done or len(resync.replies) + 1 < needed:
            return
        resync.done = True
        self._move_state.pop(resync.agent, None)
        node = system.nodes[resync.node]
        agent = system.agents[resync.agent]
        for fragment in resync.fragments:
            # Install every missed quasi-transaction, in stream order.
            archive = resync.gathered[fragment]
            for seq in sorted(archive):
                self.admit(node, archive[seq])
        # The token's own counter is the authoritative high-water mark:
        # a transaction may have committed at the old home whose commit
        # broadcast (and prepares) are still trapped behind a partition,
        # unseen by any node in the current majority.  Resuming with a
        # hole below the counter would strand that transaction forever —
        # so keep resyncing until the node has truly caught up (the held
        # messages arrive once the partition heals).
        behind = any(
            node.next_expected[fragment]
            < agent.token_for(fragment).payload.get("next_seq", 0)
            for fragment in resync.fragments
        )
        if behind:
            system.sim.schedule(
                self.move_retry_interval,
                lambda: self._start_resync(
                    system, resync.agent, resync.node, resync.on_done
                ),
                label=f"majority resync catch-up {resync.agent}",
            )
            return
        for fragment in resync.fragments:
            token = agent.token_for(fragment)
            token.payload["next_seq"] = max(
                node.next_expected[fragment],
                max(resync.gathered[fragment], default=-1) + 1,
                token.payload.get("next_seq", 0),
            )
        # The agent is caught up: release updates queued during the
        # resync through the normal submission path.
        queued = self._resync_queue.pop(resync.agent, [])
        for spec, tracker in queued:
            if tracker.status.value != "pending":
                continue
            fragment = system._update_fragment(spec, agent)
            if self.before_update(system, node, spec, tracker, fragment):
                system.strategy.begin_update(
                    system, node, spec, tracker, fragment
                )
        if resync.on_done is not None:
            resync.on_done()

    # -- handlers ---------------------------------------------------------

    def _make_prep_handler(self, system: "FragmentedDatabase", node: "DatabaseNode"):
        def handle(message: Message) -> None:
            body = message.payload
            quasi: QuasiTransaction = body["qt"]
            self._prepared[node.name][quasi.fragment][quasi.stream_seq] = quasi
            system.network.send(
                node.name, body["origin"], KIND_ACK,
                {"txn": body["txn"], "origin": body["origin"],
                 "acker": node.name},
            )

        return handle

    def _make_ack_handler(self, system: "FragmentedDatabase"):
        def handle(message: Message) -> None:
            body = message.payload
            self._acks[body["txn"]].add(body["acker"])
            self._check_majority(system, body["txn"], body["origin"])

        return handle

    def _make_move_req_handler(
        self, system: "FragmentedDatabase", node: "DatabaseNode"
    ):
        def handle(message: Message) -> None:
            body = message.payload
            payload = {
                "agent": body["agent"],
                "replier": node.name,
                "archives": {
                    fragment: {
                        **self._prepared[node.name][fragment],
                        **node.qt_archive[fragment],
                    }
                    for fragment in body["fragments"]
                },
            }
            system.network.send(
                node.name, body["requester"], KIND_MOVE_REP, payload
            )

        return handle

    def _make_move_rep_handler(self, system: "FragmentedDatabase"):
        def handle(message: Message) -> None:
            body = message.payload
            resync = self._move_state.get(body["agent"])
            if resync is None or resync.done:
                return
            resync.replies.add(body["replier"])
            for fragment, archive in body["archives"].items():
                resync.gathered[fragment].update(archive)
            self._maybe_finish_resync(system, resync)

        return handle

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _in_majority(system: "FragmentedDatabase", node: str) -> bool:
        total = len(system.nodes)
        for component in system.topology.components():
            if node in component:
                return len(component) > total // 2
        return False


class _MoveResync:
    """State of one agent's majority resync after arrival."""

    def __init__(
        self,
        agent: str,
        node: str,
        fragments: list[str],
        on_done: Callable[[], None] | None,
    ) -> None:
        self.agent = agent
        self.node = node
        self.fragments = fragments
        self.on_done = on_done
        self.replies: set[str] = set()
        self.gathered: dict[str, dict[int, QuasiTransaction]] = defaultdict(dict)
        self.done = False
