"""The no-protection baseline: move the token, hope for the best.

This is the situation the beginning of Section 4.4 warns about: "In the
absence of any special provisions, it is possible for T2 to be
initiated before T1 has a chance to reach Y ... such events may lead to
violations of fragmentwise serializability and even mutual
consistency."

Concretely: the token moves instantly (or after a transport delay) and
the new home node resumes numbering from *its own* possibly stale view
of the fragment stream.  Quasi-transactions are installed blindly in
arrival order (no sequence gating), so two replicas that receive a
pre-move orphan and a post-move transaction in opposite orders finish
with different values.  The E7 experiment measures exactly this
divergence; every faithful protocol then makes it vanish.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.movement.base import MovementProtocol
from repro.replication.admission import BlindAdmission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FragmentedDatabase


class InstantMoveProtocol(MovementProtocol):
    """Section 4.4's missing-transaction problem, made observable."""

    name = "none"

    # Blind install in arrival order — no buffering, no gap detection.
    admission = BlindAdmission()

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        agent = system.agents[agent_name]
        fragments = list(agent.fragments)

        def arrive() -> None:
            destination = system.nodes[to_node]
            for fragment in fragments:
                token = agent.token_for(fragment)
                # The new home resumes from what it happens to have seen:
                # if it missed T1, its next transaction collides with T1's
                # sequence number.  That is the bug, on purpose.
                token.payload["next_seq"] = destination.next_expected[fragment]
            if on_done is not None:
                on_done()

        self._transport(system, agent_name, to_node, transport_delay, arrive)
