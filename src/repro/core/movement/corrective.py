"""Section 4.4.3: omitting preparatory actions (the M0 protocol).

The agent "must start processing new transactions as soon as it arrives
at Y".  Fragmentwise serializability is forfeited; mutual consistency
is preserved by the following protocol (paper's notation: the agent ran
T1..Tr at X, of which Y had installed T1..Ti when it resumed):

At node Y (the new home):

* A1 — before broadcasting its first transaction, broadcast
  ``M0 = (T1, ..., Ti)``: the pre-move transactions installed at Y so
  far (we send the quasi-transactions themselves so behind nodes can
  catch up from the message);
* A2 — when a *missing* pre-move transaction Tl (l > i) surfaces later
  (via the healed network or a forward), strip the updates whose
  objects have since been overwritten (timestamp comparison), package
  the rest as a brand-new transaction with the next sequence number,
  install and broadcast it, and fire the registered corrective-action
  hooks ("if after Tk runs, a flight is overbooked, cancel one or more
  reservations").

At every other node Z:

* B1 — on M0: if behind (j < i), install T(j+1)..Ti from the message;
* B2 — a missing pre-move transaction arriving *after* M0 is not
  processed; it is forwarded to Y;
* B3 — post-move transactions install in the new stream order.

Implementation note: fragment streams are epoch-stamped; a move bumps
the epoch, so "pre-move transaction" is simply "quasi-transaction with
a stale epoch" and B3 falls out of the ordered admission keyed on
``(epoch, seq)``.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import TYPE_CHECKING, Any

from repro.cc.ops import Write
from repro.core.movement.base import MovementProtocol
from repro.core.transaction import QuasiTransaction, TransactionSpec
from repro.net.message import Message
from repro.replication.admission import EpochOrderedAdmission, drain_buffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase

KIND_FWD = "fwd-orphan"
M0_TYPE = "m0"


class CorrectiveMoveProtocol(MovementProtocol):
    """Move instantly; reconcile missing transactions after the fact."""

    name = "corrective"

    def __init__(self) -> None:
        # Current-epoch traffic admits in order; future epochs park
        # until their M0; stale epochs are orphans (rule B2/A2).
        self.admission = EpochOrderedAdmission(self._handle_orphan)
        self._repackaged: set[str] = set()
        # Orphans that surfaced while the token was in transit: rule A2
        # needs the new home to *commit* the repackaged transaction, and
        # submissions are rejected mid-move — park and retry at arrival.
        self._deferred_orphans: list[QuasiTransaction] = []
        # (fragment, new_epoch) -> source txns the cut's M0 carried as
        # rule-B1 catch-up material.  "Missing" in rule A2 is defined
        # against these baselines: a pre-cut transaction absent from
        # some baseline since its epoch may never have reached replicas
        # that activated that epoch (or a later one) directly, so it
        # must be repackaged — even when the *current* home happens to
        # have installed it.  Membership is by transaction, not by seq
        # range: the seq space rewinds at a cut, so an old entry's slot
        # can sit below the cursor yet hold a different epoch's entry.
        self._baselines: dict[tuple[str, int], frozenset[str]] = {}
        self.orphans_handled = 0
        self.orphans_dropped_empty = 0
        self.orphans_deferred = 0
        self.repackaged_count = 0
        self.m0_broadcasts = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, system: "FragmentedDatabase") -> None:
        super().attach(system)
        for node in system.nodes.values():
            node.register_unicast(KIND_FWD, self._make_fwd_handler(system, node))
            node.register_broadcast(M0_TYPE, self._on_m0)

    # -- moving -------------------------------------------------------------

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        agent = system.agents[agent_name]
        fragments = list(agent.fragments)

        def arrive() -> None:
            destination = system.nodes[to_node]
            for fragment in fragments:
                token = agent.token_for(fragment)
                new_epoch = token.payload.get("epoch", 0) + 1
                installed_upto = destination.next_expected[fragment]
                carried = [
                    destination.qt_archive[fragment][seq]
                    for seq in sorted(destination.qt_archive[fragment])
                    if seq < installed_upto
                ]
                self.m0_broadcasts += 1
                # M0 only concerns the fragment's replicas: it opens the
                # new epoch on the same FIFO stream the fragment's
                # quasi-transactions ride (full replication keeps the
                # classic broadcast-to-all channel).
                targets, stream = system.propagation_plan(fragment)
                system.broadcast.multicast(
                    to_node,
                    {
                        "type": M0_TYPE,
                        "fragment": fragment,
                        "epoch": new_epoch,
                        "upto": installed_upto,
                        "qts": carried,
                    },
                    kind="m0",
                    targets=targets,
                    stream=stream,
                )
                token.payload["epoch"] = new_epoch
                token.payload["next_seq"] = installed_upto
                self._baselines[(fragment, new_epoch)] = frozenset(
                    quasi.source_txn for quasi in carried
                )
            # Orphans parked during the flight can repackage now that
            # the token has landed (re-deferred if another fragment's
            # token is still travelling).
            deferred, self._deferred_orphans = self._deferred_orphans, []
            for quasi in deferred:
                self._handle_orphan(destination, quasi)
            if on_done is not None:
                on_done()

        self._transport(system, agent_name, to_node, transport_delay, arrive)

    # -- M0 processing (rule B1 + epoch activation) -----------------------------

    def _on_m0(
        self, node: "DatabaseNode", sender: str, body: dict[str, Any]
    ) -> None:
        fragment = body["fragment"]
        epoch = body["epoch"]
        if epoch <= node.epoch[fragment]:
            return  # stale announcement
        # Catch up from the M0 contents (rule B1).  Install-dedup keys on
        # source txn, but a checkpointed replica no longer *names* every
        # txn its snapshot covers (WAL truncation and archive pruning
        # drop them from the dedup set) — so also skip carried entries
        # below this replica's cursor: ordered admission and prior B1
        # drains guarantee everything under the cursor was already seen
        # here, checkpointed or named.
        cursor = (
            node.streams.epoch[fragment],
            node.streams.next_expected[fragment],
        )
        for quasi in sorted(body["qts"], key=lambda q: q.stream_seq):
            if (quasi.epoch, quasi.stream_seq) < cursor:
                continue
            node.enqueue_install(quasi)  # dedups already-installed sources
        # Orphans sitting in the old-epoch buffer become rule-B2 forwards.
        streams = node.streams
        stale = [
            quasi
            for key, quasi in list(streams.buffer[fragment].items())
            if key[0] < epoch
        ]
        for quasi in stale:
            del streams.buffer[fragment][(quasi.epoch, quasi.stream_seq)]
        streams.epoch[fragment] = epoch
        streams.next_expected[fragment] = body["upto"]
        for quasi in stale:
            self._handle_orphan(node, quasi)
        drain_buffer(node, fragment)

    # -- orphan handling (rules B2 and A2) -------------------------------------

    def _missing(self, quasi: QuasiTransaction, current_epoch: int) -> bool | None:
        """Is this stale-epoch transaction outside some M0 baseline?

        A replica reaches the current epoch by processing *one* of the
        cut M0s since the orphan's epoch (intermediate M0s arriving out
        of order are discarded as stale), so the orphan's effects are
        guaranteed everywhere only if every such baseline carried it.
        Absent from any one of them, some replica may have jumped
        straight over the M0 that would have delivered it: rule A2 must
        repackage.  Returns None when a cut's baseline is unknown (a
        foreign move protocol bumped the epoch), letting the caller
        fall back to the install-dedup heuristic.
        """
        cuts = [
            self._baselines.get((quasi.fragment, epoch))
            for epoch in range(quasi.epoch + 1, current_epoch + 1)
        ]
        if not cuts or any(cut is None for cut in cuts):
            return None
        return any(quasi.source_txn not in cut for cut in cuts)

    def _handle_orphan(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        if quasi.source_txn in self._repackaged:
            return
        system = node.system
        agent = system.agent_of(quasi.fragment)
        token = agent.token_for(quasi.fragment)
        missing = self._missing(quasi, token.payload.get("epoch", 0))
        if missing is None:
            missing = quasi.source_txn not in node.installed_sources
        if not missing:
            return
        if token.in_transit:
            # The new home cannot commit a repackaged transaction while
            # the token travels (the submission would be rejected and
            # the orphan's updates silently lost — exactly the state a
            # heal-during-move surfaces orphans in).  Park until the
            # arrival callback replays us.
            self.orphans_deferred += 1
            self._deferred_orphans.append(quasi)
            return
        home = agent.home_node
        if node.name != home:
            system.network.send(node.name, home, KIND_FWD, {"qt": quasi})
            return
        self._repackage(system, node, agent.name, quasi)

    def _repackage(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        agent_name: str,
        quasi: QuasiTransaction,
    ) -> None:
        """Rule A2: strip overwritten updates, rebroadcast the rest."""
        self._repackaged.add(quasi.source_txn)
        self.orphans_handled += 1
        kept: list[tuple[str, Any]] = []
        for obj, version in quasi.writes:
            if (
                node.store.exists(obj)
                and node.store.read_version(obj).timestamp > quasi.origin_time
            ):
                continue  # already overwritten by a more recent transaction
            kept.append((obj, version.value))
        if kept:
            self.repackaged_count += 1

            def body(_ctx: Any) -> Generator[Any, Any, Any]:
                for obj, value in kept:
                    yield Write(obj, value)

            spec = TransactionSpec(
                txn_id=f"rp:{quasi.source_txn}",
                agent=agent_name,
                body=body,
                update=True,
                meta={"repackaged_from": quasi.source_txn},
            )
            system.submit(spec)
        else:
            self.orphans_dropped_empty += 1
        for hook in system.corrective_hooks:
            hook(node, quasi, kept)

    # -- handlers ---------------------------------------------------------

    def _make_fwd_handler(self, system: "FragmentedDatabase", node: "DatabaseNode"):
        def handle(message: Message) -> None:
            self._handle_orphan(node, message.payload["qt"])

        return handle
