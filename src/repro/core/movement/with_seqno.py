"""Section 4.4.2B: moving with the sequence number.

"Only the sequence number of the last transaction to run at the old
home node is given to the new home ...  Before A executes T2, it must
wait until all previous quasi-transactions are received and run at Y.
New transactions are given sequence numbers that follow that of T1."

Cheaper to transport than a snapshot, but the new home may have to
*wait* for the missing quasi-transactions to arrive — across a
partition, until the heal.  Update requests submitted during the wait
are queued (or timed out, if ``wait_timeout`` is set); the measured
queue time is this protocol's availability cost in experiment E7.

Guarantees preserved: mutual consistency and fragmentwise
serializability (the stream numbering stays unbroken, exactly as in
move-with-data).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.movement.base import MovementProtocol
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import DatabaseNode
    from repro.core.system import FragmentedDatabase


class _Wait:
    """One fragment's catch-up wait at its new home node."""

    def __init__(self, node: str, required_seq: int) -> None:
        self.node = node
        self.required_seq = required_seq
        self.queued: list[tuple[TransactionSpec, RequestTracker]] = []
        self.started_at = 0.0


class MoveWithSeqnoProtocol(MovementProtocol):
    """The token carries only the last sequence number."""

    name = "with-seqno"

    def __init__(self, wait_timeout: float | None = None) -> None:
        self.wait_timeout = wait_timeout
        self._waits: dict[str, _Wait] = {}  # fragment -> wait state
        self.total_wait_time = 0.0
        self.requests_queued = 0

    # -- update gating --------------------------------------------------------

    def before_update(
        self,
        system: "FragmentedDatabase",
        node: "DatabaseNode",
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> bool:
        wait = self._waits.get(fragment)
        if wait is None or wait.node != node.name:
            return True
        if node.next_expected[fragment] >= wait.required_seq:
            self._release(system, fragment)
            return True
        wait.queued.append((spec, tracker))
        self.requests_queued += 1
        if self.wait_timeout is not None:
            system.sim.schedule(
                self.wait_timeout,
                lambda: self._timeout(system, tracker, spec),
                label=f"seqno-wait timeout {spec.txn_id}",
            )
        return False

    def after_install(self, node: "DatabaseNode", quasi: QuasiTransaction) -> None:
        wait = self._waits.get(quasi.fragment)
        if wait is None or wait.node != node.name:
            return
        if node.next_expected[quasi.fragment] >= wait.required_seq:
            self._release(node.system, quasi.fragment)

    # -- moving -------------------------------------------------------------

    def request_move(
        self,
        system: "FragmentedDatabase",
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        agent = system.agents[agent_name]
        fragments = list(agent.fragments)

        def arrive() -> None:
            destination = system.nodes[to_node]
            for fragment in fragments:
                token = agent.token_for(fragment)
                required = token.payload.get("next_seq", 0)
                if destination.next_expected[fragment] < required:
                    wait = _Wait(to_node, required)
                    wait.started_at = system.sim.now
                    self._waits[fragment] = wait
            if on_done is not None:
                on_done()

        self._transport(system, agent_name, to_node, transport_delay, arrive)

    # -- internals -----------------------------------------------------------

    def _release(self, system: "FragmentedDatabase", fragment: str) -> None:
        wait = self._waits.pop(fragment, None)
        if wait is None:
            return
        self.total_wait_time += system.sim.now - wait.started_at
        node = system.nodes[wait.node]
        for spec, tracker in wait.queued:
            if tracker.status is RequestStatus.PENDING:
                system.strategy.begin_update(system, node, spec, tracker, fragment)

    def _timeout(
        self,
        system: "FragmentedDatabase",
        tracker: RequestTracker,
        spec: TransactionSpec,
    ) -> None:
        if tracker.status is RequestStatus.PENDING:
            system.recorder.record_rejection(
                spec.txn_id, "waiting for pre-move quasi-transactions"
            )
            tracker.finish(
                RequestStatus.TIMED_OUT,
                system.sim.now,
                reason="new home node still catching up after move",
            )
