"""Multi-fragment tasks (the paper's Section 3.2 footnote).

"One way is to replace, whenever possible, a multi-fragment transaction
by a group of transactions that perform the same task and update only
one fragment each.  When this cannot be done, a semblance of the
two-phase commit protocol can be used, that involves the agents of all
the fragments that are being updated."

Both ways are provided:

* :func:`submit_group` — the decomposition: fire the single-fragment
  transactions independently and track them together.  No failure
  atomicity; the aggregate tracker reports which parts landed.
* :class:`MultiFragmentCoordinator` — the 2PC semblance: each
  participant executes at its agent's home node and parks in the
  *prepared* state (all locks held, nothing applied); the coordinator
  commits everyone once all are prepared, or aborts everyone on any
  failure or timeout.  Commit/abort decisions travel as unicast
  messages, so a partition between the coordinator and a participant
  stalls the group (locks held) until the heal — the classic 2PC
  blocking cost, measurable here.

Visibility caveat (inherent to the framework): the 2PC group is atomic
with respect to *failure*, not with respect to *observation* — each
fragment's updates become visible along its own stream, so a remote
reader can still observe one fragment's part before another's.  That is
a multi-fragment predicate phenomenon, exactly the class of
inconsistency Section 4.3 already scopes out.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.transaction import RequestStatus, RequestTracker, TransactionSpec
from repro.errors import DesignError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FragmentedDatabase

KIND_DECIDE = "grp-decide"


@dataclass
class GroupTracker:
    """Aggregate outcome of a transaction group."""

    trackers: list[RequestTracker] = field(default_factory=list)
    atomic: bool = False
    decided: str = ""  # "", "committed", "aborted"
    on_done: Callable[["GroupTracker"], None] | None = None
    # Members can finish synchronously during submission; completion is
    # only meaningful once the whole membership has been registered.
    sealed: bool = False

    @property
    def all_succeeded(self) -> bool:
        """True iff every member committed."""
        return bool(self.trackers) and all(
            t.status is RequestStatus.COMMITTED for t in self.trackers
        )

    @property
    def finished(self) -> bool:
        """True once every member reached a terminal status."""
        return all(
            t.status is not RequestStatus.PENDING for t in self.trackers
        )

    def _maybe_done(self) -> None:
        if self.sealed and self.finished and self.on_done is not None:
            callback, self.on_done = self.on_done, None
            callback(self)


def submit_group(
    system: "FragmentedDatabase",
    specs: Sequence[TransactionSpec],
    on_done: Callable[[GroupTracker], None] | None = None,
) -> GroupTracker:
    """Fire single-fragment transactions independently, track together."""
    group = GroupTracker(on_done=on_done)
    for spec in specs:
        tracker = system.submit(spec, on_done=lambda _t: group._maybe_done())
        group.trackers.append(tracker)
    group.sealed = True
    group._maybe_done()
    return group


class MultiFragmentCoordinator:
    """The paper's "semblance of the two-phase commit protocol"."""

    def __init__(self, system: "FragmentedDatabase") -> None:
        self.system = system
        self._groups: dict[str, "_AtomicGroup"] = {}
        self._counter = 0
        for node in system.nodes.values():
            node.register_unicast(
                KIND_DECIDE, self._make_decide_handler(node)
            )

    def submit_atomic(
        self,
        specs: Sequence[TransactionSpec],
        coordinator_node: str | None = None,
        timeout: float = 100.0,
        on_done: Callable[[GroupTracker], None] | None = None,
    ) -> GroupTracker:
        """Prepare every participant, then commit all or abort all."""
        if not specs:
            raise DesignError("empty transaction group")
        fragments = set()
        for spec in specs:
            agent = self.system.agents[spec.agent]
            fragment = self.system._update_fragment(spec, agent)
            if fragment in fragments:
                raise DesignError(
                    f"two group members update fragment {fragment!r}; "
                    f"merge them into one transaction"
                )
            fragments.add(fragment)
        self._counter += 1
        group_id = f"grp{self._counter}"
        coordinator = coordinator_node or self.system.agents[
            specs[0].agent
        ].home_node
        group = _AtomicGroup(group_id, coordinator, on_done)
        self._groups[group_id] = group

        # Register the full membership before submitting anything: the
        # first member can prepare synchronously during its submission,
        # and the "everyone prepared?" check must already know how many
        # votes it is waiting for.
        for spec in specs:
            group.members[spec.txn_id] = self.system.agents[
                spec.agent
            ].home_node
        for spec in specs:
            spec.meta["hold"] = True
            spec.meta["on_prepared"] = (
                lambda handle, s=spec: self._on_prepared(group, s, handle)
            )
            tracker = self.system.submit(
                spec,
                on_done=lambda t, g=group: self._member_done(g, t),
            )
            group.tracker.trackers.append(tracker)
        group.tracker.sealed = True
        group.tracker._maybe_done()
        group.timeout_handle = self.system.sim.schedule(
            timeout,
            lambda: self._on_timeout(group),
            label=f"2pc timeout {group_id}",
        )
        self._maybe_commit(group)
        return group.tracker

    # -- coordinator internals ---------------------------------------------

    def _on_prepared(self, group: "_AtomicGroup", spec, handle) -> None:
        if group.decided:
            return
        group.prepared.add(spec.txn_id)
        self._maybe_commit(group)

    def _member_done(self, group: "_AtomicGroup", tracker: RequestTracker) -> None:
        """Any member failing before the decision aborts the group.

        Rejections (token in transit, minority partition) finish the
        tracker before preparation; deadlock-victim aborts can strike a
        member mid-execution.  Either way, all-or-nothing demands the
        rest be rolled back.
        """
        if (
            tracker.status is not RequestStatus.COMMITTED
            and group.decided != "aborted"
            and not group.decided
        ):
            self._decide(group, "aborted")
        group.tracker._maybe_done()

    def _maybe_commit(self, group: "_AtomicGroup") -> None:
        if group.decided or not group.members:
            return
        if group.prepared == set(group.members):
            self._decide(group, "committed")

    def _on_timeout(self, group: "_AtomicGroup") -> None:
        if not group.decided:
            self._decide(group, "aborted")

    def _decide(self, group: "_AtomicGroup", decision: str) -> None:
        if group.decided:
            return
        group.decided = decision
        group.tracker.decided = decision
        if group.timeout_handle is not None:
            group.timeout_handle.cancel()
        for txn_id, home in group.members.items():
            if home == group.coordinator:
                # The coordinator's own member commits synchronously —
                # a 2PC decision is local state, not wire traffic, so
                # it must not count as a message or be deferred behind
                # (faultable) loopback delivery.
                self._apply_decision(
                    self.system.nodes[home], txn_id, decision
                )
            else:
                self.system.network.send(
                    group.coordinator, home, KIND_DECIDE,
                    {"txn": txn_id, "decision": decision},
                )

    def _apply_decision(self, node, txn_id: str, decision: str) -> None:
        handle = node.scheduler.active.get(txn_id)
        if handle is None or handle.state != "prepared":
            return  # already aborted locally (e.g. deadlock victim)
        if decision == "committed":
            node.scheduler.commit_prepared(txn_id)
        else:
            node.scheduler.abort_prepared(txn_id)

    def _make_decide_handler(self, node):
        def handle(message: Message) -> None:
            body = message.payload
            self._apply_decision(node, body["txn"], body["decision"])

        return handle


class _AtomicGroup:
    """Coordinator-side state of one 2PC group."""

    def __init__(self, group_id, coordinator, on_done) -> None:
        self.group_id = group_id
        self.coordinator = coordinator
        self.tracker = GroupTracker(atomic=True, on_done=on_done)
        self.members: dict[str, str] = {}  # txn id -> home node
        self.prepared: set[str] = set()
        self.decided = ""
        self.timeout_handle = None
