"""Agents: the exclusive updaters of fragments.

Section 3.1: an update to a fragment can be authorized only by the
current owner of the corresponding token, referred to as this
fragment's *agent*.  An agent is a user or a node; its *home node* is
where it currently issues transactions.  We model both kinds with one
class — the paper itself notes the distinction is "a mere convenience"
(a node-agent is simply a user-agent that never moves off its node).
"""

from __future__ import annotations

from repro.errors import TokenError
from repro.core.token import Token


class Agent:
    """A user or node holding the tokens of one or more fragments."""

    def __init__(self, name: str, home_node: str, kind: str = "user") -> None:
        if kind not in ("user", "node"):
            raise TokenError(f"agent kind must be 'user' or 'node', got {kind!r}")
        self.name = name
        self.home_node = home_node
        self.kind = kind
        self.tokens: dict[str, Token] = {}

    def grant(self, token: Token) -> None:
        """Give this agent the token (initial assignment)."""
        if token.fragment in self.tokens:
            raise TokenError(
                f"agent {self.name!r} already holds token for "
                f"{token.fragment!r}"
            )
        self.tokens[token.fragment] = token
        token.home_node = self.home_node

    def controls(self, fragment: str) -> bool:
        """True if this agent holds the fragment's token."""
        return fragment in self.tokens

    def token_for(self, fragment: str) -> Token:
        """The held token for ``fragment``; raises if not held."""
        try:
            return self.tokens[fragment]
        except KeyError:
            raise TokenError(
                f"agent {self.name!r} does not control fragment {fragment!r}"
            ) from None

    @property
    def fragments(self) -> list[str]:
        """Fragments controlled by this agent."""
        return list(self.tokens)

    def __repr__(self) -> str:
        return f"Agent({self.name!r} @ {self.home_node!r})"
