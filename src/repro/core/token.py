"""Tokens: exclusive update capabilities, one per fragment.

Section 3.1: "For every fragment, there is exactly one token, and it
can be owned by a user as well as by a computer node...  our tokens
have existence outside of the computer system and can be passed by
means other than electronic messages."

A token therefore moves by *simulation events*, not network messages —
it can cross a partition (the bank card in a customer's wallet, the
airplane carrying the seat-assignment fragment).  Its ``payload`` dict
models the "magnetic strip": the move-with-data protocol stores a
fragment snapshot there, move-with-sequence-number stores the last
sequence number.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TokenError


class Token:
    """The unique update capability for one fragment."""

    def __init__(self, fragment: str, home_node: str) -> None:
        self.fragment = fragment
        self.home_node = home_node
        self.in_transit = False
        self.payload: dict[str, Any] = {}
        self.moves_completed = 0

    def begin_move(self, to_node: str) -> None:
        """Mark the token as travelling; updates are impossible meanwhile."""
        if self.in_transit:
            raise TokenError(
                f"token for {self.fragment!r} is already in transit"
            )
        self.in_transit = True
        self._destination = to_node

    def complete_move(self) -> str:
        """Arrive at the destination; returns the new home node."""
        if not self.in_transit:
            raise TokenError(f"token for {self.fragment!r} is not in transit")
        self.home_node = self._destination
        self.in_transit = False
        self.moves_completed += 1
        return self.home_node

    def usable_at(self, node: str) -> bool:
        """True if updates to the fragment may be initiated at ``node``."""
        return not self.in_transit and self.home_node == node

    def __repr__(self) -> str:
        state = "in-transit" if self.in_transit else f"at {self.home_node}"
        return f"Token({self.fragment!r}, {state})"
