"""Consistency predicates: single- vs multi-fragment (Section 4.3).

"A predicate P(v(x1), ..., v(xr)) ... is a single-fragment predicate if
all xi lie in one fragment; it is a multi-fragment predicate otherwise.
...  it is an immediate consequence of [fragmentwise serializability]
that single-fragment predicates are never violated.  Thus the only kind
of data inconsistency one can encounter is that characterized by
violation of multi-fragment predicates."

The experiments register the application's invariants here and count
violations per class at every evaluation point — E1's "correctness"
column is exactly these counts.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.core.fragment import FragmentCatalog
from repro.storage.store import ObjectStore

ObjectsFn = Callable[[ObjectStore], list[str]]


@dataclass
class ConsistencyPredicate:
    """One invariant over the values of a set of data objects.

    ``objects`` may be a static list or a callable computing the object
    list from a store (for fragments whose population grows).  ``check``
    receives ``{object: value}`` and returns True when the invariant
    holds.
    """

    name: str
    objects: list[str] | ObjectsFn
    check: Callable[[dict[str, Any]], bool]

    def resolve_objects(self, store: ObjectStore) -> list[str]:
        """The concrete object list at evaluation time."""
        if callable(self.objects):
            return self.objects(store)
        return list(self.objects)

    def classify(self, catalog: FragmentCatalog, store: ObjectStore) -> str:
        """``'single'`` or ``'multi'`` fragment span."""
        fragments = {
            catalog.fragment_of(obj) for obj in self.resolve_objects(store)
        }
        return "single" if len(fragments) <= 1 else "multi"

    def holds(self, store: ObjectStore) -> bool:
        """Evaluate against one replica's current values."""
        values = {
            obj: store.read(obj)
            for obj in self.resolve_objects(store)
            if store.exists(obj)
        }
        return self.check(values)


@dataclass
class PredicateViolations:
    """Violation counts split by predicate class."""

    single: int = 0
    multi: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """All violations regardless of class."""
        return self.single + self.multi


class PredicateSuite:
    """A set of invariants evaluated together against a replica."""

    def __init__(self, catalog: FragmentCatalog) -> None:
        self.catalog = catalog
        self._predicates: list[ConsistencyPredicate] = []

    def add(self, predicate: ConsistencyPredicate) -> ConsistencyPredicate:
        """Register one predicate."""
        self._predicates.append(predicate)
        return predicate

    def evaluate(self, store: ObjectStore) -> PredicateViolations:
        """Count violations (by class) against one replica."""
        result = PredicateViolations()
        for predicate in self._predicates:
            if predicate.holds(store):
                continue
            kind = predicate.classify(self.catalog, store)
            if kind == "single":
                result.single += 1
            else:
                result.multi += 1
            result.details.append(
                f"{predicate.name} ({kind}-fragment) violated at "
                f"{store.node or 'store'}"
            )
        return result

    def evaluate_all(
        self, stores: Iterable[ObjectStore]
    ) -> PredicateViolations:
        """Aggregate violations across several replicas."""
        total = PredicateViolations()
        for store in stores:
            partial = self.evaluate(store)
            total.single += partial.single
            total.multi += partial.multi
            total.details.extend(partial.details)
        return total

    def __len__(self) -> int:
        return len(self._predicates)
