"""A database node: one replica site of the fragmented database.

Responsibilities (Section 3.2):

* execute local update and read-only transactions through the local
  strict-2PL scheduler;
* at commit of an update transaction, enforce the initiation
  requirement, assign version numbers along the fragment's update
  stream, install locally, and hand the resulting
  :class:`~repro.core.transaction.QuasiTransaction` to the movement
  protocol for propagation;
* receive quasi-transactions from other nodes and install them
  *atomically* and *in per-fragment stream order* (the admission logic
  is delegated to the movement protocol — fixed agents use plain
  sequence order, Section 4.4 protocols override it);
* multiplex broadcast and unicast traffic over its single network
  handler.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.cc.history import (
    CommittedTxn,
    InstallRecord,
    ReadObservation,
    WriteRecord,
)
from repro.cc.scheduler import LocalScheduler, TxnHandle, TxnOutcome
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)
from repro.errors import ReproError, TransactionAborted
from repro.net.broadcast import SeqPayload
from repro.obs import taxonomy
from repro.net.message import Message
from repro.storage.store import ObjectStore
from repro.storage.values import INITIAL_WRITER, Version
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FragmentedDatabase

UnicastHandler = Callable[[Message], None]
BroadcastHandler = Callable[["DatabaseNode", str, dict[str, Any]], None]


class DatabaseNode:
    """One site: local store, local scheduler, install machinery."""

    def __init__(self, name: str, system: "FragmentedDatabase") -> None:
        self.name = name
        self.system = system
        self.store = ObjectStore(name)
        self.scheduler = LocalScheduler(
            name,
            self.store,
            sim=system.sim,
            action_delay=system.action_delay,
            apply_writes=self._apply_commit,
        )
        # Per-fragment install bookkeeping.
        self.next_expected: dict[str, int] = defaultdict(int)
        self.epoch: dict[str, int] = defaultdict(int)
        self.qt_buffer: dict[str, dict[tuple[int, int], QuasiTransaction]] = (
            defaultdict(dict)
        )
        self._installing: dict[str, bool] = defaultdict(bool)
        self._ready: dict[str, deque[QuasiTransaction]] = defaultdict(deque)
        self.installed_sources: set[str] = set()
        # Archive of every quasi-transaction seen, per fragment by stream
        # seq — the majority-move resync and corrective M0 replay read it.
        self.qt_archive: dict[str, dict[int, QuasiTransaction]] = defaultdict(dict)
        # Message routing.
        self.unicast_handlers: dict[str, UnicastHandler] = {}
        self.broadcast_handlers: dict[str, BroadcastHandler] = {}
        # Install atomicity ablation (Property 2 demonstration).
        self.atomic_installs = True
        self.quasi_installed = 0
        self.quasi_skipped = 0  # fragments this node does not replicate
        # Crash-stop failure model: the WAL survives a crash, nothing
        # else does.
        self.wal = WriteAheadLog(name)
        self.down = False
        self.crashes = 0
        # Shared observability handles (system-wide registry/tracer).
        self.metrics = system.metrics
        self.tracer = system.tracer
        self._c_qt_installed = self.metrics.counter("qt.installed")
        self._c_qt_skipped = self.metrics.counter("qt.skipped")
        self.register_unicast("recovery-req", self._on_recovery_req)
        self.register_unicast("recovery-rep", self._on_recovery_rep)

    # -- network plumbing ---------------------------------------------------

    def handle_network(self, message: Message) -> None:
        """Single network entry point: route broadcast vs unicast."""
        if self.down:
            # Shouldn't happen (a crashed node's links are down and the
            # network re-holds in-flight messages), but a zero-latency
            # race is cheap to make safe: the network layer re-holds.
            return
        if isinstance(message.payload, SeqPayload):
            self.system.broadcast.handle_message(message)
            return
        handler = self.unicast_handlers.get(message.kind)
        if handler is None:
            raise ReproError(
                f"node {self.name!r}: no handler for unicast kind "
                f"{message.kind!r}"
            )
        handler(message)

    def on_broadcast(self, sender: str, seq: int, body: dict[str, Any]) -> None:
        """Reliable-broadcast delivery callback (FIFO per sender)."""
        kind = body.get("type")
        if kind == "qt":
            quasi = body["qt"]
            if not self.system.replicates(self.name, quasi.fragment):
                self.quasi_skipped += 1
                self._c_qt_skipped.inc()
                return
            self.system.movement.admit(self, quasi)
            return
        handler = self.broadcast_handlers.get(kind)
        if handler is None:
            raise ReproError(
                f"node {self.name!r}: no handler for broadcast type {kind!r}"
            )
        handler(self, sender, body)

    def register_unicast(self, kind: str, handler: UnicastHandler) -> None:
        """Register a handler for a unicast message kind."""
        self.unicast_handlers[kind] = handler

    def register_broadcast(self, kind: str, handler: BroadcastHandler) -> None:
        """Register a handler for a broadcast body type."""
        self.broadcast_handlers[kind] = handler

    # -- local transaction execution ----------------------------------------

    def execute_update(
        self,
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> None:
        """Run an update transaction locally (strategy pre-steps done)."""

        def on_done(
            handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
        ) -> None:
            now = self.system.sim.now
            if outcome is TxnOutcome.COMMITTED:
                tracker.finish(
                    RequestStatus.COMMITTED, now, result=handle.result
                )
            else:
                reason = getattr(error, "reason", str(error))
                self.system.recorder.record_abort(spec.txn_id, reason)
                tracker.finish(RequestStatus.ABORTED, now, reason=reason)
            self.system.strategy.after_local(self.system, self, spec, tracker)

        self.scheduler.submit(
            spec.txn_id,
            spec.body,
            ctx=spec.ctx,
            kind="update",
            on_done=on_done,
            meta={
                "spec": spec,
                "fragment": fragment,
                "tracker": tracker,
                "remote_versions": spec.meta.get("remote_versions"),
                "hold": spec.meta.get("hold"),
                "on_prepared": spec.meta.get("on_prepared"),
            },
        )

    def execute_readonly(
        self, spec: TransactionSpec, tracker: RequestTracker
    ) -> None:
        """Run a read-only transaction locally."""

        def on_done(
            handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
        ) -> None:
            now = self.system.sim.now
            if outcome is TxnOutcome.COMMITTED:
                tracker.finish(
                    RequestStatus.COMMITTED, now, result=handle.result
                )
            else:
                reason = getattr(error, "reason", str(error))
                self.system.recorder.record_abort(spec.txn_id, reason)
                tracker.finish(RequestStatus.ABORTED, now, reason=reason)
            self.system.strategy.after_local(self.system, self, spec, tracker)

        self.scheduler.submit(
            spec.txn_id,
            spec.body,
            ctx=spec.ctx,
            kind="readonly",
            on_done=on_done,
            meta={
                "spec": spec,
                "fragment": None,
                "tracker": tracker,
                "remote_versions": spec.meta.get("remote_versions"),
            },
        )

    # -- commit application (scheduler callback) ------------------------------

    def _apply_commit(self, handle: TxnHandle) -> None:
        """Apply a committed transaction's buffered writes.

        For quasi-transactions: install the pre-assigned origin
        versions.  For local updates: enforce the initiation
        requirement, run the strategy's dynamic read check, mint
        versions along the fragment stream, install, record history,
        and hand the quasi-transaction to the movement protocol.
        Raising :class:`TransactionAborted` here converts the commit
        into an abort (nothing has been installed yet).
        """
        system = self.system
        now = system.sim.now
        if handle.kind == "quasi":
            versions: dict[str, Version] = handle.meta["versions"]
            for obj, version in versions.items():
                self.store.install(obj, version)
            return
        spec: TransactionSpec = handle.meta["spec"]
        if handle.kind == "readonly" or not handle.write_buffer:
            system.strategy.validate_actual_reads(system, self, handle, None)
            record = CommittedTxn(
                txn_id=spec.txn_id,
                agent=spec.agent,
                fragment=None,
                node=self.name,
                commit_time=now,
                stream_seq=None,
                kind="readonly",
                reads=[
                    ReadObservation(obj, v.writer, v.version_no)
                    for obj, v in handle.reads
                ],
            )
            system.recorder.record_commit(record)
            return

        fragment_name: str = handle.meta["fragment"]
        fragment = system.catalog.get(fragment_name)
        for obj in handle.write_buffer:
            if not fragment.contains(obj):
                raise TransactionAborted(
                    spec.txn_id,
                    f"initiation requirement violated: wrote {obj!r} outside "
                    f"fragment {fragment_name!r}",
                )
        system.strategy.validate_actual_reads(system, self, handle, fragment_name)

        agent = system.agents[spec.agent]
        token = agent.token_for(fragment_name)
        if not token.usable_at(self.name):
            # The transaction was submitted while the agent lived here,
            # but lock waits delayed its commit past the agent's (token's)
            # departure.  Committing now would mint a stream position at
            # the old node while the new home is already numbering its
            # own transactions — the initiation requirement is a
            # *commit-time* condition.  The request fails like any other
            # service the departed agent can no longer render.
            raise TransactionAborted(
                spec.txn_id,
                f"token for {fragment_name!r} left node {self.name!r} "
                f"before the transaction could commit",
            )
        stream_seq = token.payload.setdefault("next_seq", 0)
        epoch = token.payload.setdefault("epoch", 0)
        writes: list[tuple[str, Version]] = []
        write_records: list[WriteRecord] = []
        for obj, value in handle.write_buffer.items():
            previous_no = (
                self.store.read_version(obj).version_no
                if self.store.exists(obj)
                else -1
            )
            version = Version(value, spec.txn_id, previous_no + 1, now)
            self.store.install(obj, version)
            writes.append((obj, version))
            write_records.append(WriteRecord(obj, version.version_no, value))
        token.payload["next_seq"] = stream_seq + 1

        quasi = QuasiTransaction(
            source_txn=spec.txn_id,
            fragment=fragment_name,
            agent=spec.agent,
            origin_node=self.name,
            stream_seq=stream_seq,
            epoch=epoch,
            writes=writes,
            origin_time=now,
            meta=dict(spec.meta),
        )
        record = CommittedTxn(
            txn_id=spec.txn_id,
            agent=spec.agent,
            fragment=fragment_name,
            node=self.name,
            commit_time=now,
            stream_seq=stream_seq,
            kind="update",
            reads=[
                ReadObservation(obj, v.writer, v.version_no)
                for obj, v in handle.reads
            ],
            writes=write_records,
        )
        system.recorder.record_commit(record)
        system.recorder.record_install(
            InstallRecord(self.name, spec.txn_id, fragment_name, stream_seq, now)
        )
        self.wal.append_install(quasi)
        self.installed_sources.add(quasi.source_txn)
        self.qt_archive[fragment_name][stream_seq] = quasi
        # Keep this node's own install bookkeeping in step with its stream.
        self.next_expected[fragment_name] = max(
            self.next_expected[fragment_name], stream_seq + 1
        )
        self.epoch[fragment_name] = max(self.epoch[fragment_name], epoch)
        system.fire_install_hooks(self, quasi)
        system.movement.propagate(self, quasi)

    # -- quasi-transaction installation ----------------------------------------

    def enqueue_install(self, quasi: QuasiTransaction) -> None:
        """Queue an admitted quasi-transaction for atomic installation.

        Installation is serialized per fragment so that the equivalent
        serial local schedule "contains quasi-transactions from a given
        node in the exact same order as they were generated"
        (Section 3.2).
        """
        if quasi.source_txn in self.installed_sources:
            return  # duplicate (replay + held original)
        self.installed_sources.add(quasi.source_txn)
        self.qt_archive[quasi.fragment][quasi.stream_seq] = quasi
        self._ready[quasi.fragment].append(quasi)
        self._pump(quasi.fragment)

    def _pump(self, fragment: str) -> None:
        if self._installing[fragment] or not self._ready[fragment]:
            return
        quasi = self._ready[fragment].popleft()
        self._installing[fragment] = True
        if self.atomic_installs:
            self._install_atomic(quasi)
        else:
            self._install_split(quasi)

    def _install_atomic(self, quasi: QuasiTransaction, attempt: int = 0) -> None:
        def on_done(
            handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
        ) -> None:
            if outcome is TxnOutcome.ABORTED:
                # A quasi-transaction must never be lost (it is another
                # replica's committed update); if it was sacrificed to a
                # local deadlock anyway, retry after a short backoff.
                self.system.sim.schedule(
                    1.0,
                    lambda: self._install_atomic(quasi, attempt + 1),
                    label=f"retry install {quasi.source_txn}@{self.name}",
                )
                return
            self._finish_install(quasi)

        self.scheduler.submit_quasi(
            f"q:{quasi.source_txn}@{self.name}#a{attempt}"
            if attempt
            else f"q:{quasi.source_txn}@{self.name}",
            quasi.writes,
            on_done=on_done,
            meta={"qt": quasi},
        )

    def _install_split(self, quasi: QuasiTransaction) -> None:
        """ABLATION: install each write as a separate mini-transaction.

        Deliberately breaks the atomicity of quasi-transaction
        installation so the Property 2 checker has something to catch.
        Never used by the faithful protocols.
        """
        writes = list(quasi.writes)

        def install_next(index: int) -> None:
            if index >= len(writes):
                self._finish_install(quasi)
                return
            obj, version = writes[index]

            def on_done(
                handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
            ) -> None:
                delay = max(self.system.action_delay, 0.5)
                self.system.sim.schedule(
                    delay, lambda: install_next(index + 1), label="split-install"
                )

            self.scheduler.submit_quasi(
                f"q:{quasi.source_txn}#{index}@{self.name}",
                [(obj, version)],
                on_done=on_done,
            )

        install_next(0)

    def _finish_install(self, quasi: QuasiTransaction) -> None:
        now = self.system.sim.now
        self.quasi_installed += 1
        self._c_qt_installed.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.QT_INSTALL,
                node=self.name,
                fragment=quasi.fragment,
                source_txn=quasi.source_txn,
                stream_seq=quasi.stream_seq,
                epoch=quasi.epoch,
            )
        self.wal.append_install(quasi)
        self.system.recorder.record_install(
            InstallRecord(
                self.name, quasi.source_txn, quasi.fragment, quasi.stream_seq, now
            )
        )
        self._installing[quasi.fragment] = False
        self.system.fire_install_hooks(self, quasi)
        self.system.movement.after_install(self, quasi)
        self._pump(quasi.fragment)

    # -- crash-stop failure and recovery ----------------------------------------

    def load_initial(self, values: dict[str, Any]) -> None:
        """Install initial values, recording them durably in the WAL."""
        self.store.load(values)
        for obj, value in values.items():
            self.wal.append_load(obj, value)

    def crash(self) -> None:
        """Crash-stop: every piece of volatile state is lost.

        In-flight local transactions abort (their clients see it), the
        store, lock tables, install buffers, and archives vanish.  Only
        the WAL survives.  The caller (``FragmentedDatabase.fail_node``)
        also takes the node's links down so the middleware holds traffic.
        """
        self.down = True
        self.crashes += 1
        now = self.system.sim.now
        for handle in list(self.scheduler.active.values()):
            tracker = handle.meta.get("tracker")
            if tracker is not None:
                tracker.finish(
                    RequestStatus.ABORTED, now, reason="node crashed"
                )
        self.store = ObjectStore(self.name)
        self.scheduler = LocalScheduler(
            self.name,
            self.store,
            sim=self.system.sim,
            action_delay=self.system.action_delay,
            apply_writes=self._apply_commit,
        )
        self.next_expected.clear()
        self.epoch.clear()
        self.qt_buffer.clear()
        self._installing.clear()
        self._ready.clear()
        self.installed_sources.clear()
        self.qt_archive.clear()

    def recover(self) -> None:
        """Replay the WAL, then anti-entropy with the live peers.

        WAL replay rebuilds the store and the per-fragment install
        bookkeeping to the last stable point.  Quasi-transactions that
        the broadcast middleware had already handed over but that never
        reached the WAL are gone from this replica — the recovery
        request asks every peer for its archive and the ordered
        admission path re-installs whatever is missing.
        """
        self.down = False
        for record in self.wal.records():
            if record.kind == "load":
                self.store.install(
                    record.obj, Version(record.value, INITIAL_WRITER, 0, 0.0)
                )
                continue
            quasi = record.quasi
            for obj, version in quasi.writes:
                self.store.install(obj, version)
            self.installed_sources.add(quasi.source_txn)
            self.qt_archive[quasi.fragment][quasi.stream_seq] = quasi
            self.next_expected[quasi.fragment] = max(
                self.next_expected[quasi.fragment], quasi.stream_seq + 1
            )
            self.epoch[quasi.fragment] = max(
                self.epoch[quasi.fragment], quasi.epoch
            )
        for peer in self.system.nodes:
            if peer != self.name:
                self.system.network.send(
                    self.name, peer, "recovery-req",
                    {"requester": self.name},
                )

    def _on_recovery_req(self, message: Message) -> None:
        requester = message.payload["requester"]
        archives = {
            fragment: dict(entries)
            for fragment, entries in self.qt_archive.items()
        }
        self.system.network.send(
            self.name, requester, "recovery-rep", {"archives": archives}
        )

    def _on_recovery_rep(self, message: Message) -> None:
        for fragment, entries in message.payload["archives"].items():
            for seq in sorted(entries):
                self.system.movement.admit(self, entries[seq])

    def __repr__(self) -> str:
        return f"DatabaseNode({self.name!r})"
