"""A database node: one replica site of the fragmented database.

Responsibilities (Section 3.2):

* execute local update and read-only transactions through the local
  strict-2PL scheduler;
* at commit of an update transaction, enforce the initiation
  requirement, assign version numbers along the fragment's update
  stream, install locally, and hand the resulting
  :class:`~repro.core.transaction.QuasiTransaction` to the movement
  protocol for propagation;
* receive quasi-transactions from other nodes and install them
  *atomically* and *in per-fragment stream order* (the admission logic
  is delegated to the movement protocol — fixed agents use plain
  sequence order, Section 4.4 protocols override it);
* multiplex broadcast and unicast traffic over its single network
  handler.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.cc.history import (
    CommittedTxn,
    InstallRecord,
    ReadObservation,
    WriteRecord,
)
from repro.cc.scheduler import LocalScheduler, TxnHandle, TxnOutcome
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)
from repro.errors import ReproError, TransactionAborted
from repro.net.broadcast import SeqPayload
from repro.net.message import Message
from repro.obs import taxonomy
from repro.obs.lineage import SpanContext
from repro.recovery.checkpoint import CheckpointStore, apply_checkpoint
from repro.replication.apply import FragmentApplyQueue
from repro.replication.batch import QTB_TYPE
from repro.replication.stream import StreamLog
from repro.storage.store import ObjectStore
from repro.storage.values import INITIAL_WRITER, Version
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import FragmentedDatabase

UnicastHandler = Callable[[Message], None]
BroadcastHandler = Callable[["DatabaseNode", str, dict[str, Any]], None]


class DatabaseNode:
    """One site: local store, local scheduler, install machinery."""

    def __init__(self, name: str, system: "FragmentedDatabase") -> None:
        self.name = name
        self.system = system
        self.store = ObjectStore(name)
        self.scheduler = LocalScheduler(
            name,
            self.store,
            sim=system.sim,
            action_delay=system.action_delay,
            apply_writes=self._apply_commit,
        )
        # Replication-pipeline state: stream bookkeeping (cursor, epoch,
        # reorder buffer, archive) and the per-fragment apply queues.
        self.streams = StreamLog()
        self.apply_queue = FragmentApplyQueue(self)
        # Message routing.
        self.unicast_handlers: dict[str, UnicastHandler] = {}
        self.broadcast_handlers: dict[str, BroadcastHandler] = {}
        # Install atomicity ablation (Property 2 demonstration).
        self.atomic_installs = True
        self.quasi_installed = 0
        self.quasi_skipped = 0  # fragments this node does not replicate
        # Crash-stop failure model: the WAL and the checkpoint shelf
        # survive a crash, nothing else does.
        self.wal = WriteAheadLog(name)
        self.checkpoints = CheckpointStore(name)
        self.down = False
        self.crashes = 0
        # Shared observability handles (system-wide registry/tracer).
        self.metrics = system.metrics
        self.tracer = system.tracer
        self._c_qt_installed = self.metrics.counter("qt.installed")
        self._c_qt_skipped = self.metrics.counter("qt.skipped")

    # -- stream-log views (delegation kept for API compatibility) -----------

    @property
    def next_expected(self) -> dict[str, int]:
        """Fragment -> next expected stream sequence number."""
        return self.streams.next_expected

    @property
    def epoch(self) -> dict[str, int]:
        """Fragment -> currently active epoch."""
        return self.streams.epoch

    @property
    def qt_buffer(self) -> dict[str, dict[tuple[int, int], QuasiTransaction]]:
        """Fragment -> out-of-order admission buffer."""
        return self.streams.buffer

    @property
    def qt_archive(self) -> dict[str, dict[int, QuasiTransaction]]:
        """Fragment -> archive of every quasi-transaction seen."""
        return self.streams.archive

    @property
    def installed_sources(self) -> set[str]:
        """Source transaction ids already installed at this replica."""
        return self.streams.installed_sources

    # -- network plumbing ---------------------------------------------------

    def handle_network(self, message: Message) -> None:
        """Single network entry point: route broadcast vs unicast."""
        if self.down:
            # Shouldn't happen (a crashed node's links are down and the
            # network re-holds in-flight messages), but a zero-latency
            # race is cheap to make safe: the network layer re-holds.
            return
        if isinstance(message.payload, SeqPayload):
            self.system.broadcast.handle_message(message)
            return
        handler = self.unicast_handlers.get(message.kind)
        if handler is None:
            raise ReproError(
                f"node {self.name!r}: no handler for unicast kind "
                f"{message.kind!r}"
            )
        handler(message)

    def on_broadcast(self, sender: str, seq: int, body: dict[str, Any]) -> None:
        """Reliable-broadcast delivery callback (FIFO per sender)."""
        kind = body.get("type")
        if kind == QTB_TYPE:
            self.system.pipeline.deliver(
                self, body["batch"], sender=sender, seq=seq
            )
            return
        handler = self.broadcast_handlers.get(kind)
        if handler is None:
            raise ReproError(
                f"node {self.name!r}: no handler for broadcast type {kind!r}"
            )
        handler(self, sender, body)

    def register_unicast(self, kind: str, handler: UnicastHandler) -> None:
        """Register a handler for a unicast message kind."""
        self.unicast_handlers[kind] = handler

    def register_broadcast(self, kind: str, handler: BroadcastHandler) -> None:
        """Register a handler for a broadcast body type."""
        self.broadcast_handlers[kind] = handler

    # -- local transaction execution ----------------------------------------

    def execute_update(
        self,
        spec: TransactionSpec,
        tracker: RequestTracker,
        fragment: str,
    ) -> None:
        """Run an update transaction locally (strategy pre-steps done)."""

        def on_done(
            handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
        ) -> None:
            now = self.system.sim.now
            if outcome is TxnOutcome.COMMITTED:
                tracker.finish(
                    RequestStatus.COMMITTED, now, result=handle.result
                )
            else:
                reason = getattr(error, "reason", str(error))
                self.system.recorder.record_abort(spec.txn_id, reason)
                tracker.finish(RequestStatus.ABORTED, now, reason=reason)
            self.system.strategy.after_local(self.system, self, spec, tracker)

        self.scheduler.submit(
            spec.txn_id,
            spec.body,
            ctx=spec.ctx,
            kind="update",
            on_done=on_done,
            meta={
                "spec": spec,
                "fragment": fragment,
                "tracker": tracker,
                "remote_versions": spec.meta.get("remote_versions"),
                "hold": spec.meta.get("hold"),
                "on_prepared": spec.meta.get("on_prepared"),
            },
        )

    def execute_readonly(
        self, spec: TransactionSpec, tracker: RequestTracker
    ) -> None:
        """Run a read-only transaction locally."""

        def on_done(
            handle: TxnHandle, outcome: TxnOutcome, error: Exception | None
        ) -> None:
            now = self.system.sim.now
            if outcome is TxnOutcome.COMMITTED:
                tracker.finish(
                    RequestStatus.COMMITTED, now, result=handle.result
                )
            else:
                reason = getattr(error, "reason", str(error))
                self.system.recorder.record_abort(spec.txn_id, reason)
                tracker.finish(RequestStatus.ABORTED, now, reason=reason)
            self.system.strategy.after_local(self.system, self, spec, tracker)

        self.scheduler.submit(
            spec.txn_id,
            spec.body,
            ctx=spec.ctx,
            kind="readonly",
            on_done=on_done,
            meta={
                "spec": spec,
                "fragment": None,
                "tracker": tracker,
                "remote_versions": spec.meta.get("remote_versions"),
            },
        )

    # -- commit application (scheduler callback) ------------------------------

    def _apply_commit(self, handle: TxnHandle) -> None:
        """Apply a committed transaction's buffered writes.

        For quasi-transactions: install the pre-assigned origin
        versions.  For local updates: enforce the initiation
        requirement, run the strategy's dynamic read check, mint
        versions along the fragment stream, install, record history,
        and hand the quasi-transaction to the movement protocol.
        Raising :class:`TransactionAborted` here converts the commit
        into an abort (nothing has been installed yet).
        """
        system = self.system
        now = system.sim.now
        if handle.kind == "quasi":
            versions: dict[str, Version] = handle.meta["versions"]
            for obj, version in versions.items():
                self.store.install(obj, version)
            return
        spec: TransactionSpec = handle.meta["spec"]
        if handle.kind == "readonly" or not handle.write_buffer:
            system.strategy.validate_actual_reads(system, self, handle, None)
            record = CommittedTxn(
                txn_id=spec.txn_id,
                agent=spec.agent,
                fragment=None,
                node=self.name,
                commit_time=now,
                stream_seq=None,
                kind="readonly",
                reads=[
                    ReadObservation(obj, v.writer, v.version_no)
                    for obj, v in handle.reads
                ],
            )
            system.recorder.record_commit(record)
            return

        fragment_name: str = handle.meta["fragment"]
        fragment = system.catalog.get(fragment_name)
        for obj in handle.write_buffer:
            if not fragment.contains(obj):
                raise TransactionAborted(
                    spec.txn_id,
                    f"initiation requirement violated: wrote {obj!r} outside "
                    f"fragment {fragment_name!r}",
                )
        system.strategy.validate_actual_reads(system, self, handle, fragment_name)

        agent = system.agents[spec.agent]
        token = agent.token_for(fragment_name)
        if not token.usable_at(self.name):
            # The transaction was submitted while the agent lived here,
            # but lock waits delayed its commit past the agent's (token's)
            # departure.  Committing now would mint a stream position at
            # the old node while the new home is already numbering its
            # own transactions — the initiation requirement is a
            # *commit-time* condition.  The request fails like any other
            # service the departed agent can no longer render.
            raise TransactionAborted(
                spec.txn_id,
                f"token for {fragment_name!r} left node {self.name!r} "
                f"before the transaction could commit",
            )
        stream_seq = token.payload.setdefault("next_seq", 0)
        epoch = token.payload.setdefault("epoch", 0)
        writes: list[tuple[str, Version]] = []
        write_records: list[WriteRecord] = []
        for obj, value in handle.write_buffer.items():
            previous_no = (
                self.store.read_version(obj).version_no
                if self.store.exists(obj)
                else -1
            )
            version = Version(value, spec.txn_id, previous_no + 1, now)
            self.store.install(obj, version)
            writes.append((obj, version))
            write_records.append(WriteRecord(obj, version.version_no, value))
        token.payload["next_seq"] = stream_seq + 1

        quasi = QuasiTransaction(
            source_txn=spec.txn_id,
            fragment=fragment_name,
            agent=spec.agent,
            origin_node=self.name,
            stream_seq=stream_seq,
            epoch=epoch,
            writes=writes,
            origin_time=now,
            meta=dict(spec.meta),
        )
        if self.tracer.enabled:
            # Causal lineage opens here: the span rides the quasi down
            # the pipeline, and the commit event carries the written
            # objects so the offline auditor can check the initiation
            # requirement against the fragment catalog.
            quasi.span = SpanContext(
                txn_id=spec.txn_id,
                agent=spec.agent,
                fragment=fragment_name,
                origin_node=self.name,
                stream_seq=stream_seq,
                epoch=epoch,
                parent=spec.meta.get("repackaged_from"),
            )
            self.tracer.emit(
                taxonomy.LINEAGE_COMMIT,
                node=self.name,
                objects=[obj for obj, _version in writes],
                **quasi.span.fields(),
            )
        record = CommittedTxn(
            txn_id=spec.txn_id,
            agent=spec.agent,
            fragment=fragment_name,
            node=self.name,
            commit_time=now,
            stream_seq=stream_seq,
            kind="update",
            reads=[
                ReadObservation(obj, v.writer, v.version_no)
                for obj, v in handle.reads
            ],
            writes=write_records,
        )
        system.recorder.record_commit(record)
        system.recorder.record_install(
            InstallRecord(self.name, spec.txn_id, fragment_name, stream_seq, now)
        )
        self.wal.append_install(quasi)
        # Keep this node's own stream bookkeeping in step with its commits.
        self.streams.record(quasi)
        self.streams.observe(quasi)
        system.fire_install_hooks(self, quasi)
        system.movement.propagate(self, quasi)

    # -- quasi-transaction installation ----------------------------------------

    def enqueue_install(self, quasi: QuasiTransaction) -> None:
        """Queue an admitted quasi-transaction for atomic installation.

        Installation is serialized per fragment so that the equivalent
        serial local schedule "contains quasi-transactions from a given
        node in the exact same order as they were generated"
        (Section 3.2).  The machinery lives in
        :class:`~repro.replication.apply.FragmentApplyQueue`.
        """
        self.apply_queue.enqueue(quasi)

    # -- crash-stop failure and recovery ----------------------------------------

    def load_initial(self, values: dict[str, Any]) -> None:
        """Install initial values, recording them durably in the WAL."""
        self.store.load(values)
        for obj, value in values.items():
            self.wal.append_load(obj, value)

    def crash(self) -> None:
        """Crash-stop: every piece of volatile state is lost.

        In-flight local transactions abort (their clients see it), the
        store, lock tables, install buffers, and archives vanish.  Only
        the WAL survives.  The caller (``FragmentedDatabase.fail_node``)
        also takes the node's links down so the middleware holds traffic.
        """
        self.down = True
        self.crashes += 1
        now = self.system.sim.now
        for handle in list(self.scheduler.active.values()):
            tracker = handle.meta.get("tracker")
            if tracker is not None:
                tracker.finish(
                    RequestStatus.ABORTED, now, reason="node crashed"
                )
        self.store = ObjectStore(self.name)
        self.scheduler = LocalScheduler(
            self.name,
            self.store,
            sim=self.system.sim,
            action_delay=self.system.action_delay,
            apply_writes=self._apply_commit,
        )
        self.streams.clear()
        self.apply_queue.clear()
        self.system.pipeline.node_crashed(self)

    def recover(self) -> None:
        """Restore checkpoints, replay the WAL suffix, then catch up.

        The durable state comes back in two layers: the newest
        checkpoint per fragment restores that fragment's snapshot and
        fast-forwards the stream cursor, then WAL replay applies only
        the records past each checkpoint (truncation usually already
        dropped the rest; the guards below make the order safe even
        when truncation is disabled).  Quasi-transactions the
        middleware had delivered but that never reached the WAL are
        gone from this replica — the recovery manager's cursor-based
        catch-up asks one donor per fragment for exactly the missing
        suffix, and the ordered admission path re-installs it.
        """
        self.down = False
        streams = self.streams
        for ckpt in self.checkpoints.all():
            apply_checkpoint(self, ckpt, persist=False)
        for record in self.wal.records():
            if record.kind == "load":
                # A checkpointed object already has its snapshot
                # version; re-installing the initial value would
                # regress it.
                if not self.store.exists(record.obj):
                    self.store.install(
                        record.obj,
                        Version(record.value, INITIAL_WRITER, 0, 0.0),
                    )
                continue
            quasi = record.quasi
            fragment = quasi.fragment
            slot = (quasi.epoch, quasi.stream_seq)
            if slot < (streams.epoch[fragment], streams.next_expected[fragment]):
                continue  # superseded by the restored checkpoint
            for obj, version in quasi.writes:
                self.store.install(obj, version)
            streams.record(quasi)
            streams.observe(quasi)
        self.system.pipeline.node_recovered(self)
        self.system.recovery.catch_up(self)

    def __repr__(self) -> str:
        return f"DatabaseNode({self.name!r})"
