"""The read-access graph of Section 4.2.

    "The read-access graph is a directed graph G = (V, E), where
    V = {F1, ..., Fn} and (Fi, Fj) in E iff i != j and there is a
    transaction T initiated by A(Fi) that reads a data object in Fj."

and the key definition:

    "A directed graph G is said to be *elementarily acyclic* if the
    undirected graph with the same nodes and edges is acyclic."

The Section 4.2 theorem states that an elementarily acyclic read-access
graph guarantees global serializability with no read synchronization at
all; :class:`ReadAccessGraph` is both the design-time validator for
that strategy and the declarative input to the local-serialization-graph
builder of :mod:`repro.core.gsg`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.fragment import FragmentCatalog
from repro.errors import DesignError
from repro.graphs import Digraph


class ReadAccessGraph:
    """Directed graph over fragments recording who reads from whom."""

    def __init__(self, catalog: FragmentCatalog) -> None:
        self.catalog = catalog
        self._graph = Digraph()
        for name in catalog.names:
            self._graph.add_node(name)

    # -- construction --------------------------------------------------------

    def register_fragment(self, name: str) -> None:
        """Add a fragment vertex (fragments defined after RAG creation)."""
        if name not in self.catalog:
            raise DesignError(f"unknown fragment {name!r}")
        self._graph.add_node(name)

    def add_read_edge(self, reader_fragment: str, read_fragment: str) -> None:
        """Declare that A(reader)'s transactions read from ``read_fragment``."""
        for name in (reader_fragment, read_fragment):
            if name not in self.catalog:
                raise DesignError(f"unknown fragment {name!r}")
        if reader_fragment != read_fragment:
            self._graph.add_edge(reader_fragment, read_fragment)

    def declare_transaction(
        self,
        home_fragment: str,
        reads: Iterable[str],
    ) -> None:
        """Record the edges induced by one transaction's read set.

        ``reads`` are *object* names; each is resolved to its fragment
        through the catalog.  Reads inside ``home_fragment`` add no
        edge (the graph has no self-loops by definition).
        """
        for obj in reads:
            fragment = self.catalog.fragment_of(obj)
            self.add_read_edge(home_fragment, fragment)

    # -- queries ----------------------------------------------------------

    @property
    def edges(self) -> list[tuple[str, str]]:
        """All declared edges ``(reader_fragment, read_fragment)``."""
        return [(str(u), str(v)) for u, v in self._graph.edges]

    def reads_from(self, reader_fragment: str) -> list[str]:
        """Fragments that ``reader_fragment``'s transactions read."""
        return [str(f) for f in self._graph.successors(reader_fragment)]

    def allows(self, reader_fragment: str, read_fragment: str) -> bool:
        """True if the edge is declared (or the read is intra-fragment)."""
        if reader_fragment == read_fragment:
            return True
        return self._graph.has_edge(reader_fragment, read_fragment)

    def is_elementarily_acyclic(self) -> bool:
        """The Section 4.2 condition."""
        return self._graph.is_elementarily_acyclic()

    def violation_cycle(self) -> list[str] | None:
        """An undirected cycle witnessing non-elementary-acyclicity."""
        cycle = self._graph.undirected_cycle()
        if cycle is None:
            return None
        return [str(node) for node in cycle]

    def assert_elementarily_acyclic(self) -> None:
        """Raise :class:`DesignError` with the offending cycle if cyclic."""
        if not self.is_elementarily_acyclic():
            cycle = self.violation_cycle()
            raise DesignError(
                "read-access graph is not elementarily acyclic; "
                f"undirected cycle through fragments {cycle}"
            )

    def component_of(self, fragment: str) -> set[str]:
        """Fragments weakly connected to ``fragment`` via read edges."""
        if fragment not in self.catalog:
            raise DesignError(f"unknown fragment {fragment!r}")
        component = {fragment}
        frontier = [fragment]
        while frontier:
            current = frontier.pop()
            neighbors = set(self._graph.successors(current)) | set(
                self._graph.predecessors(current)
            )
            for neighbor in neighbors:
                if neighbor not in component:
                    component.add(str(neighbor))
                    frontier.append(str(neighbor))
        return component

    def component_is_elementarily_acyclic(self, fragment: str) -> bool:
        """Section 4.2 test restricted to one weakly connected component.

        Used by the combined strategy (the paper's conclusion): a group
        of fragments whose component of the read-access graph is a
        forest enjoys global serializability among themselves no matter
        what the rest of the database does — reads cannot leave a
        weakly connected component.
        """
        component = self.component_of(fragment)
        induced = Digraph()
        for name in component:
            induced.add_node(name)
        for u, v in self._graph.edges:
            if u in component and v in component:
                induced.add_edge(u, v)
        return induced.is_elementarily_acyclic()

    def as_digraph(self) -> Digraph:
        """A copy of the underlying digraph (for the l.s.g. builder)."""
        copy = Digraph()
        for node in self._graph.nodes:
            copy.add_node(node)
        for u, v in self._graph.edges:
            copy.add_edge(u, v)
        return copy
