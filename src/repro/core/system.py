"""The complete simulated system: nodes, network, agents, policies.

:class:`FragmentedDatabase` is the main entry point of the library::

    from repro import FragmentedDatabase, TransactionSpec

    db = FragmentedDatabase(["A", "B"])
    db.add_agent("central", home_node="A")
    db.add_fragment("BALANCES", agent="central", objects=["bal:1"])
    db.load({"bal:1": 300})
    db.finalize()
    tracker = db.submit_update("central", body, writes=["bal:1"])
    db.quiesce()
    assert tracker.succeeded

It wires one discrete-event simulator, a topology/network with a
partition manager, the reliable FIFO broadcast, one
:class:`~repro.core.node.DatabaseNode` per site, the fragment catalog
and read-access graph, a control strategy (Sections 4.1-4.3), and a
movement protocol (Section 4.4).
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.availability.supervisor import (
    AvailabilityConfig,
    AvailabilitySupervisor,
)
from repro.cc.history import HistoryRecorder
from repro.core.agent import Agent
from repro.core.control.base import ControlStrategy
from repro.core.control.unrestricted import UnrestrictedReadsStrategy
from repro.core.fragment import Fragment, FragmentCatalog
from repro.core.movement.base import FixedAgentsProtocol, MovementProtocol
from repro.core.node import DatabaseNode
from repro.core.predicates import PredicateSuite
from repro.core.properties import (
    FragmentwiseReport,
    MutualConsistencyReport,
    PropertyReport,
    check_fragmentwise_serializability,
    check_global_serializability,
    check_mutual_consistency,
)
from repro.core.rag import ReadAccessGraph
from repro.core.token import Token
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
)
from repro.errors import DesignError, InitiationError, TokenError
from repro.net.faults import CrashEpisode, FaultInjector, FaultPlan
from repro.net.network import Network
from repro.net.partition import PartitionManager
from repro.net.reliable import ReliableConfig, ReliableTransport
from repro.net.topology import Topology
from repro.net.broadcast import ReliableBroadcast
from repro.obs import taxonomy
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.recovery.manager import RecoveryConfig, RecoveryManager
from repro.replication.pipeline import PipelineConfig, ReplicationPipeline
from repro.replication.quorum import QuorumConfig, QuorumReadManager
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator
from repro.storage.store import ObjectStore

InstallHook = Callable[[DatabaseNode, QuasiTransaction], None]
CorrectiveHook = Callable[[DatabaseNode, QuasiTransaction, list], None]


@dataclass
class AvailabilityStats:
    """Aggregate request outcomes — the E1/E9 availability numbers."""

    submitted: int
    committed: int
    rejected: int
    aborted: int
    timed_out: int
    pending: int
    mean_latency: float | None

    @property
    def availability(self) -> float:
        """Committed / submitted (1.0 for an idle system)."""
        if self.submitted == 0:
            return 1.0
        return self.committed / self.submitted


class FragmentedDatabase:
    """A fully replicated fragments-and-agents distributed database."""

    def __init__(
        self,
        node_names: Sequence[str],
        topology: Topology | None = None,
        strategy: ControlStrategy | None = None,
        movement: MovementProtocol | None = None,
        seed: int = 0,
        default_latency: float = 1.0,
        action_delay: float = 0.0,
        fifo_broadcast: bool = True,
        pipeline: PipelineConfig | None = None,
        faults: FaultPlan | None = None,
        reliable: ReliableConfig | bool | None = None,
        recovery: RecoveryConfig | None = None,
        replication_factor: int | None = None,
        quorum: QuorumConfig | None = None,
        availability: AvailabilityConfig | None = None,
        runtime: str = "sim",
        tick: float = 0.05,
        fault_profile: Mapping[str, Any] | None = None,
    ) -> None:
        if len(node_names) < 1:
            raise DesignError("at least one node required")
        if replication_factor is not None and replication_factor < 1:
            raise DesignError("replication_factor must be >= 1 (or None)")
        if runtime not in ("sim", "asyncio"):
            raise DesignError(
                f"unknown runtime {runtime!r} (expected 'sim' or 'asyncio')"
            )
        self.runtime_name = runtime
        # The runtime backend: the deterministic discrete-event
        # simulator, or the real-time asyncio scheduler + TCP mesh
        # (same duck-typed surface; see repro.runtime).  The asyncio
        # backend needs an explicit start_runtime()/stop_runtime()
        # bracket and thread-safe observability (HTTP front-door
        # threads read metrics while the loop thread writes them).
        if runtime == "asyncio":
            from repro.runtime.scheduler import AsyncioScheduler

            self.sim: Simulator | AsyncioScheduler = AsyncioScheduler(
                tick=tick
            )
        else:
            self.sim = Simulator()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=lambda: self.sim.now)
        self.sim.tracer = self.tracer
        self.topology = topology or Topology.full_mesh(
            node_names, default_latency
        )
        if runtime == "asyncio":
            from repro.runtime.tcp import TcpMeshNetwork

            self.metrics.enable_thread_safety()
            self.network: Network = TcpMeshNetwork(
                self.sim,
                self.topology,
                tracer=self.tracer,
                metrics=self.metrics,
                fault_profile=dict(fault_profile)
                if fault_profile is not None
                else None,
            )
            self.network.down_guard = self._node_is_down
        else:
            if fault_profile is not None:
                raise DesignError(
                    "fault_profile (socket-level faults) requires "
                    "runtime='asyncio'; use faults=FaultPlan(...) on the "
                    "simulator backend"
                )
            self.network = Network(
                self.sim,
                self.topology,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        self.broadcast = ReliableBroadcast(self.network, fifo=fifo_broadcast)
        self.pipeline = ReplicationPipeline(pipeline)
        self.pipeline.attach(self)
        self.partitions = PartitionManager(self.network)
        self.partitions.crashed_guard = self._node_is_down
        self.recorder = HistoryRecorder()
        self.catalog = FragmentCatalog()
        self.rag = ReadAccessGraph(self.catalog)
        self.predicates = PredicateSuite(self.catalog)
        self.rng = SeededRng(seed)
        # Fault injection + reliable delivery (opt-in; both off on the
        # default fault-free network so existing runs stay untouched).
        # ``reliable=None`` means "on exactly when message faults are
        # armed" — the paper's reliable-delivery assumption must be
        # implemented once the substrate stops granting it for free.
        self.faults = faults
        if reliable is None:
            # A real network is a faulty network: the asyncio backend
            # always earns the delivery assumption with the transport.
            reliable = (runtime == "asyncio") or (
                faults is not None and faults.message_faults
            )
        if reliable:
            config = reliable if isinstance(reliable, ReliableConfig) else None
            self.transport: ReliableTransport | None = ReliableTransport(
                self.network, config
            )
        else:
            self.transport = None
        if faults is not None:
            self.injector: FaultInjector | None = FaultInjector(
                self.network, faults, self.rng.fork("faults")
            )
            self.injector.revive_guard = self._flap_revive_guard
            self.injector.install()
            self.partitions.install(faults.partitions)
            if runtime == "asyncio":
                # The real-time scheduler only accepts work once its
                # loop is up; start_runtime() arms these episodes.
                self._deferred_crashes: list[CrashEpisode] = list(
                    faults.crashes
                )
            else:
                self._schedule_crash_episodes(faults.crashes)
                self._deferred_crashes = []
        else:
            self.injector = None
            self._deferred_crashes = []
        self.action_delay = action_delay
        self.agents: dict[str, Agent] = {}
        self._fragment_agent: dict[str, str] = {}
        self.nodes: dict[str, DatabaseNode] = {}
        for name in node_names:
            node = DatabaseNode(name, self)
            self.nodes[name] = node
            self.network.register(name, node.handle_network)
            self.broadcast.attach(name, node.on_broadcast, register=False)
        self.strategy = strategy or UnrestrictedReadsStrategy()
        self.movement = movement or FixedAgentsProtocol()
        self.strategy.attach(self)
        self.movement.attach(self)
        # Checkpoint / compaction / catch-up policy engine.  Always
        # attached (its handlers serve the rejoin path); automatic
        # checkpoints and pruning stay off unless the config arms them.
        self.recovery = RecoveryManager(recovery)
        self.recovery.attach(self)
        self.trackers: list[RequestTracker] = []
        # Partial replication (paper's conclusion: "databases that are
        # not fully replicated"): fragment -> replicating nodes.  Absent
        # entries mean full replication of that fragment.  With a
        # ``replication_factor`` k < N every new fragment gets a
        # deterministic rendezvous-hashed replica set of size k (agent
        # home always included); ``set_replication`` overrides per
        # fragment either way.
        self.replication: dict[str, set[str]] = {}
        self.replication_factor = replication_factor
        # Online reconfiguration bookkeeping: per-fragment membership
        # epoch (bumped by every replica-set change) and the joiners
        # still syncing through catch-up (replicas that do not yet
        # count toward quorums, succession majorities, or the
        # compaction watermark).
        self.replication_epoch: dict[str, int] = {}
        self.syncing_replicas: dict[str, set[str]] = {}
        # Quorum-read service for fragments the submission node does not
        # replicate (always attached; it only acts on non-local reads).
        self.quorum = QuorumReadManager(quorum)
        self.quorum.attach(self)
        # Availability supervisor: heartbeat failure detection, automatic
        # agent failover, demotion, and online replica-set changes.  Its
        # handlers are always wired (the demotion path must work even
        # when detection is off); probing only runs between an explicit
        # ``availability.start(until=...)`` and that deadline.
        self.availability = AvailabilitySupervisor(availability)
        self.availability.attach(self)
        self._install_hooks: list[tuple[str, InstallHook]] = []
        self.corrective_hooks: list[CorrectiveHook] = []
        self._txn_counter = 0
        self._finalized = False
        self._warned_multi_fragment: set[str] = set()
        # Transaction lifecycle metrics (one counter handle per status).
        self._c_submitted = self.metrics.counter("txn.submitted")
        self._c_by_status = {
            RequestStatus.COMMITTED: self.metrics.counter("txn.committed"),
            RequestStatus.REJECTED: self.metrics.counter("txn.rejected"),
            RequestStatus.ABORTED: self.metrics.counter("txn.aborted"),
            RequestStatus.TIMED_OUT: self.metrics.counter("txn.timed_out"),
        }
        self._trace_by_status = {
            RequestStatus.COMMITTED: taxonomy.TXN_COMMIT,
            RequestStatus.REJECTED: taxonomy.TXN_REJECT,
            RequestStatus.ABORTED: taxonomy.TXN_ABORT,
            RequestStatus.TIMED_OUT: taxonomy.TXN_TIMEOUT,
        }
        self._h_commit_latency = self.metrics.histogram("txn.commit_latency")
        self.metrics.gauge("sim.now", lambda: self.sim.now)
        self.metrics.gauge("sim.pending", lambda: self.sim.pending)
        self.metrics.gauge("sim.events_fired", lambda: self.sim.events_fired)

    # -- observability ----------------------------------------------------------

    def enable_tracing(
        self,
        path: str | None = None,
        append: bool = False,
        context: Mapping[str, Any] | None = None,
    ) -> Tracer:
        """Turn on structured tracing, optionally streaming to JSONL.

        Returns the tracer so callers can tweak ``exclude`` or read the
        ring buffer.  Call ``db.tracer.close()`` (or use the tracer as a
        context manager) to flush a JSONL sink when done.
        """
        if path is not None:
            self.tracer.open_jsonl(path, append=append, context=context)
        self.tracer.enable()
        if self._finalized:
            # Tracing turned on after schema definition: emit the
            # catalog now so an offline audit of this sink still knows
            # the fragment -> objects map (finalize() already ran and
            # will not re-emit).
            self._emit_catalog()
        return self.tracer

    def _emit_catalog(self) -> None:
        """Trace the schema (fragment map + agent homes) for audits."""
        if not self.tracer.enabled:
            return
        self.tracer.emit(
            taxonomy.SYSTEM_CATALOG,
            fragments={
                fragment.name: {
                    "objects": sorted(fragment.objects),
                    "prefixes": sorted(fragment.prefixes),
                    "agent": self._fragment_agent.get(fragment.name),
                    "replicas": list(self.replica_set(fragment.name)),
                    "epoch": self.replication_epoch.get(fragment.name, 0),
                }
                for fragment in self.catalog
            },
            agents={
                name: agent.home_node for name, agent in self.agents.items()
            },
            nodes=sorted(self.nodes),
        )

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """The metrics registry's snapshot — the experiment-facing view.

        Counters and histograms accumulate from construction; gauges
        (held messages, pending events, …) are polled at call time.
        """
        return self.metrics.snapshot()

    def _node_is_down(self, name: str) -> bool:
        node = self.nodes.get(name)
        return node is not None and node.down

    def _observe_finish(self, tracker: RequestTracker) -> None:
        """Tracker observer: count + trace every terminal transition."""
        counter = self._c_by_status.get(tracker.status)
        if counter is not None:
            counter.inc()
        if tracker.status is RequestStatus.COMMITTED:
            latency = tracker.latency
            if latency is not None:
                self._h_commit_latency.observe(latency)
        if self.tracer.enabled:
            event_type = self._trace_by_status.get(tracker.status)
            if event_type is not None:
                self.tracer.emit(
                    event_type,
                    txn=tracker.spec.txn_id,
                    agent=tracker.spec.agent,
                    node=tracker.node,
                    latency=tracker.latency,
                    reason=tracker.reason or None,
                )
            if tracker.spec.update:
                self.tracer.emit(
                    taxonomy.SPAN_END,
                    txn=tracker.spec.txn_id,
                    agent=tracker.spec.agent,
                    node=tracker.node,
                    status=tracker.status.value,
                    latency=tracker.latency,
                )

    # -- schema definition -----------------------------------------------------

    def add_agent(self, name: str, home_node: str, kind: str = "user") -> Agent:
        """Register an agent at its initial home node."""
        if name in self.agents:
            raise DesignError(f"duplicate agent {name!r}")
        if home_node not in self.nodes:
            raise DesignError(f"unknown node {home_node!r}")
        agent = Agent(name, home_node, kind)
        self.agents[name] = agent
        return agent

    def add_fragment(
        self,
        name: str,
        agent: str,
        objects: Iterable[str] = (),
        prefixes: Iterable[str] = (),
    ) -> Fragment:
        """Define a fragment and hand its token to ``agent``."""
        if agent not in self.agents:
            raise DesignError(f"unknown agent {agent!r}")
        fragment = self.catalog.add(Fragment(name, objects, prefixes))
        self.rag.register_fragment(name)
        owner = self.agents[agent]
        token = Token(name, owner.home_node)
        owner.grant(token)
        self._fragment_agent[name] = agent
        if (
            self.replication_factor is not None
            and self.replication_factor < len(self.nodes)
        ):
            self.replication[name] = self._assign_replicas(
                name, owner.home_node, self.replication_factor
            )
        return fragment

    def _assign_replicas(self, fragment: str, home: str, k: int) -> set[str]:
        """Deterministic rendezvous-hash placement of ``k`` replicas.

        The agent's home node is always a member (it executes the
        fragment's updates locally); the remaining ``k - 1`` slots go to
        the highest-scoring nodes under a per-(fragment, node) hash, so
        placement is stable across runs, independent of insertion
        order, and spreads fragments evenly across the cluster.
        """
        scored = sorted(
            (name for name in self.nodes if name != home),
            key=lambda name: (
                hashlib.sha256(f"{fragment}|{name}".encode()).digest(),
                name,
            ),
            reverse=True,
        )
        return {home, *scored[: k - 1]}

    def set_replication(self, fragment: str, nodes: Iterable[str]) -> None:
        """Restrict a fragment's replicas to the given nodes.

        The agent's home node must be included (the agent reads and
        writes its fragment locally).  Call before :meth:`load`.
        Non-replicating nodes skip the fragment's quasi-transactions
        and never hold its objects; transactions reading the fragment
        must run at a replicating node.
        """
        if fragment not in self.catalog:
            raise DesignError(f"unknown fragment {fragment!r}")
        node_set = set(nodes)
        unknown = node_set - set(self.nodes)
        if unknown:
            raise DesignError(f"unknown nodes {sorted(unknown)}")
        home = self.agent_of(fragment).home_node
        if home not in node_set:
            raise DesignError(
                f"replica set for {fragment!r} must include the agent's "
                f"home node {home!r}"
            )
        self.replication[fragment] = node_set

    def replicates(self, node: str, fragment: str) -> bool:
        """True if ``node`` holds a replica of ``fragment``."""
        restricted = self.replication.get(fragment)
        return restricted is None or node in restricted

    def replica_set(self, fragment: str) -> tuple[str, ...]:
        """The sorted replica set of ``fragment`` (all nodes if full)."""
        restricted = self.replication.get(fragment)
        if restricted is None:
            return tuple(sorted(self.nodes))
        return tuple(sorted(restricted))

    def countable_replicas(self, fragment: str) -> tuple[str, ...]:
        """Replica-set members that count toward quorums and majorities.

        Excludes joiners still syncing through catch-up: a replica
        that is downloading history can vouch for neither the present
        (read quorums) nor a succession majority.
        """
        syncing = self.syncing_replicas.get(fragment)
        replicas = self.replica_set(fragment)
        if not syncing:
            return replicas
        return tuple(name for name in replicas if name not in syncing)

    def add_replica(self, fragment: str, node: str) -> None:
        """Add ``node`` to ``fragment``'s replica set while running.

        Epoch-stamped online reconfiguration: the joiner syncs through
        the catch-up path and counts toward quorums only once current.
        See :class:`repro.availability.reconfig.Reconfigurator`.
        """
        self.availability.reconfig.add(fragment, node)

    def remove_replica(self, fragment: str, node: str) -> None:
        """Remove ``node`` from ``fragment``'s replica set while running."""
        self.availability.reconfig.remove(fragment, node)

    def propagation_plan(self, fragment: str) -> tuple[tuple[str, ...] | None, str]:
        """``(targets, stream)`` for fragment-scoped group messages.

        A fully replicated fragment propagates on the classic
        broadcast-to-all channel (``targets=None``, stream ``""``) —
        the paper's wire behaviour, bit-identical to previous releases.
        A fragment with a restricted replica set multicasts to exactly
        that set on its own FIFO stream, so message volume scales with
        the replication factor k, not the cluster size N, and
        non-members see no sequence gaps.
        """
        restricted = self.replication.get(fragment)
        if restricted is None:
            return None, ""
        epoch = self.replication_epoch.get(fragment, 0)
        if epoch == 0:
            # Membership never changed: the PR 7 stream name, so seeded
            # runs without reconfiguration stay bit-identical.
            return tuple(sorted(restricted)), f"f:{fragment}"
        # Each membership epoch gets its own FIFO stream: a joiner
        # starts clean on the new stream instead of seeing a sequence
        # gap for every pre-join message it never received.
        return tuple(sorted(restricted)), f"f:{fragment}@e{epoch}"

    def declare_reads(
        self,
        fragment: str,
        objects: Iterable[str] = (),
        fragments: Iterable[str] = (),
    ) -> None:
        """Declare the read pattern of A(fragment)'s transactions.

        Feeds the read-access graph: ``objects`` are resolved through
        the catalog; ``fragments`` add edges directly.
        """
        self.rag.declare_transaction(fragment, objects)
        for other in fragments:
            self.rag.add_read_edge(fragment, other)

    def load(self, initial: Mapping[str, Any]) -> None:
        """Install initial values at each object's replicating nodes."""
        by_fragment: dict[str, dict[str, Any]] = {}
        for obj, value in initial.items():
            fragment = self.catalog.fragment_of(obj)  # raises if unassigned
            by_fragment.setdefault(fragment, {})[obj] = value
        for fragment, values in by_fragment.items():
            for name, node in self.nodes.items():
                if self.replicates(name, fragment):
                    node.load_initial(values)

    def finalize(self) -> None:
        """Run design-time validation (idempotent)."""
        if self._finalized:
            return
        self.strategy.validate_design(self)
        self._finalized = True
        self._emit_catalog()

    # -- lookups ----------------------------------------------------------------

    def agent_of(self, fragment: str) -> Agent:
        """The agent currently holding the fragment's token."""
        try:
            return self.agents[self._fragment_agent[fragment]]
        except KeyError:
            raise DesignError(f"fragment {fragment!r} has no agent") from None

    def fragment_objects(self, fragment: str, store: ObjectStore) -> list[str]:
        """Objects of ``fragment`` present in ``store``."""
        spec = self.catalog.get(fragment)
        return [obj for obj in store.names if spec.contains(obj)]

    # -- transaction submission ------------------------------------------------

    def next_txn_id(self, prefix: str = "T") -> str:
        """A fresh unique transaction id."""
        self._txn_counter += 1
        return f"{prefix}{self._txn_counter}"

    def submit(
        self,
        spec: TransactionSpec,
        at: str | None = None,
        on_done: Callable[[RequestTracker], None] | None = None,
    ) -> RequestTracker:
        """Submit a transaction; returns its tracker immediately.

        Update transactions run at the initiating agent's current home
        node (``at`` is ignored); read-only transactions run at ``at``
        or the agent's home node.  The tracker reaches a terminal
        status during subsequent simulation (``run``/``quiesce``).
        """
        self.finalize()
        agent = self.agents.get(spec.agent)
        if agent is None:
            raise DesignError(f"unknown agent {spec.agent!r}")
        if not spec.update:
            node = self.nodes[at or agent.home_node]
            tracker = self._new_tracker(spec, node.name, on_done)
            # Declared reads of fragments this node does not replicate
            # go through the quorum-read service (version vote over the
            # replica set) before the body executes locally.  This also
            # serves reads when the fragment's agent node is down — a
            # read quorum of the surviving replicas suffices.
            remote = self.quorum.remote_fragments(node.name, spec)
            if remote:
                self.quorum.begin_read(node, spec, tracker, remote)
                return tracker
            self.strategy.begin_readonly(self, node, spec, tracker)
            return tracker

        fragment = self._update_fragment(spec, agent)
        tracker = self._new_tracker(spec, agent.home_node, on_done)
        self._gate_update(spec, tracker, fragment)
        return tracker

    def _gate_update(
        self, spec: TransactionSpec, tracker: RequestTracker, fragment: str
    ) -> None:
        """The update submission gate: token -> backpressure -> policies.

        Runs at first submission and again when the pipeline's
        backpressure releases a deferred request, so the agent's home
        node and the token state are re-resolved each time.
        """
        agent = self.agents[spec.agent]
        node = self.nodes[agent.home_node]
        token = agent.token_for(fragment)
        if token.in_transit:
            self.recorder.record_rejection(spec.txn_id, "token in transit")
            tracker.finish(
                RequestStatus.REJECTED,
                self.sim.now,
                reason=f"token for {fragment!r} is in transit",
            )
            return
        if node.down and self.availability.enabled:
            # With the supervisor armed the outage is bounded (failover
            # re-homes the agent), so reject loudly instead of letting
            # the request hang — the client can resubmit after the MTTR
            # window.  Without a supervisor, behaviour is unchanged.
            self.recorder.record_rejection(spec.txn_id, "agent home down")
            self.metrics.inc("avail.updates_blocked")
            tracker.finish(
                RequestStatus.REJECTED,
                self.sim.now,
                reason=f"agent home {node.name!r} is down",
            )
            return
        if self.pipeline.throttle_update(node, spec, tracker, fragment):
            return
        if not self.movement.before_update(self, node, spec, tracker, fragment):
            return
        self.strategy.begin_update(self, node, spec, tracker, fragment)

    def submit_update(
        self,
        agent: str,
        body: Callable,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        txn_id: str | None = None,
        ctx: Any = None,
        meta: dict[str, Any] | None = None,
        on_done: Callable[[RequestTracker], None] | None = None,
    ) -> RequestTracker:
        """Convenience wrapper building the spec inline."""
        spec = TransactionSpec(
            txn_id=txn_id or self.next_txn_id(),
            agent=agent,
            body=body,
            ctx=ctx,
            update=True,
            reads=reads,
            writes=writes,
            meta=meta or {},
        )
        return self.submit(spec, on_done=on_done)

    def submit_readonly(
        self,
        agent: str,
        body: Callable,
        at: str | None = None,
        reads: Sequence[str] = (),
        txn_id: str | None = None,
        ctx: Any = None,
        on_done: Callable[[RequestTracker], None] | None = None,
    ) -> RequestTracker:
        """Convenience wrapper for read-only transactions."""
        spec = TransactionSpec(
            txn_id=txn_id or self.next_txn_id("R"),
            agent=agent,
            body=body,
            ctx=ctx,
            update=False,
            reads=reads,
        )
        return self.submit(spec, at=at, on_done=on_done)

    def _new_tracker(
        self,
        spec: TransactionSpec,
        node_name: str,
        on_done: Callable[[RequestTracker], None] | None,
    ) -> RequestTracker:
        """Create, register, and instrument one request tracker."""
        tracker = RequestTracker(
            spec,
            self.sim.now,
            node_name,
            on_done=on_done,
            observer=self._observe_finish,
        )
        self.trackers.append(tracker)
        self._c_submitted.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.TXN_SUBMIT,
                txn=spec.txn_id,
                agent=spec.agent,
                node=node_name,
                update=spec.update,
            )
            if spec.update:
                self.tracer.emit(
                    taxonomy.SPAN_BEGIN,
                    txn=spec.txn_id,
                    agent=spec.agent,
                    node=node_name,
                    parent=spec.meta.get("repackaged_from"),
                )
        return tracker

    def _update_fragment(self, spec: TransactionSpec, agent: Agent) -> str:
        """Resolve which fragment an update transaction targets."""
        if spec.writes:
            fragments = {self.catalog.fragment_of(obj) for obj in spec.writes}
            if len(fragments) != 1:
                raise InitiationError(
                    f"transaction {spec.txn_id!r} declares writes in "
                    f"{sorted(fragments)}; single-fragment updates only "
                    f"(multi-fragment transactions are out of scope, see "
                    f"the paper's Section 3.2 footnote)"
                )
            fragment = fragments.pop()
        elif len(agent.fragments) == 1:
            fragment = agent.fragments[0]
        else:
            raise InitiationError(
                f"transaction {spec.txn_id!r}: agent {agent.name!r} controls "
                f"{len(agent.fragments)} fragments; declare the write set"
            )
        if not agent.controls(fragment):
            raise InitiationError(
                f"agent {agent.name!r} does not control fragment "
                f"{fragment!r} (initiation requirement)"
            )
        return fragment

    # -- runtime lifecycle -------------------------------------------------------

    def start_runtime(self) -> None:
        """Boot the asyncio backend (loop thread, TCP servers, proxies).

        A no-op on the simulator backend, so harnesses can bracket both
        backends uniformly.  Idempotent.
        """
        if self.runtime_name != "asyncio":
            return
        self.sim.start()
        self.network.start()
        if self._deferred_crashes:
            self._schedule_crash_episodes(self._deferred_crashes)
            self._deferred_crashes = []

    def stop_runtime(self) -> None:
        """Tear the asyncio backend down (no-op on the simulator)."""
        if self.runtime_name != "asyncio":
            return
        self.network.stop()
        self.sim.stop()

    def __enter__(self) -> "FragmentedDatabase":
        self.start_runtime()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop_runtime()

    def call_on_runtime(self, fn: Callable[[], Any], timeout: float = 30.0) -> Any:
        """Run ``fn`` on the protocol thread and return its result.

        On the asyncio backend this marshals onto the loop thread (the
        HTTP front door submits transactions this way); on the simulator
        it simply calls ``fn`` — protocol state is single-threaded
        either way.
        """
        if self.runtime_name == "asyncio":
            return self.sim.invoke(fn, timeout=timeout)
        return fn()

    def wait_until(
        self, predicate: Callable[[], bool], timeout: float = 30.0
    ) -> bool:
        """Wait for ``predicate`` (evaluated race-free) to become true.

        On the simulator this quiesces first (virtual time is free);
        on the asyncio backend it polls in real time up to ``timeout``.
        """
        if self.runtime_name == "asyncio":
            return self.sim.wait_until(predicate, timeout=timeout)
        self.quiesce()
        return bool(predicate())

    def _schedule_crash_episodes(self, crashes: Iterable[CrashEpisode]) -> None:
        for crash in crashes:
            self.sim.schedule_at(
                crash.at,
                lambda c=crash: self._crash_episode(c),
                label=f"fault crash {crash.node}",
            )
            self.sim.schedule_at(
                crash.recover_at,
                lambda c=crash: self.recover_node(c.node),
                label=f"fault recover {crash.node}",
            )

    # -- node failure and recovery ----------------------------------------------

    def _crash_episode(self, crash: CrashEpisode) -> None:
        """Fire one scheduled crash from the fault plan.

        ``unless_agent_home`` episodes are vetoed at fire time if any
        agent currently lives on the node (agents may have moved since
        the plan was drawn) — the veto is traced, never silent.
        """
        if crash.unless_agent_home and any(
            agent.home_node == crash.node for agent in self.agents.values()
        ):
            self.metrics.inc("fault.crashes_skipped")
            if self.tracer.enabled:
                self.tracer.emit(taxonomy.FAULT_CRASH_SKIPPED, node=crash.node)
            return
        self.fail_node(crash.node)

    def _flap_revive_guard(self, a: str, b: str) -> bool:
        """Flap-up veto: crashes and partitions outrank flap revival.

        A partition that claimed the link mid-flap adopts it, so the
        scheduled heal (not the flap) brings it back; a crash-held link
        returns through node recovery.
        """
        if self._node_is_down(a) or self._node_is_down(b):
            return False
        if self.partitions.severs(a, b):
            self.partitions.adopt(a, b)
            return False
        return True

    def fail_node(self, name: str) -> None:
        """Crash-stop one node: volatile state lost, links down.

        In-flight traffic to the node is held by the network; the WAL
        survives for :meth:`recover_node`.
        """
        if name not in self.nodes:
            raise DesignError(f"unknown node {name!r}")
        node = self.nodes[name]
        if node.down:
            return
        for link in self.topology.links:
            if name in link.endpoints():
                link.up = False
        node.crash()
        self.metrics.inc("node.crashes")
        if self.tracer.enabled:
            self.tracer.emit(taxonomy.NODE_CRASH, node=name)
        self.network.topology_changed()

    def recover_node(self, name: str) -> None:
        """Bring a crashed node back: WAL replay + anti-entropy.

        Link state is *recomputed*, not replayed from a pre-crash
        snapshot: a link comes back up only if no currently-active
        partition episode severs it and its other endpoint is alive.  A
        link a partition formed while this node was down keeps severed
        (the partition manager adopts it and restores it at heal time).
        """
        if name not in self.nodes:
            raise DesignError(f"unknown node {name!r}")
        node = self.nodes[name]
        if not node.down:
            return
        for link in self.topology.links:
            if name not in link.endpoints():
                continue
            other = link.b if link.a == name else link.a
            if self.nodes[other].down:
                continue  # stays down until the peer recovers too
            if self.partitions.severs(link.a, link.b):
                link.up = False
                self.partitions.adopt(link.a, link.b)
            else:
                link.up = True
        self.metrics.inc("node.recoveries")
        if self.tracer.enabled:
            self.tracer.emit(taxonomy.NODE_RECOVER, node=name)
        node.recover()
        self.network.topology_changed()

    def hard_kill_node(self, name: str) -> None:
        """Kill one node at the *socket* level (asyncio backend).

        The paper-model :meth:`fail_node` marks links down, so the
        network holds outbound traffic for the dead node — clean, but
        simulated.  This variant models a killed process on a real
        network instead: the node's fault proxy blackholes its traffic
        (peers' frames are really lost), its database state crashes,
        and the topology is left *untouched* — senders keep sending,
        their frames die on the wire, and delivery through the outage
        is carried entirely by the reliable transport's retransmit
        budget plus the supervisor's failover.  Call on the protocol
        thread (``call_on_runtime``).
        """
        if name not in self.nodes:
            raise DesignError(f"unknown node {name!r}")
        node = self.nodes[name]
        if node.down:
            return
        proxy = getattr(self.network, "proxies", {}).get(name)
        if proxy is not None:
            proxy.kill()
        node.crash()
        self.metrics.inc("node.crashes")
        if self.tracer.enabled:
            self.tracer.emit(taxonomy.NODE_CRASH, node=name, hard=True)

    def hard_revive_node(self, name: str) -> None:
        """Undo :meth:`hard_kill_node`: unblackhole, then WAL recovery."""
        if name not in self.nodes:
            raise DesignError(f"unknown node {name!r}")
        node = self.nodes[name]
        proxy = getattr(self.network, "proxies", {}).get(name)
        if proxy is not None:
            proxy.revive()
        if not node.down:
            return
        self.metrics.inc("node.recoveries")
        if self.tracer.enabled:
            self.tracer.emit(taxonomy.NODE_RECOVER, node=name, hard=True)
        node.recover()

    # -- agent movement -----------------------------------------------------------

    def move_agent(
        self,
        agent_name: str,
        to_node: str,
        transport_delay: float = 0.0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """Move an agent (with all its tokens) using the active protocol."""
        if agent_name not in self.agents:
            raise DesignError(f"unknown agent {agent_name!r}")
        if to_node not in self.nodes:
            raise DesignError(f"unknown node {to_node!r}")
        for fragment in self.agents[agent_name].fragments:
            if not self.replicates(to_node, fragment):
                raise DesignError(
                    f"agent {agent_name!r} cannot move to {to_node!r}: it "
                    f"does not replicate fragment {fragment!r}"
                )
        self.metrics.inc("token.moves_requested")
        if self.tracer.enabled:
            self.tracer.emit(
                taxonomy.TOKEN_MOVE_REQUESTED,
                agent=agent_name,
                to=to_node,
                transport_delay=transport_delay,
            )
        self.movement.request_move(
            self, agent_name, to_node, transport_delay, on_done
        )

    # -- hooks ---------------------------------------------------------------------

    def on_install(self, fragment: str, hook: InstallHook) -> None:
        """Register a callback fired at each node after each install.

        The hook fires for the named fragment's quasi-transactions at
        *every* replica, including the origin — workload logic (e.g.
        the banking central office reacting to ACTIVITY updates)
        filters by node itself.
        """
        if fragment not in self.catalog:
            raise DesignError(f"unknown fragment {fragment!r}")
        self._install_hooks.append((fragment, hook))

    def on_corrective(self, hook: CorrectiveHook) -> None:
        """Register a Section 4.4.3 corrective-action hook."""
        self.corrective_hooks.append(hook)

    def fire_install_hooks(self, node: DatabaseNode, quasi: QuasiTransaction) -> None:
        """Invoke install hooks for one installed quasi-transaction."""
        self.recovery.note_install(node, quasi)
        for fragment, hook in self._install_hooks:
            if fragment == quasi.fragment:
                hook(node, quasi)

    # -- running --------------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)

    def quiesce(self) -> None:
        """Run the simulation until every queued event has fired."""
        self.sim.run()

    # -- correctness and metrics -------------------------------------------------------

    def state_hash(self) -> str:
        """SHA-256 over every replica's committed object versions.

        Timestamps are excluded: value, writer, and version number
        fully determine logical state, while commit *times* legitimately
        differ between a fault-free and a faulty run of the same
        workload (jitter shifts them without changing outcomes).  Two
        runs that converge to the same logical replica contents hash
        identically — the chaos harness's convergence check.
        """
        digest = hashlib.sha256()
        for name in sorted(self.nodes):
            store = self.nodes[name].store
            for obj in sorted(store.names):
                version = store.read_version(obj)
                digest.update(
                    repr(
                        (name, obj, version.value, version.writer,
                         version.version_no)
                    ).encode()
                )
        return digest.hexdigest()

    def mutual_consistency(self) -> MutualConsistencyReport:
        """Compare all replicas (meaningful after quiescence).

        Under partial replication only objects present at both replicas
        of a pair are compared — a node that does not replicate a
        fragment is not "inconsistent", it simply has no copy.
        """
        return check_mutual_consistency(
            self.nodes.values(), common_only=bool(self.replication)
        )

    def global_serializability(self) -> PropertyReport:
        """Acyclicity of the global serialization graph."""
        return check_global_serializability(self.recorder)

    def fragmentwise_serializability(self) -> FragmentwiseReport:
        """Properties 1 and 2 of Section 4.3."""
        return check_fragmentwise_serializability(self.recorder)

    def availability_stats(self) -> AvailabilityStats:
        """Request-outcome aggregate over all submitted transactions."""
        counts = {status: 0 for status in RequestStatus}
        latencies: list[float] = []
        for tracker in self.trackers:
            counts[tracker.status] += 1
            if tracker.succeeded and tracker.latency is not None:
                latencies.append(tracker.latency)
        return AvailabilityStats(
            submitted=len(self.trackers),
            committed=counts[RequestStatus.COMMITTED],
            rejected=counts[RequestStatus.REJECTED],
            aborted=counts[RequestStatus.ABORTED],
            timed_out=counts[RequestStatus.TIMED_OUT],
            pending=counts[RequestStatus.PENDING],
            mean_latency=(sum(latencies) / len(latencies)) if latencies else None,
        )

    @property
    def agent_fragments(self) -> dict[str, str]:
        """Agent name -> fragment, for agents controlling exactly one.

        The typing map consumed by the l.s.g. builder.  An agent that
        controls two or more fragments cannot be typed by this map (the
        paper's appendix conceptually splits such agents); rather than
        *silently* omitting it — which under-reports any
        serializability analysis built on the map — the omission is
        counted (``lsg.untyped_agents``) and trace-warned once per
        agent.  Use :meth:`agent_fragment_map` with ``strict=True`` to
        turn the omission into a :class:`DesignError`.
        """
        return self.agent_fragment_map(strict=False)

    def agent_fragment_map(self, strict: bool = False) -> dict[str, str]:
        """The l.s.g. typing map, with explicit multi-fragment handling.

        ``strict=True`` raises :class:`DesignError` if any agent
        controls two or more fragments (its transactions would be left
        untyped); ``strict=False`` emits a traced warning and a metric
        instead, once per agent.
        """
        mapping: dict[str, str] = {}
        ambiguous: list[str] = []
        for agent in self.agents.values():
            if len(agent.fragments) == 1:
                mapping[agent.name] = agent.fragments[0]
            elif len(agent.fragments) >= 2:
                ambiguous.append(agent.name)
        if ambiguous and strict:
            raise DesignError(
                f"agents {sorted(ambiguous)} control two or more fragments; "
                f"their transactions cannot be typed by the l.s.g. map"
            )
        for name in ambiguous:
            if name in self._warned_multi_fragment:
                continue
            self._warned_multi_fragment.add(name)
            self.metrics.inc("lsg.untyped_agents")
            if self.tracer.enabled:
                self.tracer.emit(
                    taxonomy.WARN_MULTI_FRAGMENT_AGENT,
                    agent=name,
                    fragments=sorted(self.agents[name].fragments),
                )
        return mapping
