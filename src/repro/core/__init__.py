"""The paper's primary contribution: fragments-and-agents databases.

Key classes:

* :class:`~repro.core.fragment.Fragment` /
  :class:`~repro.core.fragment.FragmentCatalog` — the disjoint division
  of the database (Section 3.1);
* :class:`~repro.core.token.Token` — one per fragment; its owner is the
  fragment's agent (Section 3.1);
* :class:`~repro.core.agent.Agent` — a user or node with exclusive
  update privilege over its fragments;
* :class:`~repro.core.transaction.TransactionSpec` — a submitted
  transaction (generator body + declared read/write sets);
* :class:`~repro.core.node.DatabaseNode` — one replica site: local
  strict-2PL execution, quasi-transaction installation in fragment
  order, update propagation (Section 3.2);
* :class:`~repro.core.system.FragmentedDatabase` — the whole simulated
  system, wiring nodes to the network, the control strategy
  (Section 4.1-4.3) and the agent-movement protocol (Section 4.4);
* :mod:`~repro.core.rag`, :mod:`~repro.core.gsg`,
  :mod:`~repro.core.properties` — the formal machinery: read-access
  graphs, serialization graphs, and the correctness-property checkers
  (global serializability, fragmentwise serializability, mutual
  consistency).
"""

from repro.core.agent import Agent
from repro.core.fragment import Fragment, FragmentCatalog
from repro.core.rag import ReadAccessGraph
from repro.core.token import Token
from repro.core.transaction import (
    QuasiTransaction,
    RequestStatus,
    RequestTracker,
    TransactionSpec,
    scripted_body,
)

__all__ = [
    "Agent",
    "Fragment",
    "FragmentCatalog",
    "QuasiTransaction",
    "ReadAccessGraph",
    "RequestStatus",
    "RequestTracker",
    "Token",
    "TransactionSpec",
    "scripted_body",
]
