"""Global and local serialization graphs (Definitions 8.2 and 8.3).

Built after the fact from the :class:`~repro.cc.history.HistoryRecorder`:
every read records exactly which version (writer transaction + version
number) it observed at its home node, and every fragment's update
stream induces a total version order per object, identical at all
replicas under FIFO installation.  The classic multiversion
serialization-graph construction then yields precisely the paper's
edges:

* ``Tj -> Ti`` when Ti read the version Tj wrote ("the update ... is
  installed in the copy at the home node of A(Fq) *before* Ti reads d");
* ``Ti -> Tk`` when Ti read a version older than Tk's write ("the
  update is installed *after* Ti reads d");
* ``Tj -> Tk`` along each object's version order (transactions of the
  same type are additionally totally ordered by their stream).

Acyclicity of the global graph is equivalent to global serializability
of the distributed schedule.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.cc.history import CommittedTxn, HistoryRecorder
from repro.core.rag import ReadAccessGraph
from repro.graphs import Digraph
from repro.storage.values import INITIAL_WRITER


def global_serialization_graph(recorder: HistoryRecorder) -> Digraph:
    """The g.s.g. of Definition 8.2 over the surviving transactions.

    Failover orphans — commits an epoch cut discarded before they
    propagated — are excluded, along with readers that observed an
    orphaned version: both belong to the cut-off branch of history,
    and their version numbers collide with the successor's re-minted
    slots.
    """
    graph = Digraph()
    surviving = [
        txn for txn in recorder.surviving
        if not recorder.observed_orphan(txn)
    ]
    known = {txn.txn_id for txn in surviving}
    for txn in surviving:
        graph.add_node(txn.txn_id)
    version_order = recorder.version_order()

    # ww edges along each object's version order (consecutive pairs
    # generate the same reachability as all pairs).
    for versions in version_order.values():
        for (_v1, txn1), (_v2, txn2) in zip(versions, versions[1:]):
            if txn1 != txn2:
                graph.add_edge(txn1, txn2)

    for txn in surviving:
        for read in txn.reads:
            # wr edge: the version's writer precedes the reader.
            if read.writer != INITIAL_WRITER and read.writer != txn.txn_id:
                if read.writer in known:
                    graph.add_edge(read.writer, txn.txn_id)
            # rw anti-dependency: the reader precedes the writer of the
            # next version (the chain of ww edges covers later ones).
            for version_no, writer in version_order.get(read.obj, ()):
                if version_no <= read.version_no:
                    continue
                if writer == txn.txn_id:
                    break  # own later write; covered by the ww chain
                graph.add_edge(txn.txn_id, writer)
                break
    return graph


def is_globally_serializable(
    recorder: HistoryRecorder,
) -> tuple[bool, list[str] | None]:
    """Acyclicity test plus a witness cycle for diagnostics."""
    graph = global_serialization_graph(recorder)
    cycle = graph.find_cycle()
    if cycle is None:
        return True, None
    return False, [str(node) for node in cycle]


def transaction_type(
    txn: CommittedTxn, agent_fragments: Mapping[str, str]
) -> str | None:
    """``tp(T)`` of Definition 8.1: the fragment whose agent initiated T.

    Update transactions carry their fragment; read-only transactions
    are typed through their initiating agent (None when the agent
    controls zero or several fragments — the appendix splits such
    agents conceptually, which our checkers mirror by leaving those
    transactions untyped).
    """
    if txn.fragment is not None:
        return txn.fragment
    return agent_fragments.get(txn.agent)


def local_serialization_graph(
    recorder: HistoryRecorder,
    rag: ReadAccessGraph,
    fragment: str,
    home_node: str,
    agent_fragments: Mapping[str, str],
) -> Digraph:
    """The l.s.g. for ``fragment`` of Definition 8.3.

    Vertices: transactions of type ``fragment`` plus update
    transactions of every fragment the read-access graph lets
    ``fragment`` read from.  Edge rules (i)-(iv) of the definition,
    with rule (iii)'s install order taken from the recorded install
    sequence at ``home_node``.
    """
    graph = Digraph()
    readable = set(rag.reads_from(fragment))
    local: list[CommittedTxn] = []
    nonlocal_by_type: dict[str, list[CommittedTxn]] = {f: [] for f in readable}
    for txn in recorder.surviving:
        if recorder.observed_orphan(txn):
            continue  # read from the branch a failover cut discarded
        txn_type = transaction_type(txn, agent_fragments)
        if txn_type == fragment:
            local.append(txn)
            graph.add_node(txn.txn_id)
        elif txn.fragment in readable and txn.is_update:
            nonlocal_by_type[txn.fragment].append(txn)
            graph.add_node(txn.txn_id)

    # (i) local transactions: conflict edges in local commit order.
    _add_conflict_edges(graph, sorted(local, key=lambda t: t.commit_time))

    # (iii) non-local transactions of one type: install order at the
    # home node of A(fragment).
    install_position = {
        record.txn_id: index
        for index, record in enumerate(recorder.installs_at(home_node))
    }
    for siblings in nonlocal_by_type.values():
        ordered = sorted(
            siblings,
            key=lambda t: install_position.get(t.txn_id, len(install_position)),
        )
        for first, second in zip(ordered, ordered[1:]):
            graph.add_edge(first.txn_id, second.txn_id)

    # (ii) local vs non-local: version-based edges, restricted to pairs
    # present in this graph.
    version_order = recorder.version_order()
    nonlocal_ids = {
        t.txn_id for siblings in nonlocal_by_type.values() for t in siblings
    }
    for txn in local:
        for read in txn.reads:
            if read.writer in nonlocal_ids:
                graph.add_edge(read.writer, txn.txn_id)
            for version_no, writer in version_order.get(read.obj, ()):
                if version_no <= read.version_no:
                    continue
                if writer in nonlocal_ids:
                    graph.add_edge(txn.txn_id, writer)
                break
    # (iv) non-local transactions of different types: no edges.
    return graph


def _add_conflict_edges(graph: Digraph, ordered: list[CommittedTxn]) -> None:
    """Standard dependency rules for a serially committed local stream."""
    for i, first in enumerate(ordered):
        first_writes = {w.obj for w in first.writes}
        first_reads = {r.obj for r in first.reads}
        for second in ordered[i + 1 :]:
            second_writes = {w.obj for w in second.writes}
            second_reads = {r.obj for r in second.reads}
            conflict = (
                first_writes & second_writes
                or first_writes & second_reads
                or first_reads & second_writes
            )
            if conflict:
                graph.add_edge(first.txn_id, second.txn_id)
