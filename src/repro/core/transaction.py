"""Transaction specifications, request trackers, quasi-transactions.

Update and read-only transactions are submitted as
:class:`TransactionSpec` objects; the system returns a
:class:`RequestTracker` whose terminal status is the unit of the
availability metrics (a ``REJECTED`` or ``TIMED_OUT`` request *is* the
paper's "customer goes home empty-handed").

A committed update transaction's effects travel as a
:class:`QuasiTransaction` — "a series of unconditional updates ...
reflecting the desired effects" (Section 3.2) — with the version
numbers and timestamps the movement protocols of Section 4.4 need.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.cc.ops import Read, Write
from repro.obs.lineage import SpanContext
from repro.storage.values import Version

Body = Callable[[Any], Generator[Any, Any, Any]]


@dataclass
class TransactionSpec:
    """A transaction to be initiated by an agent.

    ``body`` is a generator function (see :mod:`repro.cc.ops`).
    ``reads`` declares the objects the body may read *outside* the
    written fragment; it is required by the Section 4.1 strategy (which
    must acquire remote locks up front) and by the Section 4.2 strategy
    (which validates the read-access graph), and is advisory otherwise.
    ``writes`` declares the objects the body may write; the initiation
    requirement is additionally enforced dynamically against the actual
    write set.  ``update`` distinguishes update transactions (initiated
    only by the fragment's agent) from read-only ones (initiated by any
    agent).
    """

    txn_id: str
    agent: str
    body: Body
    ctx: Any = None
    update: bool = True
    reads: Sequence[str] = ()
    writes: Sequence[str] = ()
    meta: dict[str, Any] = field(default_factory=dict)


class RequestStatus(enum.Enum):
    """Terminal (and one transient) status of a submitted request."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"  # local scheduler abort (deadlock, body abort)
    REJECTED = "rejected"  # strategy refused: availability loss
    TIMED_OUT = "timed_out"  # gave up waiting (e.g. remote locks)


@dataclass
class RequestTracker:
    """Lifecycle record of one submitted transaction."""

    spec: TransactionSpec
    submit_time: float
    node: str
    status: RequestStatus = RequestStatus.PENDING
    finish_time: float | None = None
    reason: str = ""
    result: Any = None
    on_done: Callable[["RequestTracker"], None] | None = None
    #: System-installed hook fired on the terminal transition, before
    #: ``on_done`` — the observability layer counts and traces every
    #: outcome here regardless of which subsystem finished the request.
    observer: Callable[["RequestTracker"], None] | None = None

    def finish(
        self,
        status: RequestStatus,
        time: float,
        reason: str = "",
        result: Any = None,
    ) -> None:
        """Transition to a terminal status (exactly once)."""
        if self.status is not RequestStatus.PENDING:
            return
        self.status = status
        self.finish_time = time
        self.reason = reason
        self.result = result
        if self.observer is not None:
            self.observer(self)
        if self.on_done is not None:
            self.on_done(self)

    @property
    def latency(self) -> float | None:
        """Submit-to-finish latency, None while pending."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def succeeded(self) -> bool:
        """True iff the request committed."""
        return self.status is RequestStatus.COMMITTED


@dataclass
class QuasiTransaction:
    """The broadcast form of a committed update transaction.

    ``writes`` carries full :class:`Version` objects so receivers
    install exactly what the origin installed.  ``stream_seq`` orders
    the quasi-transaction within its fragment's update stream and
    ``epoch`` counts completed agent moves for that fragment (the
    Section 4.4.3 protocol distinguishes pre-move "orphans" from the
    new home node's stream by epoch).
    """

    source_txn: str
    fragment: str
    agent: str
    origin_node: str
    stream_seq: int
    epoch: int
    writes: list[tuple[str, Version]]
    origin_time: float
    meta: dict[str, Any] = field(default_factory=dict)
    #: Causal lineage span, stamped at commit *only while tracing is
    #: enabled* (None otherwise — tracing off allocates nothing).  The
    #: batcher fills in batch/broadcast identity as the quasi travels.
    span: SpanContext | None = None

    @property
    def objects(self) -> list[str]:
        """Names of the objects this quasi-transaction writes."""
        return [obj for obj, _version in self.writes]


def scripted_body(actions: Sequence[tuple], collect: list | None = None) -> Body:
    """Build a body from a literal action list.

    Each action is ``('r', obj)`` or ``('w', obj, value)`` — the
    notation of the paper's Section 4.3 examples.  Values read are
    appended to ``collect`` (if given) so scripted experiments can
    assert what a transaction observed.

    >>> body = scripted_body([('r', 'c'), ('w', 'a', 1)])
    """

    def body(_ctx: Any) -> Generator[Any, Any, Any]:
        for action in actions:
            if action[0] == "r":
                value = yield Read(action[1])
                if collect is not None:
                    collect.append((action[1], value))
            elif action[0] == "w":
                yield Write(action[1], action[2])
            else:
                raise ValueError(f"unknown scripted action {action!r}")

    return body
