"""Fragments: the disjoint logical division of the database.

Section 3.1: "The entire database is logically divided into *k*
non-overlapping subsets called fragments."  Membership is by explicit
object name or by name prefix — prefixes cover fragments whose object
population grows at run time (e.g. a new record appended to a bank
account's ACTIVITY fragment).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DesignError


class Fragment:
    """One fragment: a named set of data objects.

    ``objects`` lists concrete object names; ``prefixes`` are name
    prefixes such that any object ``p + suffix`` belongs to the
    fragment.  A fragment may use either or both.
    """

    def __init__(
        self,
        name: str,
        objects: Iterable[str] = (),
        prefixes: Iterable[str] = (),
    ) -> None:
        if not name:
            raise DesignError("fragment name must be non-empty")
        self.name = name
        self.objects = set(objects)
        self.prefixes = tuple(prefixes)
        if not self.objects and not self.prefixes:
            raise DesignError(f"fragment {name!r} has no objects and no prefixes")

    def contains(self, obj: str) -> bool:
        """True if ``obj`` belongs to this fragment."""
        if obj in self.objects:
            return True
        return any(obj.startswith(prefix) for prefix in self.prefixes)

    def __repr__(self) -> str:
        return f"Fragment({self.name!r})"


class FragmentCatalog:
    """All fragments of one database, with disjointness enforced.

    Lookup of an object's fragment first tries exact membership, then
    prefix membership.  Prefix overlap between two fragments is a
    design error caught at registration time.
    """

    def __init__(self) -> None:
        self._fragments: dict[str, Fragment] = {}
        self._by_object: dict[str, str] = {}

    def add(self, fragment: Fragment) -> Fragment:
        """Register a fragment; raises :class:`DesignError` on overlap."""
        if fragment.name in self._fragments:
            raise DesignError(f"duplicate fragment {fragment.name!r}")
        for obj in fragment.objects:
            owner = self.fragment_of(obj, strict=False)
            if owner is not None:
                raise DesignError(
                    f"object {obj!r} already in fragment {owner!r}; "
                    f"fragments must not overlap"
                )
        for prefix in fragment.prefixes:
            for other in self._fragments.values():
                for other_prefix in other.prefixes:
                    if prefix.startswith(other_prefix) or other_prefix.startswith(
                        prefix
                    ):
                        raise DesignError(
                            f"prefix {prefix!r} of fragment {fragment.name!r} "
                            f"overlaps prefix {other_prefix!r} of "
                            f"{other.name!r}"
                        )
        self._fragments[fragment.name] = fragment
        for obj in fragment.objects:
            self._by_object[obj] = fragment.name
        return fragment

    def get(self, name: str) -> Fragment:
        """Fragment by name; raises :class:`DesignError` if unknown."""
        try:
            return self._fragments[name]
        except KeyError:
            raise DesignError(f"unknown fragment {name!r}") from None

    def fragment_of(self, obj: str, strict: bool = True) -> str | None:
        """Name of the fragment containing ``obj``.

        With ``strict=True`` (the default) an unassigned object raises;
        with ``strict=False`` it returns None.
        """
        name = self._by_object.get(obj)
        if name is not None:
            return name
        for fragment in self._fragments.values():
            if any(obj.startswith(prefix) for prefix in fragment.prefixes):
                return fragment.name
        if strict:
            raise DesignError(f"object {obj!r} belongs to no fragment")
        return None

    @property
    def names(self) -> list[str]:
        """All fragment names, in registration order."""
        return list(self._fragments)

    def __contains__(self, name: str) -> bool:
        return name in self._fragments

    def __iter__(self):
        return iter(self._fragments.values())

    def __len__(self) -> int:
        return len(self._fragments)
