"""Exception hierarchy for the fragments-and-agents reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, or running a simulator
    that has already been stopped.
    """


class NetworkError(ReproError):
    """A network-layer invariant was violated.

    Examples: sending from/to an unknown node, or configuring a link
    between nodes that are not part of the topology.
    """


class DesignError(ReproError):
    """The database design violates a framework precondition.

    Examples: overlapping fragments, a transaction whose declared read
    set makes the read-access graph elementarily cyclic under the
    :mod:`repro.core.control.acyclic` strategy, or an unknown fragment.
    """


class InitiationError(ReproError):
    """The initiation requirement of Section 3.2 was violated.

    An update transaction may only be initiated by the agent of the
    fragment that contains *all* of the objects it writes, and only at
    that agent's current home node.
    """


class TokenError(ReproError):
    """Token ownership rules were violated.

    Examples: two owners for one token, moving a token that is mid-move,
    or updating a fragment without holding its token.
    """


class TransactionAborted(ReproError):
    """A transaction was aborted by the local scheduler.

    Carries the reason (deadlock victim, explicit abort from the
    transaction body, or unavailability of a required remote lock).
    """

    def __init__(self, txn_id: str, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class Unavailable(ReproError):
    """A request could not be serviced under the active control strategy.

    This is the measurable "loss of availability" event of the paper:
    e.g. a remote read lock cannot be acquired because the lock holder's
    partition is unreachable, or a mutual-exclusion baseline rejects an
    update outside the token partition.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ConsistencyViolation(ReproError):
    """An integrity check failed (used by checkers, never silently)."""
