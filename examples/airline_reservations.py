"""The Section 4.3 airline: always-available requests, no overbooking.

Customers enter reservation requests into their own fragments at any
time ("regardless of the current status of the communication network");
each flight's agent periodically scans the requests and grants them
unless that would overbook — a single-fragment decision, so the
no-overbooking invariant cannot be violated even though the global
schedule is only fragmentwise serializable.

Run:  python examples/airline_reservations.py
"""

from repro import FragmentedDatabase
from repro.workloads import AirlineWorkload


def main() -> None:
    db = FragmentedDatabase(["N1", "N2", "N3", "N4"])
    airline = AirlineWorkload(
        db,
        customer_homes={"carol": "N1", "dave": "N2"},
        flight_homes={"PU101": "N3", "PU202": "N4"},
        capacity=3,
    )
    db.finalize()
    print("flights PU101 (cap 3) @N3, PU202 (cap 3) @N4")
    print("customers carol@N1, dave@N2")
    print("read-access graph (Figure 4.3.3) elementarily acyclic:",
          db.rag.is_elementarily_acyclic())

    print("\n-- total network partition: every node isolated --")
    db.partitions.partition_now([["N1"], ["N2"], ["N3"], ["N4"]])
    r1 = airline.request("carol", "PU101", 2)
    r2 = airline.request("dave", "PU101", 2)
    r3 = airline.request("dave", "PU202", 1)
    db.run(until=10)
    print(f"carol requests 2 seats on PU101: {r1.status.value}")
    print(f"dave  requests 2 seats on PU101: {r2.status.value}")
    print(f"dave  requests 1 seat  on PU202: {r3.status.value}")
    print("(all accepted — requests never need the network)")

    print("\n-- network heals; flight agents scan --")
    db.partitions.heal_now()
    db.quiesce()
    airline.scan_flight("PU101")
    airline.scan_flight("PU202")
    db.quiesce()

    reserved_101 = airline.seats_reserved("PU101", "N3")
    reserved_202 = airline.seats_reserved("PU202", "N4")
    print(f"PU101: {reserved_101}/3 seats reserved "
          f"(2+2 requested; one request denied — no overbooking)")
    print(f"PU202: {reserved_202}/3 seats reserved")
    print(f"grants: {airline.stats.granted}, "
          f"denied for overbooking: {airline.stats.denied_overbooking}")

    print("\n-- correctness --")
    violations = db.predicates.evaluate(db.nodes["N3"].store)
    print(f"no-overbooking (single-fragment predicate) violations: "
          f"{violations.single}")
    fw = db.fragmentwise_serializability()
    print(f"fragmentwise serializability: "
          f"{'holds' if fw.ok else 'VIOLATED'}")
    gs = db.global_serializability()
    print(f"global serializability this run: "
          f"{'held' if gs.ok else 'violated (allowed under Section 4.3)'}")
    print(f"mutual consistency: {db.mutual_consistency()}")


if __name__ == "__main__":
    main()
