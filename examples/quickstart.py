"""Quickstart: a two-node fragments-and-agents database.

Builds the smallest interesting system — one fragment, one agent, two
replicas — runs an update through a network partition, and shows the
correctness checkers at work.

Run:  python examples/quickstart.py
"""

from repro import FragmentedDatabase
from repro.cc import Read, Write


def main() -> None:
    # Two nodes, fully replicated; defaults: unrestricted reads
    # (Section 4.3), fixed agents, 1-tick link latency.
    db = FragmentedDatabase(["A", "B"])

    # One agent (the bank's central office) owning one fragment.
    db.add_agent("central", home_node="A")
    db.add_fragment("BALANCES", agent="central", objects=["bal:1"])
    db.load({"bal:1": 300})
    db.finalize()

    # Transaction bodies are generators yielding Read/Write operations.
    def deposit(_ctx):
        balance = yield Read("bal:1")
        yield Write("bal:1", balance + 100)
        return balance + 100

    print("== connected operation ==")
    tracker = db.submit_update("central", deposit, writes=["bal:1"])
    db.quiesce()
    print(f"deposit: {tracker.status.value}, new balance {tracker.result}")
    print(f"replica A: {db.nodes['A'].store.read('bal:1')}")
    print(f"replica B: {db.nodes['B'].store.read('bal:1')}")

    print("\n== the same, through a partition ==")
    db.partitions.partition_now([["A"], ["B"]])
    tracker = db.submit_update("central", deposit, writes=["bal:1"])
    db.run(until=db.sim.now + 10)
    print(f"deposit during partition: {tracker.status.value}")
    print(f"replica A: {db.nodes['A'].store.read('bal:1')} (agent's node)")
    print(f"replica B: {db.nodes['B'].store.read('bal:1')} (severed)")

    db.partitions.heal_now()
    db.quiesce()
    print("after heal:")
    print(f"replica B: {db.nodes['B'].store.read('bal:1')} (caught up)")

    print("\n== correctness checkers ==")
    print(f"mutual consistency:          {db.mutual_consistency()}")
    print(f"global serializability:      {db.global_serializability()}")
    fw = db.fragmentwise_serializability()
    print(f"fragmentwise serializability: "
          f"{'holds' if fw.ok else 'VIOLATED'}")
    stats = db.availability_stats()
    print(f"availability: {stats.committed}/{stats.submitted} = "
          f"{stats.availability:.0%}")


if __name__ == "__main__":
    main()
