"""The paper's Section 2 banking walkthrough, executable.

A joint account with $300; its two owners withdraw $200 each at
different nodes while the network is partitioned.  Both withdrawals are
granted (that is the availability the fragments-and-agents design
buys); after the heal, the central office — the only agent allowed to
change BALANCES — discovers the overdraft, assesses the fine exactly
once, and every replica converges.

Run:  python examples/banking_partition.py
"""

from repro import FragmentedDatabase
from repro.workloads import BankingWorkload


def main() -> None:
    db = FragmentedDatabase(["A", "B"])
    bank = BankingWorkload(
        db,
        accounts={"00001": 300.0},
        central_node="A",
        owners={"00001": [("alice", "A"), ("bob", "B")]},
        overdraft_fine=25.0,
        view_mode="balance",
    )
    db.finalize()

    print("account 00001: balance $300, owners alice@A and bob@B")
    print("\n-- the link between A and B is severed --")
    db.partitions.partition_now([["A"], ["B"]])

    at_a = bank.withdraw("00001", 200.0, owner=0)
    at_b = bank.withdraw("00001", 200.0, owner=1)
    db.run(until=20)
    print(f"alice@A withdraws $200: {at_a.result[0]}")
    print(f"bob@B   withdraws $200: {at_b.result[0]}")
    print(f"balance as seen at A: ${bank.balance_at('00001', 'A'):.0f} "
          f"(alice's withdrawal already folded by the central office)")
    print(f"balance as seen at B: ${bank.balance_at('00001', 'B'):.0f} "
          f"(stale replica)")
    print(f"overdraft letters so far: {len(bank.stats.letters)}")

    print("\n-- the partition is repaired --")
    db.partitions.heal_now()
    db.quiesce()

    for letter in bank.stats.letters:
        print(f"LETTER: account {letter.account} overdrawn to "
              f"${letter.balance_before_fine:.0f}; fine "
              f"${letter.fine:.0f} assessed at t={letter.time:.1f}")
    print(f"final balance at A: ${bank.balance_at('00001', 'A'):.0f}")
    print(f"final balance at B: ${bank.balance_at('00001', 'B'):.0f}")

    print("\n-- correctness --")
    print(f"mutual consistency: {db.mutual_consistency()}")
    fw = db.fragmentwise_serializability()
    print(f"fragmentwise serializability: "
          f"{'holds' if fw.ok else 'VIOLATED'}")
    balance_writers = {
        txn.node
        for txn in db.recorder.committed
        if any(w.obj.startswith("bal:") for w in txn.writes)
    }
    print(f"nodes that ever wrote BALANCES: {sorted(balance_writers)} "
          f"(the decision process is centralized — no chaos)")


if __name__ == "__main__":
    main()
