"""The Section 4.2 warehouse: global serializability with no read locks.

Two warehouses and a central purchasing office.  The read-access graph
is the star of Figure 4.2.1 — elementarily acyclic — so the Section 4.2
strategy validates the design and the theorem guarantees a globally
serializable execution with *zero* read synchronization, even while a
partition separates a warehouse from headquarters.

Run:  python examples/warehouse_inventory.py
"""

from repro import AcyclicReadsStrategy, FragmentedDatabase
from repro.workloads import WarehouseWorkload


def main() -> None:
    db = FragmentedDatabase(
        ["W1", "W2", "HQ"], strategy=AcyclicReadsStrategy()
    )
    company = WarehouseWorkload(
        db,
        warehouse_nodes={"west": "W1", "east": "W2"},
        central_node="HQ",
        products=["widgets", "gizmos"],
        initial_stock=100,
        target_stock=100,
    )
    db.finalize()  # validates elementary acyclicity (Figure 4.2.1)
    print("read-access graph edges:", db.rag.edges)
    print("elementarily acyclic:", db.rag.is_elementarily_acyclic())

    print("\n-- warehouse 'west' is cut off from HQ and 'east' --")
    db.partitions.partition_now([["W1"], ["W2", "HQ"]])

    sale1 = company.sale("west", "widgets", 30)
    sale2 = company.sale("east", "widgets", 45)
    ship = company.shipment("west", "gizmos", 20)
    scan = company.scan_and_order()
    db.run(until=20)
    print(f"west sells 30 widgets:   {sale1.status.value}")
    print(f"east sells 45 widgets:   {sale2.status.value}")
    print(f"west receives 20 gizmos: {ship.status.value}")
    print(f"HQ purchasing scan:      {scan.status.value} "
          f"(sees a consistent, possibly slightly old, snapshot)")
    print(f"HQ's widget order so far: "
          f"{db.nodes['HQ'].store.read('c:widgets:to_order')} "
          f"(west's partition-era sales not yet visible)")

    print("\n-- partition repaired; HQ re-scans --")
    db.partitions.heal_now()
    db.quiesce()
    company.scan_and_order()
    db.quiesce()
    print(f"HQ's widget order now: "
          f"{db.nodes['HQ'].store.read('c:widgets:to_order')} "
          f"(= 30 + 45 sold)")

    print("\n-- the cross-warehouse peek (sanctioned RAG violation) --")
    peek = company.peek_other_warehouse("west", "east", "widgets")
    db.quiesce()
    print(f"west peeks at east's widget stock: {peek.result} "
          f"(read-only, allowed despite the graph)")

    print("\n-- correctness --")
    print(f"globally serializable: {db.global_serializability()}")
    print(f"mutual consistency:    {db.mutual_consistency()}")
    violations = db.predicates.evaluate(db.nodes["HQ"].store)
    print(f"stock-conservation violations: {violations.total}")
    stats = db.availability_stats()
    print(f"availability: {stats.committed}/{stats.submitted}")


if __name__ == "__main__":
    main()
