"""The paper's conclusion, running: one system, three correctness tiers.

"Hence it is possible to guarantee mutual consistency for some
fragments ..., fragmentwise serializability for a set of other
fragments ..., and conventional serializability within another group.
This gives us even greater flexibility in tailoring a system to the
correctness and availability requirements of the users."

The system below mixes all three on one database:

* ``LEDGER`` — the general ledger, guarded by Section 4.1 remote read
  locks: conventional serializability, pays with availability;
* ``ORDERS`` — order intake, Section 4.3 unrestricted: always
  available, fragmentwise serializability;
* ``AUDIT`` — the audit trail, Section 4.2 with a forest-shaped read
  pattern: globally serializable *and* always available (the sweet
  spot, when the design permits it).

Run:  python examples/combined_strategies.py
"""

from repro import (
    AcyclicReadsStrategy,
    CombinedStrategy,
    FragmentedDatabase,
    ReadLocksStrategy,
    UnrestrictedReadsStrategy,
)
from repro.cc.ops import Read, Write


def main() -> None:
    strategy = CombinedStrategy(
        default=UnrestrictedReadsStrategy(),
        per_fragment={
            "LEDGER": ReadLocksStrategy(lock_timeout=30.0, retry_interval=2.0),
            "AUDIT": AcyclicReadsStrategy(),
        },
    )
    db = FragmentedDatabase(["HQ", "BRANCH", "ARCHIVE"], strategy=strategy)
    db.add_agent("cfo", home_node="HQ")
    db.add_agent("sales", home_node="BRANCH")
    db.add_agent("auditor", home_node="ARCHIVE")
    db.add_fragment("LEDGER", agent="cfo", objects=["ledger:total"])
    db.add_fragment("ORDERS", agent="sales", objects=["orders:count"])
    db.add_fragment("AUDIT", agent="auditor", objects=["audit:entries"])
    db.load({"ledger:total": 0, "orders:count": 0, "audit:entries": 0})
    # AUDIT's transactions read ORDERS — a single edge, a forest.
    db.declare_reads("AUDIT", fragments=["ORDERS"])
    # LEDGER's transactions also read ORDERS (guarded by remote locks).
    db.declare_reads("LEDGER", fragments=["ORDERS"])
    db.finalize()

    def take_order(_ctx):
        count = yield Read("orders:count")
        yield Write("orders:count", count + 1)

    def post_ledger(_ctx):
        orders = yield Read("orders:count")
        yield Write("ledger:total", orders * 100)

    def audit_orders(_ctx):
        orders = yield Read("orders:count")
        entries = yield Read("audit:entries")
        yield Write("audit:entries", entries + orders)

    print("-- connected: all three tiers operate --")
    for _ in range(3):
        db.submit_update("sales", take_order,
                         reads=["orders:count"], writes=["orders:count"])
    db.quiesce()
    ledger = db.submit_update("cfo", post_ledger,
                              reads=["orders:count"],
                              writes=["ledger:total"])
    audit = db.submit_update("auditor", audit_orders,
                             reads=["orders:count", "audit:entries"],
                             writes=["audit:entries"])
    db.quiesce()
    print(f"orders taken: 3; ledger posting: {ledger.status.value}; "
          f"audit: {audit.status.value}")

    print("\n-- BRANCH is severed from HQ and ARCHIVE --")
    db.partitions.partition_now([["BRANCH"], ["HQ", "ARCHIVE"]])
    order = db.submit_update("sales", take_order,
                             reads=["orders:count"], writes=["orders:count"])
    ledger = db.submit_update("cfo", post_ledger,
                              reads=["orders:count"],
                              writes=["ledger:total"])
    audit = db.submit_update("auditor", audit_orders,
                             reads=["orders:count", "audit:entries"],
                             writes=["audit:entries"])
    db.run(until=db.sim.now + 50)
    print(f"ORDERS (4.3, unrestricted):  {order.status.value}  "
          f"(intake never stops)")
    print(f"LEDGER (4.1, read locks):    {ledger.status.value}  "
          f"(needs BRANCH's lock site — denied)")
    print(f"AUDIT  (4.2, acyclic):       {audit.status.value}  "
          f"(no locks needed; reads its local replica)")

    db.partitions.heal_now()
    db.quiesce()
    print("\n-- after the heal --")
    print(f"mutual consistency:          {db.mutual_consistency()}")
    fw = db.fragmentwise_serializability()
    print(f"fragmentwise serializability: "
          f"{'holds' if fw.ok else 'VIOLATED'}")
    print(f"global serializability:       {db.global_serializability()}")
    stats = db.availability_stats()
    print(f"availability overall: {stats.committed}/{stats.submitted}")


if __name__ == "__main__":
    main()
