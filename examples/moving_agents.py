"""The Section 4.4 movement protocols, side by side.

One scripted hazard — the agent's last pre-move transaction T1 is still
trapped behind a partition when the agent resumes at its new home and
runs T2 on the same object — replayed under every protocol, showing the
paper's guarantee matrix emerge from the measurements.

Run:  python examples/moving_agents.py
"""

from repro import (
    CorrectiveMoveProtocol,
    FragmentedDatabase,
    InstantMoveProtocol,
    MajorityCommitProtocol,
    MoveWithDataProtocol,
    MoveWithSeqnoProtocol,
)
from repro.analysis.report import format_table
from repro.cc.ops import Write


def run_protocol(protocol):
    db = FragmentedDatabase(["X", "Y", "Z"], movement=protocol)
    db.add_agent("courier", home_node="X")
    db.add_fragment("PARCELS", agent="courier", objects=["manifest"])
    db.load({"manifest": "empty"})
    db.finalize()

    def set_manifest(value):
        def body(_ctx):
            yield Write("manifest", value)

        return body

    results = {}
    db.sim.schedule_at(
        1, lambda: db.partitions.partition_now([["X"], ["Y", "Z"]])
    )
    db.sim.schedule_at(5, lambda: results.update(
        t1=db.submit_update("courier", set_manifest("loaded-at-X"),
                            writes=["manifest"], txn_id="T1")))
    db.sim.schedule_at(
        10, lambda: db.move_agent("courier", "Y", transport_delay=2)
    )
    db.sim.schedule_at(25, lambda: results.update(
        t2=db.submit_update("courier", set_manifest("updated-at-Y"),
                            writes=["manifest"], txn_id="T2")))
    db.sim.schedule_at(60, db.partitions.heal_now)
    db.quiesce()

    finals = {
        name: node.store.read("manifest") for name, node in db.nodes.items()
    }
    return {
        "protocol": protocol.name,
        "T1": results["t1"].status.value,
        "T2": results["t2"].status.value,
        "T2 done at": (
            f"t={results['t2'].finish_time:.0f}"
            if results["t2"].finish_time is not None
            else "-"
        ),
        "mutual consistency": db.mutual_consistency().consistent,
        "fragmentwise": db.fragmentwise_serializability().ok,
        "replicas agree on": (
            finals["X"] if len(set(finals.values())) == 1 else str(finals)
        ),
    }


def main() -> None:
    print(__doc__)
    rows = [
        run_protocol(InstantMoveProtocol()),
        run_protocol(MajorityCommitProtocol()),
        run_protocol(MoveWithDataProtocol()),
        run_protocol(MoveWithSeqnoProtocol()),
        run_protocol(CorrectiveMoveProtocol()),
    ]
    headers = list(rows[0])
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    print(
        "\nReading the table against the paper's Section 4.4:\n"
        "  none        — T2 overwritten by the late T1 at some replicas:\n"
        "                mutual consistency can break (here: divergence\n"
        "                or a lucky overwrite, but fragmentwise is gone);\n"
        "  majority    — T1 was rejected outright (X was a minority):\n"
        "                safety bought with availability (4.4.1);\n"
        "  with-data   — the token carried the fragment: everything\n"
        "                preserved, no waiting (4.4.2A);\n"
        "  with-seqno  — T2 waited for T1 to arrive after the heal:\n"
        "                note its late finish time (4.4.2B);\n"
        "  corrective  — T2 ran immediately; the orphaned T1 was\n"
        "                stripped (already overwritten) and dropped:\n"
        "                consistency converges, fragmentwise is\n"
        "                sacrificed (4.4.3)."
    )


if __name__ == "__main__":
    main()
