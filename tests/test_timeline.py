"""Tests for the telemetry timeline sampler and recurring events."""

import json

import pytest

from repro import FragmentedDatabase
from repro.cc.ops import Read, Write
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineSampler, load_jsonl
from repro.sim.simulator import SimulationError, Simulator


def bump(obj="x"):
    def body(_ctx):
        value = yield Read(obj)
        yield Write(obj, value + 1)

    return body


def make_db(nodes=("A", "B", "C")):
    db = FragmentedDatabase(list(nodes))
    db.add_agent("ag", home_node=nodes[0])
    db.add_fragment("F", agent="ag", objects=["x"])
    db.load({"x": 0})
    db.finalize()
    return db


class TestScheduleRecurring:
    def test_fires_at_every_interval_up_to_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_recurring(5.0, lambda: fired.append(sim.now), until=22.0)
        sim.run()
        assert fired == [5.0, 10.0, 15.0, 20.0]

    def test_horizon_bound_lets_quiesce_drain(self):
        sim = Simulator()
        sim.schedule_recurring(1.0, lambda: None, until=10.0)
        sim.run()  # would hang forever if the chain re-armed unbounded
        assert sim.now == 10.0

    def test_rejects_nonpositive_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_recurring(0.0, lambda: None, until=10.0)

    def test_rejects_horizon_before_first_firing(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_recurring(5.0, lambda: None, until=3.0)


class TestTimelineSampler:
    def test_registers_itself_on_the_registry(self):
        registry = MetricsRegistry()
        sampler = TimelineSampler(registry)
        assert registry.timeline is sampler

    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError):
            TimelineSampler(MetricsRegistry(), tick=0.0)

    def test_counter_series_carries_value_and_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        sampler = TimelineSampler(registry, tick=1.0)
        counter.inc(3)
        sampler.sample(1.0)
        counter.inc(2)
        sampler.sample(2.0)
        assert sampler.counter_series("c") == [(1.0, 3, 3), (2.0, 5, 2)]
        assert sampler.rate_series("c") == [(1.0, 3.0), (2.0, 2.0)]

    def test_gauge_series_skips_non_numeric_values(self):
        registry = MetricsRegistry()
        registry.gauge("num", lambda: 4)
        registry.gauge("text", lambda: "hello")
        registry.gauge("flag", lambda: True)
        sampler = TimelineSampler(registry, tick=1.0)
        sampler.sample(1.0)
        assert sampler.gauge_series("num") == [(1.0, 4.0)]
        assert sampler.gauge_series("text") == []
        assert sampler.gauge_series("flag") == []

    def test_histogram_series_summaries_and_count_delta(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        sampler = TimelineSampler(registry, tick=1.0)
        hist.observe(10.0)
        hist.observe(20.0)
        sampler.sample(1.0)
        hist.observe(30.0)
        sampler.sample(2.0)
        series = sampler.histogram_series("h")
        assert [record["t"] for record in series] == [1.0, 2.0]
        assert series[0]["count"] == 2
        assert series[0]["count_delta"] == 2
        assert series[1]["count"] == 3
        assert series[1]["count_delta"] == 1
        assert series[1]["max"] == 30.0

    def test_retention_bounds_each_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        sampler = TimelineSampler(registry, tick=1.0, retention=3)
        for tick in range(10):
            counter.inc()
            sampler.sample(float(tick))
        series = sampler.counter_series("c")
        assert len(series) == 3
        assert [t for t, _v, _d in series] == [7.0, 8.0, 9.0]

    def test_driven_by_simulator_events(self):
        db = make_db()
        sampler = TimelineSampler(db.metrics, tick=10.0)
        sampler.start(db.sim, until=100.0)
        for index in range(4):
            db.sim.schedule_at(
                5.0 + index * 10.0,
                lambda: db.submit_update("ag", bump(), writes=["x"]),
            )
        db.quiesce()
        assert sampler.samples_taken == 10
        committed = sampler.counter_series("txn.committed")
        assert committed[-1][1] == 4  # final value
        assert sum(delta for _t, _v, delta in committed) == 4

    def test_dump_and_load_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        registry.gauge("g", lambda: 1.5)
        registry.histogram("h").observe(2.0)
        sampler = TimelineSampler(registry, tick=1.0)
        counter.inc()
        sampler.sample(1.0)
        path = str(tmp_path / "tl.jsonl")
        written = sampler.dump_jsonl(path)
        assert written == 3
        loaded = load_jsonl(path)
        assert loaded["counter"]["c"][0]["value"] == 1
        assert loaded["gauge"]["g"][0]["value"] == 1.5
        assert loaded["histogram"]["h"][0]["count"] == 1
        # Records are stable JSON (sorted keys), so the dump re-reads
        # byte-identically when regenerated.
        with open(path, encoding="utf-8") as handle:
            lines = handle.read()
        assert lines == "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in sampler.records()
        )

    def test_bit_identical_across_runs_of_one_seed(self):
        def run():
            db = make_db()
            sampler = TimelineSampler(db.metrics, tick=5.0)
            sampler.start(db.sim, until=60.0)
            for index in range(5):
                db.sim.schedule_at(
                    3.0 * index,
                    lambda: db.submit_update("ag", bump(), writes=["x"]),
                )
            db.partitions.partition_now([["A"], ["B", "C"]])
            db.sim.schedule_at(30.0, db.partitions.heal_now)
            db.quiesce()
            return list(sampler.records())

        assert run() == run()

    def test_deterministic_under_chaos_via_failover_bench(self):
        from repro.analysis.failover_bench import run_mode

        def run():
            box = []

            def attach(db):
                TimelineSampler(db.metrics, tick=10.0).start(
                    db.sim, until=120.0
                )
                box.append(db)

            run_mode(
                True, nodes=4, fragments=2, updates=8, factor=3,
                horizon=120.0, seed=5, db_sink=box, on_db=attach,
            )
            return list(box[0].metrics.timeline.records())

        first = run()
        assert first  # the sampler actually saw the run
        assert first == run()
